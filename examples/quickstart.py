#!/usr/bin/env python3
"""Quickstart: a ZHT deployment in one process.

Starts a 4-node in-process ZHT cluster and exercises the four operations
(insert / lookup / remove / append), replication, a node failure with
transparent replica failover, and a dynamic node join with partition
migration — the paper's core feature set end to end.

Run:  python examples/quickstart.py
"""

from repro import ZHTConfig, build_local_cluster
from repro.core import KeyNotFound


def main() -> None:
    config = ZHTConfig(
        transport="local",
        num_partitions=128,  # fixed at deploy time; caps cluster growth
        num_replicas=2,  # primary + 2 replicas per partition
        request_timeout=0.01,
        failures_before_dead=2,
        max_retries=10,
    )
    with build_local_cluster(num_nodes=4, config=config) as cluster:
        zht = cluster.client()

        # --- the four ZHT operations (§III.A) ---------------------------
        zht.insert("greeting", b"hello")
        print("lookup:", zht.lookup("greeting"))

        zht.append("greeting", b", zero hops!")  # lock-free concurrent mod
        print("after append:", zht.lookup("greeting"))

        zht.remove("greeting")
        try:
            zht.lookup("greeting")
        except KeyNotFound:
            print("removed: key is gone")

        # --- replication + failover (§III.H) ------------------------------
        for i in range(100):
            zht.insert(f"key-{i}", f"value-{i}".encode())
        print(f"stored 100 keys; {cluster.total_pairs()} copies incl. replicas")

        victim = cluster.membership.owner_of_partition(
            cluster.membership.partition_of_key(b"key-0", config.hash_name)
        ).node_id
        cluster.kill_node(victim)
        print(f"killed {victim}; key-0 still readable:", zht.lookup("key-0"))
        print(
            "client stats after failover:",
            f"retries={zht.stats.retries}",
            f"failovers={zht.stats.failovers}",
            f"nodes_marked_dead={zht.stats.nodes_marked_dead}",
        )

        # --- manager repair: reassign the dead node's partitions ----------
        cluster.repair(victim)
        print(
            f"manager repaired {victim}: its partitions now belong to the "
            "replicas that already held the data"
        )

        # --- dynamic membership: join without rehashing (§III.C) ----------
        node, instances = cluster.add_node()
        counts = {
            n: len(cluster.membership.partitions_of_node(n))
            for n, info in cluster.membership.nodes.items()
            if info.alive
        }
        print(f"joined {node.node_id}; partitions per node: {counts}")
        assert all(zht.lookup(f"key-{i}") == f"value-{i}".encode() for i in range(100))
        print("all keys still reachable after the join — no rehash happened")


if __name__ == "__main__":
    main()
