#!/usr/bin/env python3
"""Scale experiments in the simulator: from a laptop to 1M nodes.

Sweeps the calibrated Blue Gene/P model through the paper's Figure 7/9/11
ranges: discrete-event simulation (running the *real* ZHT server/client
cores over a modeled 3D-torus network) up to hundreds of nodes, and the
closed-form model beyond — exactly the methodology the paper used with
PeerSim for its 1M-node point.

Run:  python examples/scale_simulation.py
"""

from repro.sim import (
    MEMCACHED_BGP,
    predicted_efficiency,
    predicted_latency_ms,
    predicted_throughput_ops_s,
    simulate,
)


def main() -> None:
    print("DES: ZHT vs Memcached on the Blue Gene/P torus model")
    print(f"{'nodes':>6}  {'ZHT ms':>8}  {'ZHT ops/s':>12}  {'Memcached ms':>12}")
    two_node_ms = None
    for n in (1, 2, 16, 64, 256):
        zht = simulate(n, ops_per_client=16)
        mem = simulate(
            n, ops_per_client=16, service=MEMCACHED_BGP, real_core=False
        )
        if n == 2:
            two_node_ms = zht.latency_ms
        print(
            f"{n:>6}  {zht.latency_ms:>8.3f}  {zht.throughput_ops_s:>12,.0f}"
            f"  {mem.latency_ms:>12.3f}"
        )

    print(
        "\nModel extrapolation (fitted through the paper's published"
        " 8K/1M anchors):"
    )
    print(f"{'nodes':>10}  {'latency ms':>10}  {'efficiency':>10}  {'ops/s':>14}")
    for n in (1024, 8192, 65536, 1_048_576):
        print(
            f"{n:>10,}  {predicted_latency_ms(n):>10.2f}  "
            f"{predicted_efficiency(n) * 100:>9.0f}%  "
            f"{predicted_throughput_ops_s(n):>14,.0f}"
        )
    print(
        "\npaper anchors: 0.6ms @2 nodes, 1.1ms/51% @8K, 7ms/8% @1M "
        "(~150M ops/s aggregate)"
    )
    assert two_node_ms is not None and 0.4 < two_node_ms < 0.8


if __name__ == "__main__":
    main()
