#!/usr/bin/env python3
"""MATRIX: many-task computing with work stealing over ZHT (§V.C).

Runs real Python callables on a distributed set of executors whose task
state lives in ZHT (any client can monitor progress), then uses the DES
model to reproduce the Figure 18 comparison against the centralized
Falkon scheduler.

Run:  python examples/matrix_scheduler.py
"""

from repro import ZHTConfig, build_local_cluster
from repro.baselines.falkon import FalkonScheduler
from repro.matrix import MatrixOnZHT, MatrixSimulation, Task


def main() -> None:
    # --- real execution: callables + ZHT-backed task state ----------------
    cluster = build_local_cluster(
        2, ZHTConfig(transport="local", num_partitions=64)
    )
    matrix = MatrixOnZHT(cluster, num_executors=4)

    def make_work(n: int):
        return lambda: sum(i * i for i in range(n))

    for i in range(40):
        matrix.submit(Task(task_id=f"job-{i:03d}", payload=make_work(10_000 + i)))
    print("submitted 40 tasks; job-007 state:", matrix.status("job-007")["state"])

    done = matrix.run_to_completion(40)
    workers_used = sorted({t.worker for t in done})
    print(
        f"finished {len(done)} tasks on executors {workers_used}; "
        f"job-007 now: {matrix.status('job-007')['state']}"
    )
    # Task state is plain ZHT data — readable by any client.
    monitor = cluster.client()
    record = Task.parse_status(monitor.lookup("task:job-007"))
    print("independent monitor sees:", record)
    cluster.close()

    # --- scale model: MATRIX vs Falkon (Figure 18) -------------------------
    print("\nNO-OP task throughput vs cores (DES):")
    print(f"{'cores':>6}  {'MATRIX':>10}  {'Falkon':>10}")
    for cores in (256, 512, 1024, 2048):
        matrix_result = MatrixSimulation(
            cores // 4, cores_per_executor=4, task_overhead_s=0.18
        ).run(2000, 0.0)
        falkon_result = FalkonScheduler(cores, tree_latency=0.0).run(2000, 0.0)
        print(
            f"{cores:>6}  {matrix_result.throughput_tasks_s:>10,.0f}  "
            f"{falkon_result.throughput_tasks_s:>10,.0f}"
        )
    print(
        "Falkon's central dispatcher caps near 1700 tasks/s; MATRIX keeps "
        "scaling (the paper's crossover is near 512 cores)."
    )


if __name__ == "__main__":
    main()
