#!/usr/bin/env python3
"""ZHT over real sockets: TCP (with/without connection caching) and UDP.

Starts genuine ZHT servers on loopback — event-driven selector loops for
TCP, ack-per-datagram for UDP — and measures how the transport choices
from §III.F behave on this machine, including the thread-per-request
server the paper abandoned.

Run:  python examples/real_sockets.py
"""

import time

from repro.core import ZHTConfig
from repro.net.cluster import build_tcp_cluster, build_udp_cluster

OPS = 300
VALUE = b"v" * 132  # the paper's micro-benchmark value size


def timed_storm(zht) -> float:
    zht.insert("warmup", b"x")
    start = time.perf_counter()
    for i in range(OPS):
        zht.insert(f"key-{i:010d}", VALUE)
    return OPS / (time.perf_counter() - start)


def main() -> None:
    print(f"{OPS} inserts of 132-byte values, 3 servers on loopback:\n")

    cfg = ZHTConfig(transport="tcp", num_partitions=64, request_timeout=1.0)
    with build_tcp_cluster(3, cfg) as cluster:
        rate = timed_storm(cluster.client())
        print(f"TCP + LRU connection cache : {rate:8,.0f} ops/s")

    nocache = cfg.replace(connection_cache_size=0)
    with build_tcp_cluster(3, nocache) as cluster:
        z = cluster.client()
        rate = timed_storm(z)
        print(
            f"TCP, connect per op        : {rate:8,.0f} ops/s "
            f"({z.transport.connects} connects)"
        )

    with build_udp_cluster(3, ZHTConfig(transport="udp", num_partitions=64)) as cluster:
        rate = timed_storm(cluster.client())
        print(f"UDP with per-message acks  : {rate:8,.0f} ops/s")

    with build_tcp_cluster(3, cfg, threaded_server=True) as cluster:
        rate = timed_storm(cluster.client())
        print(f"thread-per-request server  : {rate:8,.0f} ops/s  (the rejected design)")

    # Replication over real sockets.
    replicated = cfg.replace(num_replicas=1)
    with build_tcp_cluster(3, replicated, seed=7) as cluster:
        z = cluster.client()
        rate = timed_storm(z)
        time.sleep(0.3)  # let async replicas land
        copies = sum(
            len(p.store)
            for s in cluster.servers
            for p in s.core.partitions.values()
        )
        print(
            f"TCP + 1 replica            : {rate:8,.0f} ops/s "
            f"({copies} total copies of {OPS + 1} keys)"
        )


if __name__ == "__main__":
    main()
