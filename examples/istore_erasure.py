#!/usr/bin/env python3
"""IStore: erasure-coded object storage with ZHT chunk metadata (§V.B).

Disperses objects over 8 chunk stores with (8, 6) Reed-Solomon coding —
any 6 chunks reconstruct the object — and keeps every chunk's location
in ZHT.  Demonstrates degraded reads with two failed nodes and the
metadata-intensity-vs-file-size trade-off of Figure 17.

Run:  python examples/istore_erasure.py
"""

import os
import time

from repro import ZHTConfig, build_local_cluster
from repro.istore import ChunkStore, IStore


def main() -> None:
    cluster = build_local_cluster(
        4, ZHTConfig(transport="local", num_partitions=128)
    )
    stores = [ChunkStore(i) for i in range(8)]
    istore = IStore(cluster.client(), stores)
    codec = istore.codec
    print(
        f"IDA codec: n={codec.n}, k={codec.k} "
        f"(storage overhead {codec.storage_overhead:.2f}x, "
        f"tolerates {codec.n - codec.k} lost nodes)"
    )

    # Store an object and inspect its dispersal.
    payload = os.urandom(256 * 1024)
    istore.write("dataset/block-000", payload)
    print(
        f"wrote 256 KiB -> {istore.stats.chunks_written} chunks, "
        f"{istore.stats.metadata_ops} ZHT metadata ops"
    )

    # Fail the maximum tolerable number of nodes and read through it.
    stores[0].alive = False
    stores[5].alive = False
    recovered = istore.read("dataset/block-000")
    assert recovered == payload
    print(
        "read with 2/8 chunk stores down: OK "
        f"(degraded reads so far: {istore.stats.degraded_reads})"
    )
    stores[0].alive = True
    stores[5].alive = True

    # Figure 17's trade-off: small objects are metadata-bound.
    for size, label in ((10 * 1024, "10KB"), (1024 * 1024, "1MB")):
        istore.stats.chunks_written = istore.stats.chunks_read = 0
        data = b"\xCD" * size
        count = 20
        start = time.perf_counter()
        for i in range(count):
            istore.write(f"sweep/{label}/{i}", data)
            istore.read(f"sweep/{label}/{i}")
        elapsed = time.perf_counter() - start
        chunks = istore.stats.chunks_written + istore.stats.chunks_read
        print(
            f"{label:>5} objects: {chunks / elapsed:8,.0f} chunks/s "
            f"({count * 2 / elapsed:6.1f} object ops/s)"
        )
    cluster.close()


if __name__ == "__main__":
    main()
