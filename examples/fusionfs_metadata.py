#!/usr/bin/env python3
"""FusionFS: distributed filesystem metadata on ZHT (paper §V.A).

Reproduces the workload that motivates ZHT's ``append``: many clients
creating files *in the same directory* concurrently.  In GPFS this
serializes on a distributed directory lock (63 s/op at 16K cores,
Figure 1); in FusionFS every create is one ZHT insert plus one lock-free
append to the parent's entry log.

Run:  python examples/fusionfs_metadata.py
"""

import time

from repro import ZHTConfig, build_local_cluster
from repro.baselines.gpfs import GPFSModel
from repro.fusionfs import DataStorePool, FusionFS


def main() -> None:
    cluster = build_local_cluster(
        4, ZHTConfig(transport="local", num_partitions=128)
    )
    pool = DataStorePool()

    # Mount FusionFS from several nodes — every node is client, metadata
    # server, and storage server at once.
    mounts = [
        FusionFS(cluster.client(), pool, f"node-000{i}") for i in range(4)
    ]
    fs = mounts[0]

    # Regular filesystem usage.
    fs.makedirs("/experiments/run-42")
    fs.write("/experiments/run-42/params.json", b'{"alpha": 0.5}')
    print("read back:", fs.read("/experiments/run-42/params.json"))
    print("stat:", fs.stat("/experiments/run-42/params.json").size, "bytes")

    # The concurrent-create storm: 4 clients, one shared directory.
    fs.mkdir("/shared")
    creates_per_client = 250
    start = time.perf_counter()
    for i in range(creates_per_client):
        for client_id, mount in enumerate(mounts):
            mount.create(f"/shared/out-{client_id}-{i:05d}")
    elapsed = time.perf_counter() - start
    total = creates_per_client * len(mounts)
    per_op_ms = elapsed / total * 1000

    entries = fs.readdir("/shared")
    assert len(entries) == total, "append lost no concurrent update"
    print(
        f"\n{total} creates in one shared directory from 4 clients: "
        f"{per_op_ms:.3f} ms/op ({total / elapsed:,.0f} creates/s), "
        "zero locks, zero lost entries"
    )

    gpfs = GPFSModel()
    print(
        "GPFS-model comparison at 4 concurrent clients: "
        f"{gpfs.time_per_op(4, shared_dir=True) * 1000:.1f} ms/op shared-dir "
        f"(and {gpfs.time_per_op(512, shared_dir=True) * 1000:.0f} ms/op at 512)"
    )

    # Data stays node-local; any mount can read it through the pool.
    mounts[2].write("/experiments/run-42/result.bin", b"\x01" * 4096)
    print(
        "cross-node read:",
        len(mounts[1].read("/experiments/run-42/result.bin")),
        "bytes written by node-0002, read via node-0001",
    )
    cluster.close()


if __name__ == "__main__":
    main()
