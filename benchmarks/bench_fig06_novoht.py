"""Figure 6: NoVoHT vs KyotoCabinet vs BerkeleyDB vs unordered_map.

Paper shape (on Fusion, 1M/10M/100M pairs — scaled down here): NoVoHT's
per-op latency is flat with table size and within a few µs of the pure
in-memory map ("persistency ... only adds about 3us of latency");
KyotoCabinet and BerkeleyDB are several times slower because "any lookup
must hit disk", and degrade with scale.
"""

import time

from _util import (
    emit_json,
    fmt,
    fmt_int,
    print_table,
    registry_capture,
    registry_percentiles,
    scales,
)

from repro.baselines.berkeleydb import BerkeleyDBLike
from repro.baselines.kyotocabinet import DiskHashDB
from repro.novoht import NoVoHT

SCALES = scales(
    small=(1_000, 10_000, 100_000),
    paper=(10_000, 100_000, 1_000_000),
)

KEY = b"%016d"
VALUE = b"v" * 132


def _keys(count: int):
    return [KEY % i for i in range(count)]


def measure_store(factory, count: int) -> float:
    """Mean µs per op over insert+get+remove of *count* pairs."""
    store = factory()
    keys = _keys(count)
    start = time.perf_counter()
    for key in keys:
        store.put(key, VALUE)
    for key in keys:
        store.get(key)
    for key in keys:
        store.remove(key)
    elapsed = time.perf_counter() - start
    close = getattr(store, "close", None)
    if close:
        close()
    return elapsed / (3 * count) * 1e6


class _DictStore:
    """The unordered_map reference line."""

    def __init__(self):
        self._d = {}

    def put(self, k, v):
        self._d[k] = v

    def get(self, k):
        return self._d[k]

    def remove(self, k):
        del self._d[k]


def generate_series(tmp_base: str):
    rows = []
    for count in SCALES:
        novoht = measure_store(
            lambda: NoVoHT(f"{tmp_base}/novoht-{count}", checkpoint_interval_ops=0),
            count,
        )
        novoht_mem = measure_store(lambda: NoVoHT(None), count)
        kyoto = measure_store(
            lambda: DiskHashDB(f"{tmp_base}/kyoto-{count}.db"), count
        )
        bdb = measure_store(
            lambda: BerkeleyDBLike(f"{tmp_base}/bdb-{count}.db"), count
        )
        plain = measure_store(_DictStore, count)
        rows.append(
            (
                fmt_int(count),
                fmt(novoht, 2),
                fmt(novoht_mem, 2),
                fmt(kyoto, 2),
                fmt(bdb, 2),
                fmt(plain, 2),
            )
        )
    return rows


def test_fig06_novoht_vs_disk_stores(benchmark, tmp_path):
    rows = generate_series(str(tmp_path))
    # Percentiles come from a separate instrumented pass: span timing
    # costs a couple of µs per op, which would visibly skew the
    # µs-scale comparative table if enabled during generate_series.
    with registry_capture():
        measure_store(
            lambda: NoVoHT(
                f"{tmp_path}/novoht-obs", checkpoint_interval_ops=0
            ),
            SCALES[0],
        )
        latency = registry_percentiles(
            "novoht.put", "novoht.get", "novoht.remove"
        )
    headers = ["pairs", "NoVoHT", "NoVoHT (no persist)", "KyotoCabinet-like", "BerkeleyDB-like", "dict"]
    print_table(
        "Figure 6: persistent store latency (us/op) vs table size",
        headers,
        rows,
        note="paper: NoVoHT ~flat and near in-memory; disk stores slower "
        "and degrading with scale",
    )
    emit_json("fig06_novoht", headers, rows, latency=latency)
    # Shape assertions: NoVoHT clearly beats the disk-based hash store at
    # every size and stays at least competitive with the B-tree store
    # (whose "disk" reads are absorbed by the OS page cache on this host,
    # unlike the paper's 2012 spinning disks — see EXPERIMENTS.md).
    for row in rows:
        novoht, kyoto, bdb = float(row[1]), float(row[3]), float(row[4])
        assert novoht < kyoto
        assert novoht < 1.4 * bdb
    store = NoVoHT(str(tmp_path / "bench"), checkpoint_interval_ops=0)
    keys = iter(range(10**9))

    def one_op():
        store.put(KEY % next(keys), VALUE)

    benchmark(one_op)
    store.close()
