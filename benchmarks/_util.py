"""Shared helpers for the per-figure benchmark harness.

Every ``bench_*.py`` regenerates one table or figure from the paper:
it computes the full series (all rows the figure plots), prints it in a
uniform format (run ``pytest benchmarks/ --benchmark-only -s`` to see
the tables), and registers one representative timed case with
pytest-benchmark.

Scales default to laptop-feasible sizes; set ``ZHT_BENCH_SCALE=paper``
to sweep closer to the paper's ranges (minutes of runtime).
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

#: "small" (default, seconds) or "paper" (closer to the paper, minutes).
BENCH_SCALE = os.environ.get("ZHT_BENCH_SCALE", "small")


def paper_scale() -> bool:
    return BENCH_SCALE == "paper"


def scales(small: Sequence[int], paper: Sequence[int]) -> Sequence[int]:
    return paper if paper_scale() else small


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    note: str = "",
) -> None:
    """Print one figure/table reproduction in a uniform format."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} ===")
    if note:
        print(note)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def fmt_int(value: float) -> str:
    return f"{value:,.0f}"
