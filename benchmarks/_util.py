"""Shared helpers for the per-figure benchmark harness.

Every ``bench_*.py`` regenerates one table or figure from the paper:
it computes the full series (all rows the figure plots), prints it in a
uniform format (run ``pytest benchmarks/ --benchmark-only -s`` to see
the tables), and registers one representative timed case with
pytest-benchmark.

Scales default to laptop-feasible sizes; set ``ZHT_BENCH_SCALE=paper``
to sweep closer to the paper's ranges (minutes of runtime).
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Iterable, Sequence

#: "small" (default, seconds) or "paper" (closer to the paper, minutes).
BENCH_SCALE = os.environ.get("ZHT_BENCH_SCALE", "small")

#: Directory for per-figure JSON result files ("" = stdout line only).
BENCH_JSON_DIR = os.environ.get("ZHT_BENCH_JSON", "")


def paper_scale() -> bool:
    return BENCH_SCALE == "paper"


def scales(small: Sequence[int], paper: Sequence[int]) -> Sequence[int]:
    return paper if paper_scale() else small


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    note: str = "",
) -> None:
    """Print one figure/table reproduction in a uniform format."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} ===")
    if note:
        print(note)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def fmt_int(value: float) -> str:
    return f"{value:,.0f}"


@contextlib.contextmanager
def registry_capture():
    """Enable + reset the metrics registry around one benchmark series.

    Spans recorded inside the block land in fresh histograms, so the
    percentiles reported by :func:`registry_percentiles` cover exactly
    this figure's workload.  The previous enabled state is restored on
    exit so the timed pytest-benchmark case runs with the ambient
    (normally disabled, near-zero-overhead) configuration.
    """
    from repro.obs import REGISTRY

    was_enabled = REGISTRY.enabled
    REGISTRY.reset()
    REGISTRY.enable()
    try:
        yield REGISTRY
    finally:
        if not was_enabled:
            REGISTRY.disable()


def registry_percentiles(*names: str) -> dict:
    """Latency snapshots (count/mean/p50/p90/p99/max, ms) per span name.

    With *names*, returns only those histograms (skipping any that saw no
    samples); without, returns every populated histogram.
    """
    from repro.obs import REGISTRY

    latency = REGISTRY.snapshot()["latency"]
    if not names:
        return latency
    return {name: latency[name] for name in names if name in latency}


def emit_json(
    figure: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    latency: dict | None = None,
) -> None:
    """Emit the figure's machine-readable result record.

    Always prints one ``BENCH_JSON <payload>`` line (greppable from the
    pytest ``-s`` output); when ``$ZHT_BENCH_JSON`` names a directory,
    also writes ``<figure>.json`` there.  ``latency`` carries the
    registry-backed percentile snapshots from :func:`registry_percentiles`.
    """
    record = {
        "figure": figure,
        "scale": BENCH_SCALE,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
    }
    if latency:
        record["latency"] = latency
    print(f"BENCH_JSON {json.dumps(record, sort_keys=True)}")
    if BENCH_JSON_DIR:
        os.makedirs(BENCH_JSON_DIR, exist_ok=True)
        path = os.path.join(BENCH_JSON_DIR, f"{figure}.json")
        with open(path, "w") as f:
            json.dump(record, f, indent=2, sort_keys=True)
