"""Figure 19: MATRIX vs Falkon efficiency for 1/2/4/8-second tasks.

Paper shape (averaged over 256-2048 cores): MATRIX 92%-97%; Falkon only
18%-82%, improving with task length (its centralized dispatcher is the
bottleneck for short tasks).
"""

from _util import print_table, scales

from repro.baselines.falkon import falkon_efficiency
from repro.matrix import MatrixSimulation

DURATIONS = (1.0, 2.0, 4.0, 8.0)
CORE_SCALES = scales(small=(256, 1024, 2048), paper=(256, 512, 1024, 2048))
CORES_PER_NODE = 4
#: Executor overhead for sleep tasks (small vs the NO-OP dispatch path:
#: no data staging), calibrated to the paper's 92% floor.
MATRIX_TASK_OVERHEAD = 0.06


def _matrix_efficiency(duration: float) -> float:
    values = []
    for cores in CORE_SCALES:
        result = MatrixSimulation(
            cores // CORES_PER_NODE,
            cores_per_executor=CORES_PER_NODE,
            task_overhead_s=MATRIX_TASK_OVERHEAD,
        ).run(cores, duration)
        values.append(result.efficiency)
    return sum(values) / len(values)


def _falkon_avg_efficiency(duration: float) -> float:
    values = [falkon_efficiency(cores, duration) for cores in CORE_SCALES]
    return sum(values) / len(values)


def generate_series():
    rows = []
    for duration in DURATIONS:
        rows.append(
            (
                f"{duration:.0f}s",
                f"{_matrix_efficiency(duration) * 100:.0f}%",
                f"{_falkon_avg_efficiency(duration) * 100:.0f}%",
            )
        )
    return rows


def test_fig19_matrix_vs_falkon_efficiency(benchmark):
    rows = generate_series()
    print_table(
        "Figure 19: average efficiency vs task duration (256-2048 cores)",
        ["task duration", "MATRIX", "Falkon"],
        rows,
        note="paper: MATRIX 92%-97% across the board; Falkon 18%-82%",
    )

    def pct(cell):
        return float(cell.rstrip("%"))

    matrix = [pct(r[1]) for r in rows]
    falkon = [pct(r[2]) for r in rows]
    assert min(matrix) >= 85  # MATRIX high for every duration
    assert all(m > f for m, f in zip(matrix, falkon))  # MATRIX wins all
    assert falkon[0] < 40  # Falkon collapses on short tasks
    assert falkon == sorted(falkon)  # and recovers with duration
    benchmark(
        lambda: MatrixSimulation(
            64, task_overhead_s=MATRIX_TASK_OVERHEAD
        ).run(256, 1.0)
    )
