"""Batching & pipelining: BATCH round trips and WAL group commit.

Two layers of the batched request path, measured against their per-op
baselines:

* **Wire level** (loopback TCP, multiplexed client): ops/s for per-op
  inserts vs ``insert_many`` at increasing batch sizes, plus a pipeline
  -depth sweep (N threads sharing one multiplexed connection).  The
  zero-hop property makes client-side batch planning free of extra hops:
  every key's owner is known locally, so a batch of B keys to one owner
  costs one round trip instead of B.
* **Storage level** (NoVoHT with ``fsync=True``): puts/s and WAL
  fsyncs/op for sequential ``put`` vs ``apply_batch`` group commits —
  a batch of B mutations pays one fsync instead of B.

Run standalone for CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_batch_pipeline.py --smoke
"""

import os
import shutil
import sys
import tempfile
import threading
import time

from _util import emit_json, fmt, fmt_int, print_table, scales

from repro.core import ZHTConfig
from repro.net.cluster import build_tcp_cluster
from repro.novoht import NoVoHT
from repro.obs import REGISTRY

BATCH_SIZES = (1, 8, 64)
PIPELINE_DEPTHS = (4, 16)
VALUE = b"v" * 132  # the paper's micro-benchmark value size


def _wire_ops():
    return scales(small=(1024,), paper=(8192,))[0]


def _storage_ops():
    return scales(small=(2048,), paper=(16384,))[0]


def wire_series(ops: int):
    """Loopback-TCP ops/s: per-op baseline, batch sizes, pipeline depths.

    Returns ``(rows, speedups)`` where ``speedups`` maps series label to
    throughput relative to the per-op baseline.
    """
    cfg = ZHTConfig(
        transport="tcp", num_partitions=64, request_timeout=5.0
    )
    rows = []
    speedups = {}
    with build_tcp_cluster(1, cfg) as cluster:
        z = cluster.client()
        for i in range(32):  # warm the connection and the server
            z.insert(f"warm{i:010d}", VALUE)

        t0 = time.perf_counter()
        for i in range(ops):
            z.insert(f"po{i:013d}", VALUE)
        baseline = ops / (time.perf_counter() - t0)
        rows.append(("per-op", 1, 1, fmt_int(baseline), "1.00"))

        for size in BATCH_SIZES:
            keys = [f"b{size:03d}-{i:09d}" for i in range(ops)]
            t0 = time.perf_counter()
            for start in range(0, ops, size):
                z.insert_many(
                    {k: VALUE for k in keys[start : start + size]}
                )
            rate = ops / (time.perf_counter() - t0)
            speedups[f"batch-{size}"] = rate / baseline
            rows.append(
                (
                    f"batch-{size}",
                    size,
                    1,
                    fmt_int(rate),
                    fmt(rate / baseline, 2),
                )
            )

        for depth in PIPELINE_DEPTHS:
            keys = [f"p{depth:03d}-{i:09d}" for i in range(ops)]
            chunk = (ops + depth - 1) // depth

            def worker(slice_keys):
                for k in slice_keys:
                    z.insert(k, VALUE)

            threads = [
                threading.Thread(
                    target=worker, args=(keys[i : i + chunk],)
                )
                for i in range(0, ops, chunk)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            rate = ops / (time.perf_counter() - t0)
            speedups[f"pipeline-{depth}"] = rate / baseline
            rows.append(
                (
                    f"pipeline-{depth}",
                    1,
                    depth,
                    fmt_int(rate),
                    fmt(rate / baseline, 2),
                )
            )
    return rows, speedups


def storage_series(ops: int):
    """NoVoHT group commit: puts/s and fsyncs/op, per-op vs batched.

    Returns ``(rows, fsyncs_per_op)`` with ``fsyncs_per_op`` keyed like
    the row labels.
    """
    rows = []
    fsyncs_per_op = {}
    for label, batch in (("per-op", 1), ("batch-64", 64)):
        workdir = tempfile.mkdtemp(prefix="zht-bench-gc-")
        try:
            store = NoVoHT(
                os.path.join(workdir, "store"),
                fsync=True,
                checkpoint_interval_ops=0,
            )
            pairs = [
                (f"k{i:014d}".encode(), VALUE) for i in range(ops)
            ]
            before = REGISTRY.counter("wal.fsyncs").value
            t0 = time.perf_counter()
            if batch == 1:
                for key, value in pairs:
                    store.put(key, value)
            else:
                for start in range(0, ops, batch):
                    store.apply_batch(
                        [
                            ("put", key, value)
                            for key, value in pairs[start : start + batch]
                        ]
                    )
            elapsed = time.perf_counter() - t0
            fsyncs = REGISTRY.counter("wal.fsyncs").value - before
            store._wal = None  # skip the close-time checkpoint fsyncs
            store.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        rate = ops / elapsed
        fsyncs_per_op[label] = fsyncs / ops
        rows.append(
            (
                label,
                batch,
                fmt_int(rate),
                fsyncs,
                fmt(fsyncs / ops, 3),
            )
        )
    return rows, fsyncs_per_op


WIRE_HEADERS = ("series", "batch", "depth", "ops/s", "vs per-op")
STORE_HEADERS = ("series", "batch", "puts/s", "fsyncs", "fsyncs/op")


def run(wire_ops: int, storage_ops: int):
    wire_rows, speedups = wire_series(wire_ops)
    store_rows, fsyncs_per_op = storage_series(storage_ops)
    print_table(
        "Batched+pipelined request path: loopback TCP ops/s",
        WIRE_HEADERS,
        wire_rows,
        note=(
            "per-owner BATCH planning: B keys to one owner = 1 round trip"
        ),
    )
    print_table(
        "WAL group commit: NoVoHT puts/s with fsync=True",
        STORE_HEADERS,
        store_rows,
        note="group commit: one write/flush/fsync per batch",
    )
    emit_json(
        "batch_pipeline",
        WIRE_HEADERS,
        wire_rows,
    )
    emit_json(
        "batch_pipeline_wal",
        STORE_HEADERS,
        store_rows,
    )
    return speedups, fsyncs_per_op


def check(speedups, fsyncs_per_op) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    if speedups.get("batch-64", 0.0) < 2.0:
        failures.append(
            f"batch-64 speedup {speedups.get('batch-64'):.2f}x < 2x"
        )
    # Group commit amortizes fsyncs ~proportionally to the batch size.
    if fsyncs_per_op["per-op"] < 1.0:
        failures.append("per-op path must fsync every put")
    if fsyncs_per_op["batch-64"] > fsyncs_per_op["per-op"] / 32:
        failures.append(
            f"batch-64 fsyncs/op {fsyncs_per_op['batch-64']:.3f} not "
            f"proportionally below per-op {fsyncs_per_op['per-op']:.3f}"
        )
    return failures


def test_batch_pipeline(benchmark):
    speedups, fsyncs_per_op = run(_wire_ops(), _storage_ops())
    assert not check(speedups, fsyncs_per_op)

    def timed_case():
        with NoVoHT(None) as store:
            store.apply_batch(
                [("put", f"t{i}".encode(), VALUE) for i in range(64)]
            )

    benchmark(timed_case)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    if smoke:
        speedups, fsyncs_per_op = run(wire_ops=256, storage_ops=512)
    else:
        speedups, fsyncs_per_op = run(_wire_ops(), _storage_ops())
    problems = check(speedups, fsyncs_per_op)
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(
            f"OK: batch-64 {speedups['batch-64']:.1f}x per-op on loopback "
            f"TCP; WAL fsyncs/op {fsyncs_per_op['per-op']:.2f} -> "
            f"{fsyncs_per_op['batch-64']:.3f}"
        )
    sys.exit(1 if problems else 0)
