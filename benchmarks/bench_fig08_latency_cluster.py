"""Figure 8: latency vs scale on the HEC-Cluster (1 -> 64 nodes).

Series: ZHT, Cassandra, Memcached over gigabit Ethernet.  Paper shape:
ZHT flat near 0.7-0.8 ms; Memcached slightly better (no disk write);
Cassandra several times slower and growing (log-routing + JVM).
"""

from _util import (
    emit_json,
    fmt,
    print_table,
    registry_capture,
    registry_percentiles,
    scales,
)

from repro.sim import (
    CASSANDRA_CLUSTER,
    CLUSTER_ETHERNET_LINK,
    MEMCACHED_CLUSTER,
    ZHT_CLUSTER,
    simulate,
)

SCALES = scales(small=(1, 2, 4, 8, 16, 32, 64), paper=(1, 2, 4, 8, 16, 32, 64))
OPS = 16


def _run(n, service, real_core=True):
    return simulate(
        n,
        ops_per_client=OPS,
        service=service,
        link=CLUSTER_ETHERNET_LINK,
        topology="switch",
        real_core=real_core,
    ).latency_ms


def generate_series():
    rows = []
    for n in SCALES:
        zht = _run(n, ZHT_CLUSTER)
        cassandra = _run(n, CASSANDRA_CLUSTER, real_core=False)
        memcached = _run(n, MEMCACHED_CLUSTER, real_core=False)
        rows.append((n, fmt(zht), fmt(cassandra), fmt(memcached)))
    return rows


def test_fig08_latency_cluster(benchmark):
    with registry_capture():
        rows = generate_series()
        latency = registry_percentiles("server.handle", "novoht.put", "novoht.get")
    headers = ["nodes", "ZHT", "Cassandra", "Memcached"]
    print_table(
        "Figure 8: latency (ms) vs nodes, HEC-Cluster Ethernet (DES)",
        headers,
        rows,
        note="paper: ZHT ~0.7ms flat; Cassandra ~3x and growing; "
        "Memcached slightly better than ZHT (in-memory only)",
    )
    emit_json("fig08_latency_cluster", headers, rows, latency=latency)
    last = rows[-1]
    zht, cassandra, memcached = (float(last[i]) for i in (1, 2, 3))
    assert cassandra > 2.5 * zht  # "much lower latency than Cassandra"
    assert memcached <= zht  # "slightly better performance than ZHT"
    # Cassandra's gap grows with scale (log routing).
    assert float(rows[-1][2]) > float(rows[1][2])
    benchmark(
        lambda: _run(16, ZHT_CLUSTER)
    )
