"""Ablation D1 (§IV.D): server hot-path architecture on real TCP.

Paper: "In early prototypes, we explored a multi-threading design, in
which each request had a separate thread, but the overheads of starting,
managing, and stopping threads was too high ... The current epoll-based
ZHT outperforms the multithread version 3X."

Four architectures, all on loopback sockets from :mod:`repro.net.tcp`:

- ``thread-per-request``: one thread spawned per request (the paper's
  rejected prototype).
- ``event + pool hop``: the epoll loop, but every request takes the
  selector -> executor -> selector hop (``inline_fast_path=False``).
- ``event + inline``: the epoll loop answering no-peer-IO ops directly
  on the loop thread (the shipped default).
- ``event + inline + BATCH``: same server, multiplexed client shipping
  ``insert_many`` batches — the client-side half of the thin-path
  argument.
"""

import time

from _util import (
    emit_json,
    fmt,
    fmt_int,
    print_table,
    registry_capture,
    registry_percentiles,
    scales,
)

from repro.core import ZHTConfig
from repro.net.cluster import build_tcp_cluster

OPS = scales(small=(1500,), paper=(6000,))[0]
BATCH = 64
VALUE = b"v" * 132


def measure(*, threaded: bool, inline: bool = True, batch: bool = False) -> float:
    """Ops/s for a single-client insert storm against one server."""
    config = ZHTConfig(
        transport="tcp",
        num_partitions=64,
        request_timeout=2.0,
        inline_fast_path=inline,
    )
    with build_tcp_cluster(1, config, threaded_server=threaded) as cluster:
        z = cluster.client()
        z.insert("warmup", b"x")
        start = time.perf_counter()
        if batch:
            for base in range(0, OPS, BATCH):
                z.insert_many(
                    (f"key-{i:08d}", VALUE)
                    for i in range(base, min(base + BATCH, OPS))
                )
        else:
            for i in range(OPS):
                z.insert(f"key-{i:08d}", VALUE)
        elapsed = time.perf_counter() - start
    return OPS / elapsed


def generate_series():
    with registry_capture():
        threaded = measure(threaded=True)
        pool_hop = measure(threaded=False, inline=False)
        inline = measure(threaded=False)
        batched = measure(threaded=False, batch=True)
        latency = registry_percentiles()
    rows = [
        ("thread-per-request", fmt_int(threaded), "1.00"),
        ("event + pool hop", fmt_int(pool_hop), fmt(pool_hop / threaded, 2)),
        ("event + inline", fmt_int(inline), fmt(inline / threaded, 2)),
        (
            "event + inline + BATCH",
            fmt_int(batched),
            fmt(batched / threaded, 2),
        ),
    ]
    return rows, inline / threaded, latency


def test_ablation_server_architecture(benchmark):
    rows, speedup, latency = generate_series()
    print_table(
        "Ablation D1: server architecture (real TCP, loopback)",
        ["architecture", "ops/s", "vs threaded"],
        rows,
        note=f"paper: epoll 3X over multithreaded; measured {speedup:.2f}X",
    )
    emit_json(
        "ablation_server_arch",
        ["architecture", "ops_per_s", "vs_threaded"],
        rows,
        latency=latency,
    )
    assert speedup > 1.3  # event-driven must clearly win
    benchmark(lambda: measure(threaded=False))
