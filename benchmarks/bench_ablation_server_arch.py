"""Ablation D1 (§IV.D): event-driven (epoll) vs thread-per-request server.

Paper: "In early prototypes, we explored a multi-threading design, in
which each request had a separate thread, but the overheads of starting,
managing, and stopping threads was too high ... The current epoll-based
ZHT outperforms the multithread version 3X."

Measured here on real loopback TCP sockets with both server
architectures from :mod:`repro.net.tcp`.
"""

import time

from _util import fmt, fmt_int, print_table

from repro.core import ZHTConfig
from repro.net.cluster import build_tcp_cluster

OPS = 400


def measure(threaded: bool) -> float:
    """Ops/s for a single-client insert storm."""
    config = ZHTConfig(
        transport="tcp", num_partitions=64, request_timeout=2.0
    )
    with build_tcp_cluster(1, config, threaded_server=threaded) as cluster:
        z = cluster.client()
        z.insert("warmup", b"x")
        start = time.perf_counter()
        for i in range(OPS):
            z.insert(f"key-{i:08d}", b"v" * 132)
        elapsed = time.perf_counter() - start
    return OPS / elapsed


def generate_series():
    event_driven = measure(threaded=False)
    threaded = measure(threaded=True)
    return [
        ("event-driven (epoll)", fmt_int(event_driven), "1.00"),
        (
            "thread-per-request",
            fmt_int(threaded),
            fmt(threaded / event_driven, 2),
        ),
    ], event_driven / threaded


def test_ablation_server_architecture(benchmark):
    rows, speedup = generate_series()
    print_table(
        "Ablation D1: server architecture (real TCP, loopback)",
        ["architecture", "ops/s", "relative"],
        rows,
        note=f"paper: epoll 3X over multithreaded; measured {speedup:.2f}X",
    )
    assert speedup > 1.3  # event-driven must clearly win
    benchmark(lambda: measure(threaded=False))
