"""Figure 18: MATRIX vs Falkon task throughput vs processor count.

Paper shape: Falkon (centralized) saturates at ~1700 tasks/s around 256
cores; MATRIX grows from ~1100 tasks/s at 256 cores to ~4900 at 2048
cores "with no obvious sign of saturation", tracking ZHT performance.
"""

from _util import fmt_int, print_table, scales

from repro.baselines.falkon import FalkonScheduler
from repro.matrix import MatrixSimulation

CORE_SCALES = scales(
    small=(64, 256, 1024, 2048),
    paper=(64, 256, 512, 1024, 2048, 4096),
)
CORES_PER_NODE = 4
TASKS = 2_000
#: Per-task executor overhead of the C prototype (calibrated so MATRIX
#: lands near the paper's ~1100 tasks/s at 256 cores).
MATRIX_TASK_OVERHEAD = 0.18


def generate_series():
    rows = []
    for cores in CORE_SCALES:
        matrix = MatrixSimulation(
            cores // CORES_PER_NODE,
            cores_per_executor=CORES_PER_NODE,
            task_overhead_s=MATRIX_TASK_OVERHEAD,
        ).run(TASKS, 0.0)
        falkon = FalkonScheduler(cores, tree_latency=0.0).run(TASKS, 0.0)
        rows.append(
            (
                cores,
                fmt_int(matrix.throughput_tasks_s),
                fmt_int(falkon.throughput_tasks_s),
            )
        )
    return rows


def test_fig18_matrix_vs_falkon_throughput(benchmark):
    rows = generate_series()
    print_table(
        "Figure 18: NO-OP task throughput (tasks/s) vs cores",
        ["cores", "MATRIX", "Falkon"],
        rows,
        note="paper: Falkon saturates ~1700/s; MATRIX 1100->4900/s, "
        "crossover near 512 cores, no saturation",
    )

    def num(s):
        return float(s.replace(",", ""))

    falkon_by_scale = [num(r[2]) for r in rows]
    matrix_by_scale = [num(r[1]) for r in rows]
    # Falkon is capped near 1700 regardless of scale.
    assert max(falkon_by_scale) < 1900
    # MATRIX keeps growing and overtakes Falkon by 2048 cores.
    assert matrix_by_scale[-1] > 1.5 * matrix_by_scale[1]
    assert matrix_by_scale[-1] > 2 * falkon_by_scale[-1]
    benchmark(
        lambda: MatrixSimulation(
            16, task_overhead_s=MATRIX_TASK_OVERHEAD
        ).run(200, 0.0)
    )
