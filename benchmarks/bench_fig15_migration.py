"""Figure 15: dynamic-membership cost — time to double the server count.

Paper setup: live clients keep operating while the server count doubles
(2->4, 4->8, 8->16, 16->32); each doubling completes in ~2 s with a
roughly flat trend ("the trends seem relatively constant ... implying
good scalability").

We run the real in-process deployment: populate data, keep a client
reading, and time each doubling (node joins + partition migrations +
membership broadcasts).  Absolute times differ from the BG/P; the shape
assertion is the flat trend.
"""

import time

from _util import fmt, print_table

from repro import ZHTConfig, build_local_cluster

DOUBLINGS = ((2, 4), (4, 8), (8, 16), (16, 32))
KEYS = 300


def measure_doublings():
    config = ZHTConfig(transport="local", num_partitions=256)
    cluster = build_local_cluster(2, config)
    z = cluster.client()
    for i in range(KEYS):
        z.insert(f"key-{i:06d}", b"v" * 132)
    rows = []
    for start, target in DOUBLINGS:
        assert len(cluster.membership.nodes) == start
        begin = time.perf_counter()
        for _ in range(target - start):
            cluster.add_node()
        elapsed = (time.perf_counter() - begin) * 1000
        # Clients stay correct mid-resize (lazy membership refresh).
        for i in range(0, KEYS, 29):
            assert z.lookup(f"key-{i:06d}") == b"v" * 132
        rows.append((f"{start} to {target}", fmt(elapsed, 1)))
    cluster.close()
    return rows


def test_fig15_migration_time(benchmark):
    rows = measure_doublings()
    print_table(
        "Figure 15: time to double the number of servers (real, ms)",
        ["doubling", "time (ms)"],
        rows,
        note="paper: ~2000ms per doubling, roughly constant 2->32 nodes",
    )
    times = [float(r[1]) for r in rows]
    # Flat-ish trend: the last doubling (16 more nodes' worth of joins)
    # must not blow up versus linear expectation.
    assert times[-1] < 40 * times[0] + 50

    def one_join():
        config = ZHTConfig(transport="local", num_partitions=64)
        with build_local_cluster(2, config) as cluster:
            cluster.add_node()

    benchmark(one_join)
