"""Figure 12: replication overhead vs scale.

Paper shape: asynchronous replication "does increase the operation
latency, but it is not a significant increase.  One replica adds around
20% and 2 replicas add around 30% overhead compared with the latency of
no replica ... If replication would have been synchronous ... the cost
of each replica would have likely been 100% increment for 1 replica, and
200% for 2 replicas."
"""

from _util import print_table, scales

from repro.core import ReplicationMode
from repro.sim import simulate

SCALES = scales(small=(2, 8, 32, 128), paper=(2, 8, 32, 128, 512, 1024))
OPS = 12


def _latency(n, replicas, mode):
    return simulate(
        n,
        ops_per_client=OPS,
        num_replicas=replicas,
        replication_mode=mode,
        include_remove=False,
    ).latency_ms


def generate_series():
    rows = []
    for n in SCALES:
        base = _latency(n, 0, ReplicationMode.NONE)
        one = _latency(n, 1, ReplicationMode.NONE)
        two = _latency(n, 2, ReplicationMode.NONE)
        sync_one = _latency(n, 1, ReplicationMode.SYNC)
        sync_two = _latency(n, 2, ReplicationMode.SYNC)
        rows.append(
            (
                n,
                f"{(one / base - 1) * 100:+.0f}%",
                f"{(two / base - 1) * 100:+.0f}%",
                f"{(sync_one / base - 1) * 100:+.0f}%",
                f"{(sync_two / base - 1) * 100:+.0f}%",
            )
        )
    return rows


def test_fig12_replication_overhead(benchmark):
    rows = generate_series()
    print_table(
        "Figure 12: replication latency overhead vs scale (DES)",
        ["nodes", "1 rep async", "2 reps async", "1 rep sync", "2 reps sync"],
        rows,
        note="paper: async ~+20%/+30%; sync would be ~+100%/+200%",
    )

    def pct(cell):
        return float(cell.rstrip("%"))

    for row in rows[1:]:
        async1, async2, sync1, sync2 = map(pct, row[1:])
        assert -5 <= async1 <= 45  # modest
        assert async1 <= async2 + 8 <= 70  # second replica costs less extra
        assert sync1 >= 2 * max(async1, 10)  # sync is the expensive path
        assert sync2 >= sync1
    benchmark(lambda: _latency(32, 1, ReplicationMode.NONE))
