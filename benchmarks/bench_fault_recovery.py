"""Failure recovery: failover latency, throughput dip, re-replication.

The paper's fault-tolerance design (§III.H) promises that a node failure
costs the client a bounded number of timeouts before it fails over to a
replica, and that a manager restores the replication level afterwards.
This benchmark measures that end to end with the chaos harness: a node
is killed mid-workload, the client rides through timeouts/backoff to the
replica, a manager repairs, and the invariants (no acked write lost,
replication restored) are verified on every row.

Columns per cluster size:

* failover ms — worst successful-op latency between kill and repair
  (the op that burned the timeout chain before failing over);
* dip % — throughput drop during the failure window vs steady state;
* repair ms — wall time of ``repair_after_failure`` (time to
  re-replicate the dead node's partitions);
* invariants — OK iff zero acked writes lost and replication restored.
"""

from _util import fmt, print_table, scales

from repro.core import ZHTConfig
from repro.faults import run_chaos

SCALES = scales(small=(4, 6), paper=(4, 8, 16))
OPS = 160


def _config(replicas: int) -> ZHTConfig:
    return ZHTConfig(
        transport="local",
        num_partitions=64,
        num_replicas=replicas,
        request_timeout=0.02,
        failures_before_dead=2,
        backoff_factor=1.5,
        max_retries=10,
    )


def _run(nodes: int, replicas: int):
    return run_chaos(
        "local",
        nodes=nodes,
        replicas=replicas,
        ops=OPS,
        seed=nodes * 31 + replicas,
        config=_config(replicas),
    )


def generate_series():
    rows = []
    for n in SCALES:
        r = _run(n, 1)
        dip = (
            (1 - r.throughput_during / r.throughput_before) * 100
            if r.throughput_before
            else 0.0
        )
        rows.append(
            (
                n,
                fmt(r.failover_latency_s * 1e3, 1),
                f"{dip:.0f}%",
                fmt(r.repair_time_s * 1e3, 1),
                f"{r.ops_acked}/{r.ops_attempted}",
                "OK" if r.ok else "VIOLATED",
            )
        )
    return rows


def test_fault_recovery(benchmark):
    rows = generate_series()
    print_table(
        "Failure recovery: kill one node mid-workload (replication=1)",
        ["nodes", "failover ms", "dip", "repair ms", "acked", "invariants"],
        rows,
        note="failover bound: failures_before_dead=2 timeouts + backoff",
    )
    for row in rows:
        # The invariant column is the benchmark's correctness gate.
        assert row[-1] == "OK", row
        # Failover must complete within the configured timeout budget:
        # 2 detection timeouts with backoff plus scheduling slack.
        assert float(row[1]) < 500.0, row
    benchmark(lambda: _run(4, 1))
