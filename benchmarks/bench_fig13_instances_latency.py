"""Figure 13: latency with 1/2/4/8 ZHT instances per node.

Paper shape (4-core Blue Gene/P nodes): latency is stable up to 4
instances/node (one per core) and roughly doubles at 8 instances/node
(2.08 ms at 8K nodes x 8 instances vs 1.1 ms baseline).
"""

from _util import emit_json, fmt, print_table, scales

from repro.sim import simulate

SCALES = scales(small=(4, 16, 64, 256), paper=(4, 16, 64, 256, 1024))
INSTANCES = (1, 2, 4, 8)
OPS = 8


def generate_series():
    rows = []
    for n in SCALES:
        latencies = [
            simulate(
                n, ops_per_client=OPS, instances_per_node=i
            ).latency_ms
            for i in INSTANCES
        ]
        rows.append((n, *(fmt(l) for l in latencies)))
    return rows


def test_fig13_instances_latency(benchmark):
    rows = generate_series()
    print_table(
        "Figure 13: latency (ms) vs nodes for instances/node (DES)",
        ["nodes"] + [f"{i} inst/node" for i in INSTANCES],
        rows,
        note="paper: flat through 4/node (1 per core), ~2x at 8/node; "
        "bench_multicore_node measures the real-socket analogue",
    )
    emit_json(
        "fig13_instances_latency",
        ["nodes"] + [f"inst_{i}" for i in INSTANCES],
        rows,
    )
    for row in rows:
        one, two, four, eight = (float(c) for c in row[1:])
        assert two < 1.2 * one  # 2 servers + 2 clients on 4 cores: free
        assert four < 1.6 * one  # mild (server+client threads share cores)
        assert eight > 1.8 * one  # oversubscribed: ~2x, the paper's anchor
    benchmark(lambda: simulate(16, ops_per_client=4, instances_per_node=8))
