"""Wire codec micro-benchmark: struct-packed fixed vs varint headers.

In a zero-hop DHT the per-request server overhead *is* the latency
budget, so the codec sits on every hot path (wire framing and the WAL).
This gates the point of the fixed codec: encode+decode of a typical
request/response pair must be at least 1.5x faster than the varint
path it replaces.
"""

import time

from _util import emit_json, fmt, fmt_int, print_table, scales

from repro.core.protocol import (
    OpCode,
    Request,
    Response,
    decode_request_span,
    decode_response_span,
    deframe_span,
    encode_framed_request,
    encode_framed_response,
)

N = scales(small=(20_000,), paper=(200_000,))[0]

#: The paper's benchmark op shape: short key, 132-byte value.
REQUEST = Request(
    op=OpCode.INSERT,
    key=b"key-00001234",
    value=b"v" * 132,
    request_id=123_456_789,
    epoch=7,
)
RESPONSE = Response(value=b"v" * 132, request_id=123_456_789, epoch=7)


def _roundtrip(codec: str) -> float:
    """Seconds for N framed encode+decode request/response pairs."""
    start = time.perf_counter()
    for _ in range(N):
        wire = encode_framed_request(REQUEST, codec)
        s, e, _ = deframe_span(wire, 0)
        decode_request_span(wire, s, e)
        wire = encode_framed_response(RESPONSE, codec)
        s, e, _ = deframe_span(wire, 0)
        decode_response_span(wire, s, e)
    return time.perf_counter() - start


def generate_series():
    _roundtrip("fixed")  # warm both paths
    _roundtrip("varint")
    varint = _roundtrip("varint")
    fixed = _roundtrip("fixed")
    speedup = varint / fixed
    rows = [
        ("varint", fmt_int(N / varint), "1.00"),
        ("fixed", fmt_int(N / fixed), fmt(speedup, 2)),
    ]
    return rows, speedup


def test_codec_speedup(benchmark):
    rows, speedup = generate_series()
    print_table(
        "Wire codec: framed encode+decode (request+response pairs/s)",
        ["codec", "pairs/s", "relative"],
        rows,
        note=f"fixed must be >= 1.5x varint; measured {speedup:.2f}x",
    )
    emit_json("codec", ["codec", "pairs_per_s", "relative"], rows)
    assert speedup >= 1.5
    benchmark(lambda: _roundtrip("fixed"))
