"""Figure 10: throughput vs scale on the HEC-Cluster.

Paper shape: "nearly 7x throughput difference between ZHT and
Cassandra" at 64 nodes; Memcached ~27% above ZHT.
"""

from _util import fmt_int, print_table, scales

from repro.sim import (
    CASSANDRA_CLUSTER,
    CLUSTER_ETHERNET_LINK,
    MEMCACHED_CLUSTER,
    ZHT_CLUSTER,
    simulate,
)

SCALES = scales(small=(1, 2, 4, 8, 16, 32, 64), paper=(1, 2, 4, 8, 16, 32, 64))
OPS = 16


def _run(n, service, real_core=True):
    return simulate(
        n,
        ops_per_client=OPS,
        service=service,
        link=CLUSTER_ETHERNET_LINK,
        topology="switch",
        real_core=real_core,
    )


def generate_series():
    rows = []
    for n in SCALES:
        zht = _run(n, ZHT_CLUSTER)
        cassandra = _run(n, CASSANDRA_CLUSTER, real_core=False)
        memcached = _run(n, MEMCACHED_CLUSTER, real_core=False)
        rows.append(
            (
                n,
                fmt_int(zht.throughput_ops_s),
                fmt_int(cassandra.throughput_ops_s),
                fmt_int(memcached.throughput_ops_s),
            )
        )
    return rows


def test_fig10_throughput_cluster(benchmark):
    rows = generate_series()
    print_table(
        "Figure 10: throughput (ops/s) vs nodes, HEC-Cluster (DES)",
        ["nodes", "ZHT", "Cassandra", "Memcached"],
        rows,
        note="paper: ZHT ~7x Cassandra at 64 nodes; Memcached ~27% above ZHT",
    )

    def num(s):
        return float(s.replace(",", ""))

    last = rows[-1]
    ratio = num(last[1]) / num(last[2])
    assert 3.0 <= ratio <= 12.0  # the multiple-x Cassandra gap
    assert num(last[3]) >= num(last[1])  # memcached a bit above ZHT
    benchmark(lambda: _run(16, ZHT_CLUSTER))
