"""Consistency-checker throughput and history-recording overhead.

Two costs of the verification subsystem (:mod:`repro.verify`), measured
so the tooling itself stays cheap enough to run in CI:

* **Checker throughput**: events/s of :func:`~repro.verify.check_history`
  over synthesized valid concurrent histories
  (:func:`~repro.verify.synthesize_history` — overlapping intervals, so
  the Wing&Gong search actually searches).  Acceptance: a 10k-op
  history checks in well under 10 s.
* **Recording overhead**: ns/op for a live local-cluster client with
  (a) the raw driver loop (no client wrapper), (b) the ``ZHT`` wrapper
  with recording disabled — the hook is one ``is None`` test, so this
  must track (a) — and (c) recording enabled (in-memory).

Run standalone for CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_verify_checker.py --smoke
"""

import sys
import time

from _util import emit_json, fmt, fmt_int, print_table, scales

from repro import ZHTConfig, build_local_cluster
from repro.net.transport import execute_op
from repro.core.protocol import OpCode
from repro.verify import HistoryRecorder, check_history, synthesize_history

HISTORY_SIZES_SMALL = (1_000, 10_000)
HISTORY_SIZES_PAPER = (1_000, 10_000, 50_000)

CHECKER_HEADERS = ("events", "keys", "states", "elapsed s", "events/s")
OVERHEAD_HEADERS = ("client path", "ops", "ns/op", "ops/s")


def checker_series(sizes):
    """Check synthesized histories of increasing size; returns rows and
    the per-size elapsed seconds."""
    rows = []
    elapsed = {}
    for size in sizes:
        events, finals = synthesize_history(42, size, clients=8)
        t0 = time.perf_counter()
        report = check_history(events, final_values=finals)
        dt = time.perf_counter() - t0
        assert report.ok, f"synthesized history of {size} ops must pass"
        assert not report.inconclusive_keys
        elapsed[size] = dt
        rows.append(
            (
                fmt_int(len(events)),
                fmt_int(report.keys_checked),
                fmt_int(report.states_explored),
                fmt(dt),
                fmt_int(len(events) / dt),
            )
        )
    return rows, elapsed


def overhead_series(ops: int):
    """ns/op for raw driver vs recorder-off vs recorder-on lookups."""
    config = ZHTConfig(transport="local", num_partitions=64)
    rows = []
    ns_per_op = {}
    with build_local_cluster(3, config) as cluster:
        zht = cluster.client(recorder=None)
        zht.insert(b"bench-key", b"v" * 132)

        def timed(label, fn):
            fn()  # warm
            t0 = time.perf_counter()
            for _ in range(ops):
                fn()
            dt = time.perf_counter() - t0
            ns_per_op[label] = dt / ops * 1e9
            rows.append(
                (label, fmt_int(ops), fmt_int(dt / ops * 1e9), fmt_int(ops / dt))
            )

        core = zht.core
        transport = cluster.network

        def raw_driver():
            driver = core.driver(OpCode.LOOKUP, b"bench-key", b"")
            execute_op(core, driver, transport)

        timed("raw driver loop", raw_driver)
        timed("ZHT, recording off", lambda: zht.lookup(b"bench-key"))
        recording = cluster.client(recorder=HistoryRecorder(), client_id="b")
        timed("ZHT, recording on", lambda: recording.lookup(b"bench-key"))
    return rows, ns_per_op


def run(sizes, overhead_ops: int):
    checker_rows, elapsed = checker_series(sizes)
    print_table(
        "Consistency checker throughput (synthesized valid histories)",
        CHECKER_HEADERS,
        checker_rows,
        note="Wing&Gong per-key DFS + append multiset containment",
    )
    overhead_rows, ns_per_op = overhead_series(overhead_ops)
    print_table(
        "History recording overhead (local cluster, cached-key lookups)",
        OVERHEAD_HEADERS,
        overhead_rows,
        note="disabled hook is a single `is None` test per operation",
    )
    emit_json("verify_checker", CHECKER_HEADERS, checker_rows)
    emit_json("verify_recording_overhead", OVERHEAD_HEADERS, overhead_rows)
    return elapsed, ns_per_op


def check(elapsed, ns_per_op) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    big = max(elapsed)
    if big >= 10_000 and elapsed[big] > 10.0:
        failures.append(
            f"{big}-op history took {elapsed[big]:.1f}s to check (>10s)"
        )
    # Recording disabled must track the raw driver loop; 50% headroom
    # keeps this robust to CI noise (the real delta is a few percent).
    if ns_per_op["ZHT, recording off"] > 1.5 * ns_per_op["raw driver loop"]:
        failures.append(
            f"recording-off path {ns_per_op['ZHT, recording off']:,.0f} "
            f"ns/op vs raw driver {ns_per_op['raw driver loop']:,.0f} ns/op"
        )
    return failures


def test_verify_checker(benchmark):
    sizes = scales(small=HISTORY_SIZES_SMALL, paper=HISTORY_SIZES_PAPER)
    elapsed, ns_per_op = run(sizes, overhead_ops=2_000)
    assert not check(elapsed, ns_per_op)

    events, finals = synthesize_history(7, 2_000, clients=8)
    benchmark(lambda: check_history(events, final_values=finals))


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        elapsed, ns_per_op = run((1_000, 10_000), overhead_ops=500)
    else:
        elapsed, ns_per_op = run(
            scales(small=HISTORY_SIZES_SMALL, paper=HISTORY_SIZES_PAPER),
            overhead_ops=2_000,
        )
    problems = check(elapsed, ns_per_op)
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        big = max(elapsed)
        print(
            f"OK: {big:,}-op history checked in {elapsed[big]:.2f}s; "
            f"recording off {ns_per_op['ZHT, recording off']:,.0f} ns/op "
            f"vs raw {ns_per_op['raw driver loop']:,.0f} ns/op, on "
            f"{ns_per_op['ZHT, recording on']:,.0f} ns/op"
        )
    sys.exit(1 if problems else 0)
