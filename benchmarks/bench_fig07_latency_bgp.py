"""Figure 7: latency vs scale on the Blue Gene/P (1 -> 8K nodes).

Series: ZHT over TCP without connection caching, TCP with connection
caching, UDP (≈ TCP-cached), and Memcached.  Paper anchors: ZHT <0.5 ms
at 1 node, ~1.1 ms at 8K nodes; TCP-no-caching clearly worse; Memcached
1.1 -> 1.4 ms (25%-139% slower than ZHT).
"""

from _util import (
    emit_json,
    fmt,
    print_table,
    registry_capture,
    registry_percentiles,
    scales,
)

from repro.sim import (
    MEMCACHED_BGP,
    ZHT_BGP,
    ZHT_BGP_NO_CONN_CACHE,
    simulate,
)

SCALES = scales(
    small=(1, 2, 16, 64, 256, 512),
    paper=(1, 2, 16, 64, 256, 1024, 4096, 8192),
)
OPS = 12


def generate_series():
    rows = []
    for n in SCALES:
        cached = simulate(n, ops_per_client=OPS, service=ZHT_BGP).latency_ms
        nocache = simulate(
            n, ops_per_client=OPS, service=ZHT_BGP_NO_CONN_CACHE
        ).latency_ms
        udp = cached  # Fig 7: "TCP with connection caching can deliver
        # essentially the same performance as UDP" — same service model.
        memcached = simulate(
            n, ops_per_client=OPS, service=MEMCACHED_BGP, real_core=False
        ).latency_ms
        rows.append(
            (n, fmt(nocache), fmt(cached), fmt(udp), fmt(memcached))
        )
    return rows


def test_fig07_latency_bgp(benchmark):
    with registry_capture():
        rows = generate_series()
        # ZHT series run the real server core inside the DES, so the
        # registry histograms carry genuine handle-path timings.
        latency = registry_percentiles("server.handle", "novoht.put", "novoht.get")
    headers = ["nodes", "TCP no-cache", "TCP cached", "UDP", "Memcached"]
    print_table(
        "Figure 7: latency (ms) vs nodes, Blue Gene/P torus (DES)",
        headers,
        rows,
        note="paper: ZHT <0.5ms @1, ~1.1ms @8K; Memcached 1.1->1.4ms",
    )
    emit_json("fig07_latency_bgp", headers, rows, latency=latency)
    by_scale = {int(r[0]): r for r in rows}
    # Anchors (shape): 1-node ZHT under 0.5 ms; memcached always slower;
    # no-cache always slower than cached.
    assert float(by_scale[1][2]) < 0.5
    for r in rows:
        assert float(r[1]) > float(r[2])
        assert float(r[4]) > float(r[2])
    benchmark(lambda: simulate(64, ops_per_client=4, service=ZHT_BGP))
