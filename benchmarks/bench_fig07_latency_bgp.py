"""Figure 7: latency vs scale on the Blue Gene/P (1 -> 8K nodes).

Series: ZHT over TCP without connection caching, TCP with connection
caching, UDP (≈ TCP-cached), and Memcached.  Paper anchors: ZHT <0.5 ms
at 1 node, ~1.1 ms at 8K nodes; TCP-no-caching clearly worse; Memcached
1.1 -> 1.4 ms (25%-139% slower than ZHT).
"""

from _util import fmt, print_table, scales

from repro.sim import (
    MEMCACHED_BGP,
    ZHT_BGP,
    ZHT_BGP_NO_CONN_CACHE,
    simulate,
)

SCALES = scales(
    small=(1, 2, 16, 64, 256, 512),
    paper=(1, 2, 16, 64, 256, 1024, 4096, 8192),
)
OPS = 12


def generate_series():
    rows = []
    for n in SCALES:
        cached = simulate(n, ops_per_client=OPS, service=ZHT_BGP).latency_ms
        nocache = simulate(
            n, ops_per_client=OPS, service=ZHT_BGP_NO_CONN_CACHE
        ).latency_ms
        udp = cached  # Fig 7: "TCP with connection caching can deliver
        # essentially the same performance as UDP" — same service model.
        memcached = simulate(
            n, ops_per_client=OPS, service=MEMCACHED_BGP, real_core=False
        ).latency_ms
        rows.append(
            (n, fmt(nocache), fmt(cached), fmt(udp), fmt(memcached))
        )
    return rows


def test_fig07_latency_bgp(benchmark):
    rows = generate_series()
    print_table(
        "Figure 7: latency (ms) vs nodes, Blue Gene/P torus (DES)",
        ["nodes", "TCP no-cache", "TCP cached", "UDP", "Memcached"],
        rows,
        note="paper: ZHT <0.5ms @1, ~1.1ms @8K; Memcached 1.1->1.4ms",
    )
    by_scale = {int(r[0]): r for r in rows}
    # Anchors (shape): 1-node ZHT under 0.5 ms; memcached always slower;
    # no-cache always slower than cached.
    assert float(by_scale[1][2]) < 0.5
    for r in rows:
        assert float(r[1]) > float(r[2])
        assert float(r[4]) > float(r[2])
    benchmark(lambda: simulate(64, ops_per_client=4, service=ZHT_BGP))
