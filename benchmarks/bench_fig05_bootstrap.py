"""Figure 5: ZHT bootstrap time vs node count (64 -> 8K nodes).

Paper shape: bootstrap is cheap and grows slowly — ~8 s at 1K nodes,
~10 s at 8K nodes, dominated by per-node server start + neighbor-list
generation, with "no global communication required between nodes".

We measure the real local-bootstrap cost (building the full membership
table and every instance's neighbor/replica view) and confirm the
growth is near-linear in nodes, not quadratic.
"""

import random
import time

from _util import fmt, fmt_int, print_table, scales

from repro import ZHTConfig, build_membership

SCALES = scales(
    small=(64, 128, 256, 512, 1024, 2048),
    paper=(64, 128, 256, 512, 1024, 2048, 4096, 8192),
)


def bootstrap_once(num_nodes: int) -> float:
    """Seconds to build the membership table + per-node neighbor lists."""
    config = ZHTConfig(num_partitions=max(1024, num_nodes))
    rng = random.Random(7)
    start = time.perf_counter()
    table, _nodes, instances = build_membership(num_nodes, config, rng)
    # "Generate neighbor list": each node derives its replica successors.
    for inst in instances:
        pids = table.partitions_of_instance(inst.instance_id)
        if pids:
            table.replicas_for_partition(pids[0], 2)
    return time.perf_counter() - start


def generate_series():
    rows = []
    baseline = None
    for n in SCALES:
        seconds = bootstrap_once(n)
        if baseline is None:
            baseline = (n, seconds)
        rows.append((n, fmt(seconds, 3), fmt_int(n / seconds)))
    return rows


def test_fig05_bootstrap_time(benchmark):
    rows = generate_series()
    print_table(
        "Figure 5: ZHT bootstrap time vs nodes (real membership build)",
        ["nodes", "seconds", "nodes/s"],
        rows,
        note="paper: ~8s @1K nodes, ~10s @8K (slow growth, no global comm)",
    )
    # Growth must be sub-quadratic: time per node roughly flat.
    t_small = float(rows[0][1]) / SCALES[0]
    t_large = float(rows[-1][1]) / SCALES[-1]
    assert t_large < 25 * t_small
    benchmark(lambda: bootstrap_once(256))
