"""Figure 17: IStore metadata throughput (chunks/sec) by file size.

Paper setup: 1024 files of sizes 10KB..1GB, read+write through IStore at
8/16/32 nodes with n-way dispersal.  Shape: the smaller the files, the
more metadata-intensive IStore becomes — small-file runs reach ~500
chunk-metadata ops/sec at 32 nodes, while large files are bandwidth-
bound and push far fewer chunks/sec.

We run the real IStore (GF(256) Reed-Solomon + ZHT metadata) in-process,
with file counts/sizes scaled to laptop budgets.
"""

import time

from _util import fmt, fmt_int, print_table, paper_scale, scales

from repro import ZHTConfig, build_local_cluster
from repro.istore import ChunkStore, IStore

NODE_SCALES = scales(small=(8, 16, 32), paper=(8, 16, 32))
FILE_SIZES = (
    (10 * 1024, "10KB"),
    (100 * 1024, "100KB"),
    (1024 * 1024, "1MB"),
) + (((10 * 1024 * 1024, "10MB"),) if paper_scale() else ())
FILES = 24 if not paper_scale() else 128


def run_cell(num_nodes: int, file_size: int) -> float:
    """Chunks/sec for write+read of FILES files of file_size bytes."""
    with build_local_cluster(
        4, ZHTConfig(transport="local", num_partitions=64)
    ) as cluster:
        stores = [ChunkStore(i) for i in range(num_nodes)]
        istore = IStore(cluster.client(), stores)
        payload = b"\xAB" * file_size
        start = time.perf_counter()
        for i in range(FILES):
            istore.write(f"file-{file_size}-{i}", payload)
        for i in range(FILES):
            istore.read(f"file-{file_size}-{i}")
        elapsed = time.perf_counter() - start
        chunks = istore.stats.chunks_written + istore.stats.chunks_read
    return chunks / elapsed


def generate_series():
    rows = []
    for n in NODE_SCALES:
        cells = [fmt_int(run_cell(n, size)) for size, _label in FILE_SIZES]
        rows.append((n, *cells))
    return rows


def test_fig17_istore_metadata(benchmark):
    rows = generate_series()
    print_table(
        "Figure 17: IStore chunk throughput (chunks/s), real IDA + ZHT",
        ["nodes"] + [label for _size, label in FILE_SIZES],
        rows,
        note="paper: small files metadata-bound (~500 chunks/s @32 nodes); "
        "throughput falls as file size grows (encode/IO bound)",
    )

    def num(s):
        return float(s.replace(",", ""))

    for row in rows:
        small_files, big_files = num(row[1]), num(row[-1])
        assert small_files > big_files  # the metadata-vs-bandwidth shape
    benchmark(lambda: run_cell(8, 10 * 1024))
