"""Ablation: network-aware (correlated) vs random instance ids (§VI).

The paper's first future-work item: "making ZHT network topology aware
is critical to making ZHT scalable by ensuring that communication is
kept localized when performing 1-to-1 communication" — replicas are
placed on UUID-ring successors, so if ids correlate with network
position, replica traffic stays within a few torus hops instead of
crossing the machine.

We build both memberships, compute every partition's owner→replica hop
distances on the Blue Gene/P torus model, and compare.
"""

import random

from _util import fmt, print_table, scales

from repro import ZHTConfig, build_membership
from repro.sim.topology import TorusTopology

SCALES = scales(small=(64, 256, 1024), paper=(64, 256, 1024, 4096))
REPLICAS = 2


def replica_hops(num_nodes: int, network_aware: bool) -> float:
    """Mean torus hops from each partition's owner to its replicas."""
    config = ZHTConfig(num_partitions=max(256, num_nodes))
    table, _nodes, _instances = build_membership(
        num_nodes, config, random.Random(1), network_aware=network_aware
    )
    topo = TorusTopology.for_nodes(num_nodes)
    node_index = {node_id: i for i, node_id in enumerate(table.nodes)}
    total, count = 0.0, 0
    for pid in range(0, config.num_partitions, max(1, config.num_partitions // 512)):
        chain = table.replicas_for_partition(pid, REPLICAS)
        owner = node_index[chain[0].node_id]
        for replica in chain[1:]:
            total += topo.hops(owner, node_index[replica.node_id])
            count += 1
    return total / max(count, 1)


def generate_series():
    rows = []
    for n in SCALES:
        rnd = replica_hops(n, network_aware=False)
        aware = replica_hops(n, network_aware=True)
        rows.append((n, fmt(rnd, 2), fmt(aware, 2), fmt(rnd / aware, 1) + "x"))
    return rows


def test_ablation_network_aware_placement(benchmark):
    rows = generate_series()
    print_table(
        "Ablation: replica traffic hops, random vs network-aware ids",
        ["nodes", "random ids", "correlated ids", "reduction"],
        rows,
        note="correlated ids keep replica chains on torus neighbors "
        "(the paper's planned network-aware topology)",
    )
    for row in rows:
        assert float(row[2]) < float(row[1])  # aware always closer
    # The benefit grows with machine size.
    assert float(rows[-1][1]) / float(rows[-1][2]) >= float(
        rows[0][1]
    ) / float(rows[0][2])
    benchmark(lambda: replica_hops(256, network_aware=True))
