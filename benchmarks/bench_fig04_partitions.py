"""Figure 4: latency vs number of partitions per ZHT instance.

Paper shape: essentially flat — 0.73 ms at 1 partition/instance vs
0.77 ms at 1K partitions/instance ("there is little impact ... on the
performance of partitions as we increase the number of partitions per
instance"), which is what makes the fixed-large-partition-count design
(migration without rehashing) free.

Here we measure the real in-process deployment: same op stream against
clusters whose only difference is ``num_partitions``.
"""

import time

from _util import fmt, print_table, scales

from repro import ZHTConfig, build_local_cluster

PARTITIONS_PER_INSTANCE = scales(
    small=(1, 10, 100, 1000),
    paper=(1, 10, 100, 1000),
)
NUM_NODES = 2
OPS = 600


def measure_latency(partitions_per_instance: int) -> float:
    """Mean per-op latency (ms) with the given partition count."""
    config = ZHTConfig(
        transport="local",
        num_partitions=NUM_NODES * partitions_per_instance,
    )
    with build_local_cluster(NUM_NODES, config) as cluster:
        z = cluster.client()
        keys = [f"key-{i:010d}" for i in range(OPS // 3)]
        start = time.perf_counter()
        for key in keys:
            z.insert(key, b"v" * 132)
        for key in keys:
            z.lookup(key)
        for key in keys:
            z.remove(key)
        elapsed = time.perf_counter() - start
    return elapsed / (3 * len(keys)) * 1000


def generate_series():
    return [(p, fmt(measure_latency(p), 4)) for p in PARTITIONS_PER_INSTANCE]


def test_fig04_partitions_per_instance(benchmark):
    rows = generate_series()
    print_table(
        "Figure 4: latency vs partitions per instance (real, in-process)",
        ["partitions/instance", "latency (ms)"],
        rows,
        note="paper: flat, 0.73ms @1 -> 0.77ms @1000 (within ~6%)",
    )
    latencies = [float(r[1]) for r in rows]
    # The design claim: partition count must not matter (allow 40% noise).
    assert max(latencies) < 1.4 * min(latencies) + 0.05
    benchmark(lambda: measure_latency(100))
