"""Overload survival: goodput and bounded tail latency past saturation.

The request-survival layer (DESIGN.md §12) promises that a ZHT
deployment pushed past its sustainable throughput degrades by *shedding*
— explicit RETRY_LATER rejections and expired-deadline drops — rather
than by collapsing into timeout storms.  This benchmark measures that
contract on loopback TCP:

1. **peak** — closed-loop calibration: N workers drive the cluster as
   fast as it will go; the completed rate is the sustainable peak;
2. **overload** — 2N workers (≈2× the sustainable load, since phase 1
   saturated the server) with a short per-op deadline; admission
   control sheds the excess at the door.

Acceptance: goodput (accepted ops/s) under 2× load stays >= 70% of
peak, and the p99 latency of *accepted* requests stays bounded by the
deadline budget — overload makes the cluster say "no" quickly, not
slowly.

Run standalone for CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_overload.py --smoke
"""

import sys
import threading
import time

from _util import emit_json, fmt, fmt_int, print_table

from repro.core import ZHTConfig
from repro.core.errors import ZHTError
from repro.net.cluster import build_tcp_cluster

NODES = 3
VALUE = b"v" * 132  # the paper's micro-benchmark value size
PEAK_WORKERS = 6
OVERLOAD_FACTOR = 2
#: Per-op wall-clock budget during the overload phase.
DEADLINE_S = 0.1


def _config() -> ZHTConfig:
    return ZHTConfig(
        transport="tcp",
        num_partitions=32,
        num_replicas=1,
        request_timeout=0.1,
        backoff_factor=1.5,
        max_retries=5,
        op_deadline_s=DEADLINE_S,
        # Sized between the two phase concurrencies: phase 1's workers
        # all fit, phase 2's exceed it and get shed at the door.
        max_inflight=PEAK_WORKERS + 2,
    )


def _phase(cluster, workers: int, duration: float):
    """Closed-loop phase: each worker hammers its own client until the
    clock runs out.  Returns (accepted, rejected, sorted latencies)."""
    stop = time.monotonic() + duration
    latencies: list[list[float]] = [[] for _ in range(workers)]
    rejected = [0] * workers

    def drive(wid: int) -> None:
        client = cluster.client(seed=100 + wid)
        i = 0
        while time.monotonic() < stop:
            key = f"w{wid}-{i:06d}".encode()
            i += 1
            t0 = time.monotonic()
            try:
                if i % 4 == 0:
                    # Read back the previous iteration's insert (i-1 was
                    # this key's index before the increment; i-2 is the
                    # last one actually inserted).
                    client.lookup(f"w{wid}-{i - 2:06d}".encode())
                else:
                    client.insert(key, VALUE)
            except ZHTError:
                rejected[wid] += 1
                continue
            latencies[wid].append(time.monotonic() - t0)

    threads = [
        threading.Thread(target=drive, args=(w,)) for w in range(workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    flat = sorted(lat for per in latencies for lat in per)
    return len(flat), sum(rejected), flat


def _pct(latencies: list[float], p: float) -> float:
    if not latencies:
        return 0.0
    return latencies[min(len(latencies) - 1, int(p * (len(latencies) - 1)))]


def run(duration: float):
    config = _config()
    with build_tcp_cluster(NODES, config, seed=17) as cluster:
        # Warm connections and partitions before timing anything.
        warm = cluster.client(seed=1)
        for i in range(64):
            warm.insert(f"warm-{i}".encode(), VALUE)

        peak_ok, peak_rej, peak_lat = _phase(cluster, PEAK_WORKERS, duration)
        over_ok, over_rej, over_lat = _phase(
            cluster, PEAK_WORKERS * OVERLOAD_FACTOR, duration
        )
        shed = sum(
            s.core.stats.shed_overload + s.core.stats.shed_expired
            for s in cluster.servers
            if s.core is not None
        )

    peak = peak_ok / duration
    goodput = over_ok / duration
    rows = [
        (
            "peak",
            PEAK_WORKERS,
            fmt_int(peak),
            peak_ok,
            peak_rej,
            fmt(_pct(peak_lat, 0.50) * 1e3, 1),
            fmt(_pct(peak_lat, 0.99) * 1e3, 1),
        ),
        (
            f"{OVERLOAD_FACTOR}x load",
            PEAK_WORKERS * OVERLOAD_FACTOR,
            fmt_int(goodput),
            over_ok,
            over_rej,
            fmt(_pct(over_lat, 0.50) * 1e3, 1),
            fmt(_pct(over_lat, 0.99) * 1e3, 1),
        ),
    ]
    stats = {
        "peak_ops_s": peak,
        "goodput_ops_s": goodput,
        "goodput_ratio": goodput / peak if peak else 0.0,
        "accepted_p99_s": _pct(over_lat, 0.99),
        "rejected": over_rej,
        "shed_by_servers": shed,
    }
    return rows, stats


HEADERS = ("phase", "workers", "ops/s", "accepted", "rejected", "p50 ms", "p99 ms")


def check(stats: dict) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    if stats["goodput_ratio"] < 0.70:
        failures.append(
            f"goodput at 2x load is {stats['goodput_ratio']:.0%} of peak "
            "(< 70%)"
        )
    # Accepted requests must settle within the deadline budget (one
    # request_timeout of scheduling slack on top of the op deadline).
    bound = DEADLINE_S + _config().request_timeout
    if stats["accepted_p99_s"] > bound:
        failures.append(
            f"accepted p99 {stats['accepted_p99_s'] * 1e3:.1f} ms exceeds "
            f"{bound * 1e3:.0f} ms bound"
        )
    return failures


def _report(duration: float) -> list[str]:
    rows, stats = run(duration)
    print_table(
        f"Overload survival: {OVERLOAD_FACTOR}x sustainable load "
        f"(TCP, {NODES} nodes, deadline {DEADLINE_S * 1e3:.0f} ms)",
        HEADERS,
        rows,
        note=(
            f"goodput ratio {stats['goodput_ratio']:.0%}, "
            f"{stats['rejected']} client rejections, "
            f"{stats['shed_by_servers']} server sheds"
        ),
    )
    emit_json("overload", HEADERS, rows)
    return check(stats)


def test_overload_goodput(benchmark):
    failures = _report(duration=1.5)
    assert not failures, failures

    def timed_case():
        config = _config()
        with build_tcp_cluster(NODES, config, seed=17) as cluster:
            client = cluster.client(seed=2)
            for i in range(64):
                client.insert(f"t-{i}".encode(), VALUE)

    benchmark(timed_case)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    failures = _report(duration=0.8 if smoke else 2.5)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1 if failures else 0)
