"""Table 1: feature/routing comparison of DHT implementations.

The paper's table compares implementation language, routing time,
persistence, dynamic membership, and append across Cassandra, Memcached,
C-MPI, Dynamo, and ZHT.  Unlike the paper (which cites documentation),
we *measure* each property against our implementations: routing hops are
counted on live lookups, and feature cells come from probing the actual
API (does append exist? does state survive a restart? ...).
"""

import math

from _util import print_table

from repro.baselines.cassandra import CassandraLike
from repro.baselines.kademlia import KademliaDHT
from repro.baselines.memcached import MemcachedLike
from repro import ZHTConfig, build_local_cluster

NODES = 64
PROBES = 200


def measured_cassandra_hops() -> float:
    ring = CassandraLike(NODES, seed=1)
    for i in range(PROBES):
        ring.route(ring.nodes[i % NODES], f"probe-{i}".encode())
    return ring.average_hops()


def measured_kademlia_hops() -> float:
    dht = KademliaDHT(NODES, seed=1)
    for i in range(PROBES):
        dht.lookup_node(dht.nodes[i % NODES], i * 0x9E3779B97F4A7C15)
    return dht.average_hops()


def measured_zht_hops() -> tuple[float, float]:
    """(steady-state hops, worst case after a membership change)."""
    with build_local_cluster(
        4, ZHTConfig(transport="local", num_partitions=64)
    ) as cluster:
        z = cluster.client()
        for i in range(PROBES):
            z.insert(f"probe-{i}", b"v")
        steady = z.stats.redirects_followed / PROBES
        # Stale client after a join: at most one redirect per op (0 to 2
        # message legs in the paper's counting).
        cluster.add_node()
        stale = cluster.client()
        stale.core.membership = z.core.membership  # pretend it's old
        before = stale.stats.redirects_followed
        for i in range(PROBES):
            stale.lookup(f"probe-{i}")
        worst = (stale.stats.redirects_followed - before) / PROBES
    return steady, worst


def generate_table():
    cas_hops = measured_cassandra_hops()
    kad_hops = measured_kademlia_hops()
    zht_steady, zht_worst = measured_zht_hops()
    log_n = math.log2(NODES)
    return [
        (
            "Cassandra-like",
            "Python",
            f"log(N): {cas_hops:.1f} (log2 {NODES}={log_n:.0f})",
            "Yes",
            "Yes",
            "No",
        ),
        ("Memcached-like", "Python", "0 (client-sharded)", "No", "No", "No"),
        (
            "C-MPI (Kademlia)",
            "Python",
            f"log(N): {kad_hops:.1f}",
            "No",
            "No",
            "No",
        ),
        ("Dynamo (per paper)", "Java", "0 to log(N)", "Yes", "Yes", "No"),
        (
            "ZHT",
            "Python",
            f"0 to 2: measured {zht_steady:.2f} steady, "
            f"{zht_worst:.2f} stale",
            "Yes",
            "Yes",
            "Yes",
        ),
    ]


def test_table1_comparison(benchmark):
    rows = generate_table()
    print_table(
        "Table 1: DHT implementation comparison (measured)",
        ["name", "impl", "routing", "persistence", "dyn. membership", "append"],
        rows,
        note="Dynamo is closed-source; its row reproduces the paper's "
        "citation rather than a measurement.",
    )
    by_name = {r[0]: r for r in rows}
    # The paper's qualitative claims, now measured:
    assert by_name["ZHT"][5] == "Yes" and by_name["Cassandra-like"][5] == "No"
    assert "log(N)" in by_name["Cassandra-like"][2]
    assert by_name["Memcached-like"][3] == "No"
    # ZHT steady-state needs no redirects; stale clients need at most ~1.
    zht_cell = by_name["ZHT"][2]
    steady = float(zht_cell.split("measured ")[1].split(" steady")[0])
    assert steady == 0.0
    benchmark(measured_cassandra_hops)
