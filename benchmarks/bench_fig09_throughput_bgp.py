"""Figure 9: throughput vs scale on the Blue Gene/P.

Paper shape: ZHT (TCP-cached/UDP) and Memcached grow near-linearly,
ZHT reaching ~7.4M ops/s at 8K nodes; TCP without connection caching
sits clearly below.
"""

from _util import fmt_int, print_table, scales

from repro.sim import (
    MEMCACHED_BGP,
    ZHT_BGP,
    ZHT_BGP_NO_CONN_CACHE,
    predicted_throughput_ops_s,
    simulate,
)

SCALES = scales(
    small=(1, 2, 16, 64, 256, 512),
    paper=(1, 2, 16, 64, 256, 1024, 4096, 8192),
)
OPS = 12


def generate_series():
    rows = []
    for n in SCALES:
        zht = simulate(n, ops_per_client=OPS, service=ZHT_BGP)
        nocache = simulate(
            n, ops_per_client=OPS, service=ZHT_BGP_NO_CONN_CACHE
        )
        memcached = simulate(
            n, ops_per_client=OPS, service=MEMCACHED_BGP, real_core=False
        )
        rows.append(
            (
                n,
                fmt_int(nocache.throughput_ops_s),
                fmt_int(zht.throughput_ops_s),
                fmt_int(memcached.throughput_ops_s),
                fmt_int(predicted_throughput_ops_s(n)),
            )
        )
    return rows


def test_fig09_throughput_bgp(benchmark):
    rows = generate_series()
    print_table(
        "Figure 9: throughput (ops/s) vs nodes, Blue Gene/P (DES)",
        ["nodes", "ZHT TCP no-cache", "ZHT cached/UDP", "Memcached", "model"],
        rows,
        note="paper: near-linear growth; ZHT ~7.4M ops/s @8K nodes",
    )

    def num(s):
        return float(s.replace(",", ""))

    # Near-linear scaling: 8x nodes => >5x throughput across the sweep.
    first_multi, last = rows[2], rows[-1]
    scale_ratio = int(last[0]) / int(first_multi[0])
    assert num(last[2]) > 0.55 * scale_ratio * num(first_multi[2])
    # Cached beats no-cache at every scale; memcached below ZHT.
    for r in rows:
        assert num(r[2]) >= num(r[1])
        assert num(r[2]) >= num(r[3])
    # The analytic model extrapolates to ~7.4M @8K (paper anchor).
    model_8k = predicted_throughput_ops_s(8192)
    assert 5.5e6 <= model_8k <= 9.0e6
    benchmark(lambda: simulate(64, ops_per_client=4, service=ZHT_BGP))
