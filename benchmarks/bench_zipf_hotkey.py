"""Zipf hot keys: replica read spreading + client hot-key cache.

Under uniform keys ZHT's hashing spreads load evenly; under Zipf-skewed
popularity (s = 0.99, the YCSB default) a handful of keys dominate and
their owners become hot spots while the rest of the cluster idles.  The
hot-key path (DESIGN.md §13) counters with two client-side moves:

* **replica read spreading** — lookups of a client-observed hot key
  rotate across the replica chain instead of hammering the owner
  (bounded-staleness reads, same contract as degraded reads);
* **hot-key value cache** — a small TTL'd LRU serves repeat lookups
  locally, invalidated on every mutation ack.

This benchmark measures all three states on loopback TCP with the same
key universe and write ratio:

1. **uniform** — uniformly random keys (the paper's assumption);
2. **zipf off** — Zipf s=0.99, both mitigations disabled;
3. **zipf on**  — Zipf s=0.99, spreading + cache enabled.

Acceptance: aggregate ops/s with mitigations on is >= 1.5x the
unmitigated Zipf run, and p99 does not regress past the unmitigated
p99 (the point of offload is less queueing, not more).

Run standalone for CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_zipf_hotkey.py --smoke
"""

import random
import sys
import threading
import time

from _util import emit_json, fmt, fmt_int, print_table

from repro.core import ZHTConfig
from repro.core.errors import ZHTError
from repro.core.protocol import OpCode
from repro.net.cluster import build_tcp_cluster
from repro.workload import ZipfWorkload, random_value

NODES = 3
WORKERS = 8
#: Shared key universe for all phases (preloaded before timing).
UNIVERSE = 512
#: YCSB's default skew.
ZIPF_S = 0.99
WRITE_RATIO = 0.05
#: Hot-key knobs for the mitigated phase.  The threshold is low so the
#: Zipf head heats up within even a smoke run; the TTL is the staleness
#: budget this deployment accepts for hot reads (a deployment knob —
#: `repro verify --hot-cache` separately certifies hits against its own
#: tighter bound by capping the TTL at bound/2).
HOT_THRESHOLD = 2
CACHE_SIZE = 512
CACHE_TTL_S = 0.4


def _config(*, mitigate: bool) -> ZHTConfig:
    return ZHTConfig(
        transport="tcp",
        num_partitions=64,
        num_replicas=2,
        request_timeout=0.5,
        backoff_factor=1.5,
        max_retries=5,
        hot_read_spread=mitigate,
        hot_key_threshold=HOT_THRESHOLD,
        hot_key_cache_size=CACHE_SIZE if mitigate else 0,
        hot_key_cache_ttl_s=CACHE_TTL_S,
    )


def _uniform_ops(wid: int, seed: int = 7):
    """Uniform sampler over the same universe/write mix as the Zipf one."""
    rng = random.Random((seed << 20) ^ wid)
    while True:
        key = f"zipf-{rng.randrange(UNIVERSE):08d}".encode()
        if rng.random() < WRITE_RATIO:
            yield OpCode.INSERT, key, random_value(rng)
        else:
            yield OpCode.LOOKUP, key, b""


def _zipf_ops(wid: int, seed: int = 7):
    workload = ZipfWorkload(
        ops_per_client=1 << 30,
        universe=UNIVERSE,
        alpha=ZIPF_S,
        write_ratio=WRITE_RATIO,
        seed=seed,
    )
    return workload.client_ops(wid)


#: Untimed steady-state ramp per phase: the heat tracker and cache are
#: per-client, so the timed window must not start from a cold tracker.
WARMUP_S = 0.4


def _phase(cluster, make_ops, duration: float):
    """Closed-loop: each worker drives its own client through an untimed
    warmup, then until the clock runs out.  Returns (completed, failed,
    latencies, client_stats) for the timed window only."""
    warm_until = time.monotonic() + WARMUP_S
    stop = warm_until + duration
    latencies: list[list[float]] = [[] for _ in range(WORKERS)]
    failed = [0] * WORKERS
    hits = [0] * WORKERS
    spread = [0] * WORKERS

    def drive(wid: int) -> None:
        client = cluster.client(seed=100 + wid)
        ops = make_ops(wid)
        warm_hits = warm_spread = 0
        warming = True
        for op, key, value in ops:
            now = time.monotonic()
            if warming and now >= warm_until:
                warming = False
                warm_hits = client.stats.hot_cache_hits
                warm_spread = client.stats.hot_spread_reads
            if now >= stop:
                break
            t0 = time.monotonic()
            try:
                if op == OpCode.LOOKUP:
                    client.lookup(key)
                else:
                    client.insert(key, value)
            except ZHTError:
                if not warming:
                    failed[wid] += 1
                continue
            if not warming:
                latencies[wid].append(time.monotonic() - t0)
        hits[wid] = client.stats.hot_cache_hits - warm_hits
        spread[wid] = client.stats.hot_spread_reads - warm_spread

    threads = [
        threading.Thread(target=drive, args=(w,)) for w in range(WORKERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    flat = sorted(lat for per in latencies for lat in per)
    return len(flat), sum(failed), flat, {
        "cache_hits": sum(hits),
        "spread_reads": sum(spread),
    }


def _pct(latencies: list[float], p: float) -> float:
    if not latencies:
        return 0.0
    return latencies[min(len(latencies) - 1, int(p * (len(latencies) - 1)))]


def _imbalance(cluster) -> float:
    """Worst per-partition imbalance ratio across instances; resets the
    trackers so each phase reads its own window."""
    worst = 1.0
    for s in cluster.servers:
        if s.core is None:
            continue
        snap = s.core.partition_load.snapshot(reset=True)
        worst = max(worst, snap["imbalance_ratio"])
    return worst


def _preload(cluster) -> None:
    client = cluster.client(seed=1)
    rng = random.Random(3)
    keys = [f"zipf-{i:08d}".encode() for i in range(UNIVERSE)]
    for lo in range(0, UNIVERSE, 256):
        client.insert_many(
            (k, random_value(rng)) for k in keys[lo : lo + 256]
        )


def _run_one(make_ops, duration: float, *, mitigate: bool):
    config = _config(mitigate=mitigate)
    with build_tcp_cluster(NODES, config, seed=17) as cluster:
        _preload(cluster)
        _imbalance(cluster)  # reset the load window after the preload
        ok, fail, lat, cstats = _phase(cluster, make_ops, duration)
        imbalance = _imbalance(cluster)
    return {
        "completed": ok,
        "failed": fail,
        "ops_s": ok / duration,
        "p50_s": _pct(lat, 0.50),
        "p99_s": _pct(lat, 0.99),
        "imbalance": imbalance,
        **cstats,
    }


def run(duration: float):
    # ZipfWorkload lazily builds its CDF; touch it once before any
    # threads share an instance's sampler.
    next(iter(_zipf_ops(0)))

    uniform = _run_one(_uniform_ops, duration, mitigate=False)
    zipf_off = _run_one(_zipf_ops, duration, mitigate=False)
    zipf_on = _run_one(_zipf_ops, duration, mitigate=True)

    def row(name, r):
        return (
            name,
            fmt_int(r["ops_s"]),
            r["completed"],
            r["failed"],
            fmt(r["p50_s"] * 1e3, 1),
            fmt(r["p99_s"] * 1e3, 1),
            fmt(r["imbalance"], 1),
            r["cache_hits"],
            r["spread_reads"],
        )

    rows = [
        row("uniform", uniform),
        row(f"zipf s={ZIPF_S} off", zipf_off),
        row(f"zipf s={ZIPF_S} on", zipf_on),
    ]
    stats = {
        "uniform_ops_s": uniform["ops_s"],
        "zipf_baseline_ops_s": zipf_off["ops_s"],
        "zipf_mitigated_ops_s": zipf_on["ops_s"],
        "speedup": (
            zipf_on["ops_s"] / zipf_off["ops_s"] if zipf_off["ops_s"] else 0.0
        ),
        "zipf_baseline_p99_s": zipf_off["p99_s"],
        "zipf_mitigated_p99_s": zipf_on["p99_s"],
        "zipf_baseline_imbalance": zipf_off["imbalance"],
        "zipf_mitigated_imbalance": zipf_on["imbalance"],
        "cache_hits": zipf_on["cache_hits"],
        "spread_reads": zipf_on["spread_reads"],
    }
    return rows, stats


HEADERS = (
    "phase",
    "ops/s",
    "completed",
    "failed",
    "p50 ms",
    "p99 ms",
    "imbalance",
    "cache hits",
    "spread reads",
)


def check(stats: dict) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    if stats["speedup"] < 1.5:
        failures.append(
            f"mitigated Zipf throughput is {stats['speedup']:.2f}x the "
            "unmitigated run (< 1.5x)"
        )
    if stats["zipf_mitigated_p99_s"] > stats["zipf_baseline_p99_s"] * 1.5:
        failures.append(
            f"mitigated p99 {stats['zipf_mitigated_p99_s'] * 1e3:.1f} ms "
            f"regressed past 1.5x the unmitigated p99 "
            f"{stats['zipf_baseline_p99_s'] * 1e3:.1f} ms"
        )
    if stats["cache_hits"] == 0:
        failures.append("hot-key cache never hit (mitigation inert)")
    return failures


def _report(duration: float) -> list[str]:
    rows, stats = run(duration)
    print_table(
        f"Zipf hot keys: spread + cache vs none "
        f"(TCP, {NODES} nodes, {WORKERS} workers, "
        f"universe {UNIVERSE}, {WRITE_RATIO:.0%} writes)",
        HEADERS,
        rows,
        note=(
            f"speedup {stats['speedup']:.2f}x, "
            f"{stats['cache_hits']} cache hits, "
            f"{stats['spread_reads']} spread reads, "
            f"imbalance {stats['zipf_baseline_imbalance']:.1f} -> "
            f"{stats['zipf_mitigated_imbalance']:.1f}"
        ),
    )
    emit_json("zipf_hotkey", HEADERS, rows)
    return check(stats)


def test_zipf_hotkey(benchmark):
    failures = _report(duration=1.5)
    assert not failures, failures

    def timed_case():
        config = _config(mitigate=True)
        with build_tcp_cluster(NODES, config, seed=17) as cluster:
            client = cluster.client(seed=2)
            for i in range(64):
                client.insert(f"t-{i}".encode(), b"v" * 132)

    benchmark(timed_case)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    failures = _report(duration=1.2 if smoke else 2.5)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1 if failures else 0)
