"""Ablations D5 and D6: the design choices DESIGN.md calls out.

* **D5 — partition move vs rehash** (§III.C "Data Migration"): "Moving an
  entire partition is significantly more efficient than rehashing many
  key/value pairs."  We time migrating a populated partition as ZHT does
  (bulk export/import, membership edit) against the consistent-hashing
  alternative (rehash every key and reinsert the ones that move).
* **D6 — append vs read-modify-write** (§III.I): appends from many
  clients to one key versus the lookup+insert cycle that would otherwise
  be required, which both costs double the round trips and loses updates
  without a distributed lock.
"""

import time

from _util import fmt, print_table

from repro import ZHTConfig, build_local_cluster
from repro.core.hashing import partition_of

PAIRS = 2_000
APPENDS = 400


def measure_migration_vs_rehash():
    config = ZHTConfig(transport="local", num_partitions=8)
    # --- ZHT way: move whole partitions, no per-key hashing ---
    with build_local_cluster(2, config) as cluster:
        z = cluster.client()
        for i in range(PAIRS):
            z.insert(f"key-{i:08d}", b"v" * 64)
        start = time.perf_counter()
        cluster.add_node()  # migrates whole partitions
        move_time = time.perf_counter() - start

    # --- consistent-hashing way: rehash every key on a node-count change ---
    with build_local_cluster(2, config) as cluster:
        z = cluster.client()
        keys = [f"key-{i:08d}" for i in range(PAIRS)]
        for key in keys:
            z.insert(key, b"v" * 64)
        start = time.perf_counter()
        moved = 0
        for key in keys:
            # hash % N -> hash % (N+1): recompute placement per key and
            # reinsert the ones whose placement changed.
            value = z.lookup(key)
            if partition_of(key.encode(), 2) != partition_of(key.encode(), 3):
                z.remove(key)
                z.insert(key, value)
                moved += 1
        rehash_time = time.perf_counter() - start
    return move_time, rehash_time, moved


def measure_append_vs_rmw():
    config = ZHTConfig(transport="local", num_partitions=16)
    with build_local_cluster(2, config) as cluster:
        z = cluster.client()
        start = time.perf_counter()
        for i in range(APPENDS):
            z.append("dir-entries", f"+file{i}\n")
        append_time = time.perf_counter() - start

        z.insert("dir-rmw", b"")
        start = time.perf_counter()
        for i in range(APPENDS):
            current = z.lookup("dir-rmw")
            z.insert("dir-rmw", current + f"+file{i}\n".encode())
        rmw_time = time.perf_counter() - start
    return append_time, rmw_time


def test_ablation_migration_vs_rehash(benchmark):
    move_time, rehash_time, moved = measure_migration_vs_rehash()
    print_table(
        "Ablation D5: membership change, partition move vs key rehash",
        ["strategy", "seconds", "keys touched"],
        [
            ("ZHT partition move", fmt(move_time, 4), "0 (bulk transfer)"),
            ("consistent-hash rehash", fmt(rehash_time, 4), str(PAIRS)),
        ],
        note=f"{moved}/{PAIRS} keys would relocate under naive rehash",
    )
    assert move_time < rehash_time
    config = ZHTConfig(transport="local", num_partitions=8)

    def one_join():
        with build_local_cluster(2, config) as cluster:
            cluster.add_node()

    benchmark(one_join)


def test_ablation_append_vs_read_modify_write(benchmark):
    append_time, rmw_time = measure_append_vs_rmw()
    print_table(
        "Ablation D6: concurrent value growth, append vs read-modify-write",
        ["strategy", "seconds", "round trips/op"],
        [
            ("ZHT append", fmt(append_time, 4), "1"),
            ("lookup+insert (RMW)", fmt(rmw_time, 4), "2"),
        ],
        note="RMW additionally loses updates under concurrency without a "
        "distributed lock; append is lock-free and loses nothing",
    )
    assert append_time < rmw_time

    config = ZHTConfig(transport="local", num_partitions=16)
    cluster = build_local_cluster(2, config)
    z = cluster.client()
    counter = iter(range(10**9))
    benchmark(lambda: z.append("bench-key", f"+{next(counter)}\n"))
    cluster.close()
