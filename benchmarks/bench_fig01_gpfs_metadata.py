"""Figure 1: GPFS time per `touch` vs scale on a Blue Gene/P.

Paper shape: create time grows from tens of ms at one node to ~10 s
(files in many directories) and ~63 s (all files in one directory) at
16K cores — centralized metadata saturates at just a few concurrent
clients.  Reproduced with the GPFS model (full sweep) and the DES lock
simulation (validated at small scales).
"""

from _util import fmt, print_table, scales

from repro.baselines.gpfs import GPFSModel, simulate_creates

SCALES = scales(
    small=(1, 4, 16, 64, 256, 1024, 4096, 16384),
    paper=(1, 4, 16, 64, 256, 1024, 4096, 16384, 65536),
)


def generate_series():
    model = GPFSModel()
    rows = []
    for n in SCALES:
        many = model.time_per_op(n, shared_dir=False)
        one = model.time_per_op(n, shared_dir=True)
        sim = simulate_creates(n, creates_per_client=2) if n <= 64 else None
        rows.append(
            (
                n,
                fmt(many * 1000, 1),
                fmt(one * 1000, 1),
                fmt(sim * 1000, 1) if sim is not None else "-",
            )
        )
    return rows


def test_fig01_gpfs_metadata(benchmark):
    rows = generate_series()
    print_table(
        "Figure 1: GPFS file create, time per op (ms) vs cores",
        ["cores", "many-dir (model)", "one-dir (model)", "many-dir (DES)"],
        rows,
        note="paper: ~5ms @1, ~393ms @512 many-dir, ~63,000ms @16K one-dir",
    )
    # Timed unit: one DES run of 32 clients hammering one directory.
    benchmark(lambda: simulate_creates(32, creates_per_client=2, shared_dir=True))
