"""Figure 16: FusionFS vs GPFS metadata performance (time per create).

Paper anchors: FusionFS 4.5 ms at 1 node -> 8 ms at 512 nodes (2x);
GPFS 5 ms -> 393 ms (78x); "nearly two orders of magnitude higher
performance over GPFS" at 512 nodes, and 2449 ms for GPFS when every
client creates in one shared directory.

FusionFS creates are driven on the real implementation (ZHT-backed
metadata, append-based directories); the FusionFS latency *at scale* is
projected with the calibrated ZHT latency model (a create = 2 ZHT ops);
GPFS uses the Figure 1 model.
"""

import time

from _util import fmt, print_table, scales

from repro import ZHTConfig, build_local_cluster
from repro.baselines.gpfs import GPFSModel
from repro.fusionfs import DataStorePool, FusionFS
from repro.sim.analytic import predicted_latency_s

SCALES = scales(
    small=(1, 2, 8, 32, 128, 512),
    paper=(1, 2, 8, 32, 128, 512),
)
CREATES = 400


def measure_real_fusionfs_create_ms() -> float:
    """Measured per-create cost on the real stack (1-node deployment)."""
    with build_local_cluster(
        2, ZHTConfig(transport="local", num_partitions=64)
    ) as cluster:
        fs = FusionFS(cluster.client(), DataStorePool(), "node-0000")
        fs.mkdir("/bench")
        start = time.perf_counter()
        for i in range(CREATES):
            fs.create(f"/bench/file-{i:06d}")
        elapsed = time.perf_counter() - start
    return elapsed / CREATES * 1000


def generate_series():
    gpfs = GPFSModel()
    rows = []
    for n in SCALES:
        # A FusionFS create = inode insert + parent-directory append.
        fusionfs_ms = 2 * predicted_latency_s(n) * 1000
        rows.append(
            (
                n,
                fmt(fusionfs_ms, 2),
                fmt(gpfs.time_per_op(n) * 1000, 1),
                fmt(gpfs.time_per_op(n, shared_dir=True) * 1000, 1),
            )
        )
    return rows


def test_fig16_fusionfs_vs_gpfs(benchmark):
    real_ms = measure_real_fusionfs_create_ms()
    rows = generate_series()
    print_table(
        "Figure 16: metadata time per create (ms) vs nodes",
        ["nodes", "FusionFS (model)", "GPFS many-dir", "GPFS one-dir"],
        rows,
        note=(
            "paper: FusionFS 4.5->8ms (2x), GPFS 5->393ms (78x) @512; "
            f"measured real FusionFS create on this host: {real_ms:.3f} ms"
        ),
    )
    first, last = rows[0], rows[-1]
    fusion_growth = float(last[1]) / float(first[1])
    gpfs_growth = float(last[2]) / float(first[2])
    assert fusion_growth < 3  # "excellent scalability (increasing 2X)"
    assert gpfs_growth > 30  # "grows 78X"
    # Two-orders-of-magnitude class gap at 512 nodes.
    assert float(last[2]) / float(last[1]) > 20
    benchmark(measure_real_fusionfs_create_ms)
