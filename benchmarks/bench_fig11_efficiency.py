"""Figure 11: efficiency vs scale — measured to 8K, simulated to 1M.

The paper plots efficiency against the ideal 2-node performer: 51% at
8K nodes, dropping to 8% at 1M nodes in their PeerSim simulation (~7 ms
latency, ~150M aggregate ops/s).  We run the DES through the
laptop-feasible range and the calibrated closed-form model to 1M,
reporting both where they overlap (the paper's own validation step —
theirs agreed within 3%).
"""

from _util import fmt, fmt_int, print_table, paper_scale

from repro.sim import (
    FIG11_SCALES,
    predicted_efficiency,
    predicted_latency_ms,
    predicted_throughput_ops_s,
    simulate,
)

DES_MAX = 2048 if paper_scale() else 256
OPS = 10


def generate_series():
    two_node = simulate(2, ops_per_client=OPS).latency_ms
    rows = []
    for n in FIG11_SCALES:
        model_eff = predicted_efficiency(n)
        if n <= DES_MAX:
            des = simulate(n, ops_per_client=OPS)
            des_eff = min(1.0, two_node / des.latency_ms)
            des_cell = f"{des_eff * 100:.0f}%"
        else:
            des_cell = "-"
        rows.append(
            (
                fmt_int(n),
                des_cell,
                f"{model_eff * 100:.0f}%",
                fmt(predicted_latency_ms(n), 2),
                fmt_int(predicted_throughput_ops_s(n)),
            )
        )
    return rows


def test_fig11_efficiency(benchmark):
    rows = generate_series()
    print_table(
        "Figure 11: efficiency vs scale (DES <= %d, model to 1M)" % DES_MAX,
        ["nodes", "DES eff", "model eff", "model latency ms", "model ops/s"],
        rows,
        note="paper: 51% @8K, 8% @1M (~7ms, ~150M ops/s aggregate)",
    )
    by_scale = {r[0]: r for r in rows}
    assert by_scale["8,192"][2] == "51%"
    assert by_scale["1,048,576"][2] == "8%"
    # DES and model agree where both exist (paper: within 3%; we allow 25%).
    for r in rows:
        if r[1] != "-":
            des, model = float(r[1][:-1]), float(r[2][:-1])
            assert abs(des - model) <= 25, r
    benchmark(lambda: predicted_efficiency(1_048_576))
