"""Figure 14: aggregate throughput with 1/2/4/8 instances per node.

Paper shape: more instances raise aggregate throughput even past one
per core — 8 instances/node reaches 16.1M ops/s at 8K nodes vs 7.3M for
1 instance/node, "a 2.2X increase"; the headline 18M ops/s at 32K-cores
comes from this configuration.
"""

from _util import emit_json, fmt_int, print_table, scales

from repro.sim import simulate

SCALES = scales(small=(4, 16, 64), paper=(4, 16, 64, 256, 1024))
INSTANCES = (1, 2, 4, 8)
OPS = 8


def generate_series():
    rows = []
    for n in SCALES:
        results = [
            simulate(n, ops_per_client=OPS, instances_per_node=i)
            for i in INSTANCES
        ]
        rows.append(
            (n, *(fmt_int(r.throughput_ops_s) for r in results))
        )
    return rows


def test_fig14_instances_throughput(benchmark):
    rows = generate_series()
    print_table(
        "Figure 14: throughput (ops/s) vs nodes for instances/node (DES)",
        ["nodes"] + [f"{i} inst/node" for i in INSTANCES],
        rows,
        note="paper: 8 inst/node ~2.2x the 1 inst/node throughput; "
        "bench_multicore_node measures the real-socket analogue",
    )
    emit_json(
        "fig14_instances_throughput",
        ["nodes"] + [f"inst_{i}" for i in INSTANCES],
        rows,
    )

    def num(s):
        return float(s.replace(",", ""))

    for row in rows:
        one, eight = num(row[1]), num(row[4])
        assert 1.5 <= eight / one <= 4.5  # the ~2.2x aggregate gain
    benchmark(lambda: simulate(16, ops_per_client=4, instances_per_node=4))
