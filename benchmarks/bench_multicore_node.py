"""Multi-core node: process-per-shard scaling on one machine.

The paper's Figs. 13/14 scale one node to all cores by running multiple
ZHT instances per node (one per core, stable latency up to 4).  Our
:class:`~repro.net.shard.ShardedNodeServer` reproduces that with forked
worker processes accepting on a shared SO_REUSEPORT port.  This bench
drives a single node with forked client processes and compares
aggregate insert+lookup throughput and p99 latency for 1 shard (the
old single-process ``EventDrivenTCPServer``) vs ``SHARDS`` shards.

The >=2x throughput gate only applies on machines with >= 4 cores: on
fewer cores the shards time-slice one CPU and sharding is pure overhead,
which is exactly the paper's "one instance per core" sizing rule.
"""

import multiprocessing
import os
import time

from _util import emit_json, fmt, fmt_int, print_table, scales

from repro.core import ZHTConfig
from repro.net.shard import ShardedNodeServer, fork_supported

import pytest

pytestmark = pytest.mark.skipif(
    not fork_supported(), reason="needs the fork start method"
)

SHARDS = 4
CLIENTS = 4
OPS = scales(small=(250,), paper=(2000,))[0]  # per client; x2 (insert+lookup)
VALUE = b"v" * 132


def _client_worker(membership, config, ops, offset, barrier, queue):
    import random

    from repro.api import ZHT
    from repro.core.client import ZHTClientCore
    from repro.net.tcp import MultiplexedTCPClient

    transport = MultiplexedTCPClient(wire_codec=config.wire_codec)
    core = ZHTClientCore(membership, config, rng=random.Random(offset))
    z = ZHT(core, transport)
    z.insert(f"warm-{offset}", b"x")
    barrier.wait()
    latencies = []
    start = time.perf_counter()
    for i in range(ops):
        key = f"mc-{offset}-{i:06d}"
        t0 = time.perf_counter()
        z.insert(key, VALUE)
        latencies.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        z.lookup(key)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    transport.close()
    queue.put((elapsed, sorted(latencies)))


def measure(num_shards: int, *, clients: int = CLIENTS, ops: int = OPS):
    """(aggregate ops/s, p99 ms) for `clients` forked client processes."""
    config = ZHTConfig(
        transport="tcp",
        num_partitions=64,
        request_timeout=2.0,
        num_shards=num_shards,
    )
    node = ShardedNodeServer(config, num_shards=num_shards)
    node.bootstrap_membership(seed=0)
    node.start()
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(clients)
    queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_client_worker,
            args=(node.membership.copy(), config, ops, c, barrier, queue),
        )
        for c in range(clients)
    ]
    try:
        for w in workers:
            w.start()
        results = [queue.get(timeout=120) for _ in workers]
        for w in workers:
            w.join(timeout=10)
    finally:
        node.stop()
    elapsed = max(e for e, _ in results)
    merged = sorted(l for _, ls in results for l in ls)
    p99 = merged[min(len(merged) - 1, int(len(merged) * 0.99))] * 1e3
    return clients * ops * 2 / elapsed, p99


def generate_series(*, clients: int = CLIENTS, ops: int = OPS):
    base_ops, base_p99 = measure(1, clients=clients, ops=ops)
    shard_ops, shard_p99 = measure(SHARDS, clients=clients, ops=ops)
    rows = [
        ("1 (single process)", fmt_int(base_ops), fmt(base_p99, 2), "1.00"),
        (
            f"{SHARDS} (process-per-shard)",
            fmt_int(shard_ops),
            fmt(shard_p99, 2),
            fmt(shard_ops / base_ops, 2),
        ),
    ]
    return rows, shard_ops / base_ops, base_p99, shard_p99


def test_multicore_node(benchmark):
    rows, speedup, base_p99, shard_p99 = generate_series()
    cores = os.cpu_count() or 1
    print_table(
        f"Multi-core node: {CLIENTS} client procs, insert+lookup "
        f"({cores} cores)",
        ["shards", "ops/s", "p99 ms", "relative"],
        rows,
        note="paper Figs. 13/14: one instance per core scales a node; "
        f"measured {speedup:.2f}x with {SHARDS} shards",
    )
    emit_json(
        "multicore_node", ["shards", "ops_per_s", "p99_ms", "relative"], rows
    )
    if cores >= 4:
        # The headline gate: 4 shards must at least double aggregate
        # throughput without hurting tail latency.
        assert speedup >= 2.0, rows
        assert shard_p99 <= base_p99 * 1.1, rows
    benchmark(lambda: measure(1, clients=1, ops=50))


if __name__ == "__main__":
    import sys

    smoke = "--smoke" in sys.argv
    rows, speedup, base_p99, shard_p99 = (
        generate_series(clients=2, ops=100) if smoke else generate_series()
    )
    cores = os.cpu_count() or 1
    print_table(
        f"Multi-core node: insert+lookup ({cores} cores)",
        ["shards", "ops/s", "p99 ms", "relative"],
        rows,
    )
    emit_json(
        "multicore_node", ["shards", "ops_per_s", "p99_ms", "relative"], rows
    )
    problems = []
    if cores >= 4:
        if speedup < 2.0:
            problems.append(f"{SHARDS} shards only {speedup:.2f}x (need 2x)")
        if shard_p99 > base_p99 * 1.1:
            problems.append(
                f"p99 regressed: {base_p99:.2f} -> {shard_p99:.2f} ms"
            )
    else:
        print(f"NOTE: {cores} core(s): 2x gate skipped (needs >= 4)")
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(f"OK: {SHARDS} shards {speedup:.2f}x single-process")
    sys.exit(1 if problems else 0)
