"""FusionFS data storage: node-local file content.

"In FusionFS, every compute node serves all three roles: client,
metadata server, and storage server" — file data is written to the
creating node's local storage (the data-locality optimization the paper
cites), while metadata lives in ZHT.  Remote reads fetch from the owning
node's store.
"""

from __future__ import annotations

import os

from ..core.errors import KeyNotFound


class LocalDataStore:
    """One node's file-content store (memory- or disk-backed)."""

    def __init__(self, node_id: str, directory: str | None = None):
        self.node_id = node_id
        self.directory = directory
        self._memory: dict[str, bytes] = {}
        if directory:
            os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key.replace("/", "%2F"))

    def write(self, key: str, data: bytes) -> None:
        if self.directory:
            with open(self._path(key), "wb") as f:
                f.write(data)
        else:
            self._memory[key] = data

    def read(self, key: str) -> bytes:
        if self.directory:
            try:
                with open(self._path(key), "rb") as f:
                    return f.read()
            except FileNotFoundError:
                raise KeyNotFound(key) from None
        try:
            return self._memory[key]
        except KeyError:
            raise KeyNotFound(key) from None

    def delete(self, key: str) -> None:
        if self.directory:
            try:
                os.remove(self._path(key))
            except FileNotFoundError:
                raise KeyNotFound(key) from None
        elif self._memory.pop(key, None) is None:
            raise KeyNotFound(key)

    def keys(self) -> list[str]:
        if self.directory:
            return [
                name.replace("%2F", "/") for name in os.listdir(self.directory)
            ]
        return list(self._memory)


class DataStorePool:
    """The cluster's per-node data stores, addressed by node id."""

    def __init__(self):
        self.stores: dict[str, LocalDataStore] = {}

    def add(self, store: LocalDataStore) -> None:
        self.stores[store.node_id] = store

    def get(self, node_id: str) -> LocalDataStore:
        try:
            return self.stores[node_id]
        except KeyError:
            raise KeyNotFound(f"no data store on node {node_id}") from None

    def __len__(self) -> int:
        return len(self.stores)
