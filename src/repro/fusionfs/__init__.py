"""FusionFS: distributed filesystem with ZHT metadata management (§V.A)."""

from .fs import FusionFS
from .metadata import FSError, Inode, MetadataManager, normalize
from .storage import DataStorePool, LocalDataStore

__all__ = [
    "DataStorePool",
    "FSError",
    "FusionFS",
    "Inode",
    "LocalDataStore",
    "MetadataManager",
    "normalize",
]
