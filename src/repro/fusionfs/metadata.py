"""FusionFS metadata management over ZHT (§V.A).

"The metadata servers use ZHT, which allows the metadata information to
be dispersed throughout the system, and allows metadata lookups to occur
in constant time at extremely high concurrency.  Directories are
considered as special files containing only metadata about the files in
the directory."

Layout in ZHT:

* ``meta:<path>`` — JSON inode record (type, size, times, data node).
* ``dir:<path>`` — the directory's entry log, maintained purely with
  ZHT's **append**: creating ``/a/b`` appends ``+b\\n`` to ``dir:/a``;
  unlinking appends ``-b\\n``.  Readers fold the log.  This is the
  paper's lock-free concurrent metadata modification: "using append, we
  were able to implement a highly efficient metadata management for a
  distributed file system, where certain metadata (e.g. directory lists)
  could be concurrently modified across many clients" — no distributed
  lock exists anywhere on this path.
"""

from __future__ import annotations

import json
import posixpath
import time
from dataclasses import dataclass, field

from ..api import ZHT
from ..core.errors import KeyNotFound


class FSError(Exception):
    """Filesystem-level error (ENOENT/EEXIST/ENOTDIR analogues)."""


def normalize(path: str) -> str:
    """Canonical absolute path ('/' root, no trailing slash)."""
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    return norm


def parent_of(path: str) -> str:
    return posixpath.dirname(path)


def name_of(path: str) -> str:
    return posixpath.basename(path)


@dataclass
class Inode:
    """One file/directory metadata record."""

    path: str
    kind: str  # "file" | "dir"
    size: int = 0
    ctime: float = field(default_factory=time.time)
    mtime: float = field(default_factory=time.time)
    #: Node id hosting the file's data (FusionFS keeps data node-local).
    data_node: str = ""

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "path": self.path,
                "kind": self.kind,
                "size": self.size,
                "ctime": self.ctime,
                "mtime": self.mtime,
                "data_node": self.data_node,
            },
            separators=(",", ":"),
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Inode":
        obj = json.loads(data.decode())
        return cls(
            path=obj["path"],
            kind=obj["kind"],
            size=obj["size"],
            ctime=obj["ctime"],
            mtime=obj["mtime"],
            data_node=obj.get("data_node", ""),
        )


class MetadataManager:
    """All FusionFS metadata operations, expressed as ZHT operations."""

    def __init__(self, zht: ZHT):
        self.zht = zht
        # The root directory always exists.
        if self.zht.get("meta:/") is None:
            self.zht.insert("meta:/", Inode("/", "dir").to_bytes())

    # -- inode records -----------------------------------------------------

    def stat(self, path: str) -> Inode:
        path = normalize(path)
        record = self.zht.get(f"meta:{path}")
        if record is None:
            raise FSError(f"no such file or directory: {path}")
        return Inode.from_bytes(record)

    def exists(self, path: str) -> bool:
        return self.zht.contains(f"meta:{normalize(path)}")

    def put_inode(self, inode: Inode) -> None:
        self.zht.insert(f"meta:{inode.path}", inode.to_bytes())

    def remove_inode(self, path: str) -> None:
        try:
            self.zht.remove(f"meta:{normalize(path)}")
        except KeyNotFound:
            raise FSError(f"no such file or directory: {path}") from None

    # -- directory entry log (append-based, lock-free) ----------------------

    def add_entry(self, dir_path: str, name: str) -> None:
        """Record *name* in its parent directory with a single append —
        the concurrent-create fast path (no read-modify-write, no lock)."""
        self.zht.append(f"dir:{normalize(dir_path)}", f"+{name}\n".encode())

    def drop_entry(self, dir_path: str, name: str) -> None:
        self.zht.append(f"dir:{normalize(dir_path)}", f"-{name}\n".encode())

    def list_entries(self, dir_path: str) -> list[str]:
        """Fold the append log into the current entry set."""
        log = self.zht.get(f"dir:{normalize(dir_path)}")
        if log is None:
            return []
        live: dict[str, bool] = {}
        for line in log.decode().splitlines():
            if not line:
                continue
            op, name = line[0], line[1:]
            if op == "+":
                live[name] = True
            elif op == "-":
                live.pop(name, None)
        return sorted(live)

    def compact_entries(self, dir_path: str) -> int:
        """Rewrite a long entry log to its folded form; returns entry
        count.  (Maintenance path — correctness never requires it.)"""
        entries = self.list_entries(dir_path)
        log = "".join(f"+{name}\n" for name in entries).encode()
        key = f"dir:{normalize(dir_path)}"
        if log:
            self.zht.insert(key, log)
        else:
            try:
                self.zht.remove(key)
            except KeyNotFound:
                pass
        return len(entries)
