"""FusionFS: the POSIX-style filesystem facade (§V.A).

Combines :class:`~repro.fusionfs.metadata.MetadataManager` (inodes +
append-based directories in ZHT) with per-node
:class:`~repro.fusionfs.storage.LocalDataStore` content stores.  The C++
FusionFS exposes this through FUSE; here the same operations are a
Python API — `create`, `mkdir`, `write`/`read`, `readdir`, `stat`,
`unlink`, `rmdir`, `rename` — so the metadata access patterns the paper
benchmarks (file-create storms, concurrent same-directory creates) can
be driven directly.
"""

from __future__ import annotations

import time

from ..api import ZHT
from ..core.errors import KeyNotFound
from .metadata import FSError, Inode, MetadataManager, name_of, normalize, parent_of
from .storage import DataStorePool, LocalDataStore


class FusionFS:
    """One mounted FusionFS client, bound to a node's data store."""

    def __init__(
        self,
        zht: ZHT,
        pool: DataStorePool,
        node_id: str,
    ):
        self.meta = MetadataManager(zht)
        self.pool = pool
        self.node_id = node_id
        if node_id not in pool.stores:
            pool.add(LocalDataStore(node_id))

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def create(self, path: str) -> Inode:
        """Create an empty file: one inode insert + one parent append.

        This is the operation FusionFS drives at "over 60K operations
        (e.g. file create) per second at 2K-core scales"; note there is
        no directory lock — concurrent creates in one directory are
        plain concurrent appends to the same ZHT key.
        """
        path = normalize(path)
        if path == "/":
            raise FSError("cannot create '/'")
        parent = parent_of(path)
        parent_inode = self.meta.stat(parent)  # raises if parent missing
        if parent_inode.kind != "dir":
            raise FSError(f"not a directory: {parent}")
        if self.meta.exists(path):
            raise FSError(f"file exists: {path}")
        inode = Inode(path, "file", data_node=self.node_id)
        self.meta.put_inode(inode)
        self.meta.add_entry(parent, name_of(path))
        return inode

    def mkdir(self, path: str) -> Inode:
        path = normalize(path)
        if path == "/":
            raise FSError("'/' already exists")
        parent = parent_of(path)
        parent_inode = self.meta.stat(parent)
        if parent_inode.kind != "dir":
            raise FSError(f"not a directory: {parent}")
        if self.meta.exists(path):
            raise FSError(f"file exists: {path}")
        inode = Inode(path, "dir")
        self.meta.put_inode(inode)
        self.meta.add_entry(parent, name_of(path))
        return inode

    def makedirs(self, path: str) -> None:
        """mkdir -p."""
        path = normalize(path)
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if not self.meta.exists(current):
                self.mkdir(current)

    def stat(self, path: str) -> Inode:
        return self.meta.stat(path)

    def exists(self, path: str) -> bool:
        return self.meta.exists(path)

    def readdir(self, path: str) -> list[str]:
        path = normalize(path)
        inode = self.meta.stat(path)
        if inode.kind != "dir":
            raise FSError(f"not a directory: {path}")
        return self.meta.list_entries(path)

    def unlink(self, path: str) -> None:
        path = normalize(path)
        inode = self.meta.stat(path)
        if inode.kind != "file":
            raise FSError(f"is a directory: {path}")
        if inode.data_node and inode.size:
            try:
                self.pool.get(inode.data_node).delete(path)
            except KeyNotFound:
                pass
        self.meta.remove_inode(path)
        self.meta.drop_entry(parent_of(path), name_of(path))

    def rmdir(self, path: str) -> None:
        path = normalize(path)
        if path == "/":
            raise FSError("cannot remove '/'")
        inode = self.meta.stat(path)
        if inode.kind != "dir":
            raise FSError(f"not a directory: {path}")
        if self.meta.list_entries(path):
            raise FSError(f"directory not empty: {path}")
        self.meta.compact_entries(path)  # drops the (empty) entry log
        self.meta.remove_inode(path)
        self.meta.drop_entry(parent_of(path), name_of(path))

    def rename(self, old: str, new: str) -> None:
        """Rename a *file* (metadata-only: inode moves, data key moves)."""
        old, new = normalize(old), normalize(new)
        inode = self.meta.stat(old)
        if inode.kind != "file":
            raise FSError("rename supports files only")
        if self.meta.exists(new):
            raise FSError(f"file exists: {new}")
        new_parent = parent_of(new)
        if self.meta.stat(new_parent).kind != "dir":
            raise FSError(f"not a directory: {new_parent}")
        data = b""
        if inode.size:
            store = self.pool.get(inode.data_node)
            data = store.read(old)
            store.delete(old)
        self.meta.remove_inode(old)
        self.meta.drop_entry(parent_of(old), name_of(old))
        inode.path = new
        inode.mtime = time.time()
        self.meta.put_inode(inode)
        self.meta.add_entry(new_parent, name_of(new))
        if data:
            self.pool.get(inode.data_node).write(new, data)

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        """Write full file content to this node's local store."""
        path = normalize(path)
        if not self.meta.exists(path):
            self.create(path)
        inode = self.meta.stat(path)
        if inode.kind != "file":
            raise FSError(f"is a directory: {path}")
        if inode.data_node != self.node_id and inode.size:
            # Content moves to the writing node (data locality).
            try:
                self.pool.get(inode.data_node).delete(path)
            except KeyNotFound:
                pass
        self.pool.get(self.node_id).write(path, data)
        inode.data_node = self.node_id
        inode.size = len(data)
        inode.mtime = time.time()
        self.meta.put_inode(inode)

    def read(self, path: str) -> bytes:
        path = normalize(path)
        inode = self.meta.stat(path)
        if inode.kind != "file":
            raise FSError(f"is a directory: {path}")
        if inode.size == 0:
            return b""
        return self.pool.get(inode.data_node).read(path)

    # ------------------------------------------------------------------

    def tree(self, path: str = "/") -> dict:
        """Debug helper: recursive namespace snapshot."""
        inode = self.meta.stat(path)
        if inode.kind == "file":
            return {"kind": "file", "size": inode.size}
        return {
            "kind": "dir",
            "entries": {
                name: self.tree(normalize(path + "/" + name))
                for name in self.readdir(path)
            },
        }
