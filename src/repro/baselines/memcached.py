"""Memcached-like in-memory key/value store.

Reproduces the feature envelope the paper compares against (§II,
Table 1): "It is rather simplistic in which there is no data persistence,
no data replication, and no dynamic membership.  There are strict
limitations on the size of the keys and values (250B and 1MB
respectively)."

Like memcached, this is a bounded cache: entries are evicted LRU when
the memory budget is exceeded, and ``set`` never fails for capacity.
``append`` exists in real memcached only for existing keys — matching
that, appending to a missing key errors (unlike ZHT, where append
creates; this distinction matters to FusionFS and is covered by Table 1's
"Append" column).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..core.errors import (
    KeyNotFound,
    KeyTooLarge,
    UnsupportedOperation,
    ValueTooLarge,
)

#: Real memcached limits, cited by the paper.
MAX_KEY_BYTES = 250
MAX_VALUE_BYTES = 1 << 20


@dataclass
class MemcachedStats:
    gets: int = 0
    sets: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0


class MemcachedLike:
    """A single memcached "server": volatile, bounded, LRU."""

    #: Feature flags used by the Table 1 comparison harness.
    FEATURES = {
        "implementation": "Python (models C memcached)",
        # Table 1 lists memcached's routing time as "2": the paper counts
        # the two message legs of its request/response exchange.
        "routing_hops": 2,
        "persistence": False,
        "dynamic_membership": False,
        "replication": False,
        "append": False,
    }

    def __init__(self, memory_limit_bytes: int = 64 << 20):
        if memory_limit_bytes <= 0:
            raise ValueError("memory_limit_bytes must be positive")
        self.memory_limit_bytes = memory_limit_bytes
        self._data: OrderedDict[bytes, bytes] = OrderedDict()
        self._bytes_used = 0
        self.stats = MemcachedStats()

    # -- protocol operations ------------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        self._check_key(key)
        if len(value) > MAX_VALUE_BYTES:
            raise ValueTooLarge(f"{len(value)} > {MAX_VALUE_BYTES}")
        old = self._data.pop(key, None)
        if old is not None:
            self._bytes_used -= len(key) + len(old)
        self._data[key] = value
        self._bytes_used += len(key) + len(value)
        self.stats.sets += 1
        self._evict()

    def get(self, key: bytes) -> bytes:
        self._check_key(key)
        self.stats.gets += 1
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            raise KeyNotFound(repr(key)) from None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        old = self._data.pop(key, None)
        if old is None:
            raise KeyNotFound(repr(key))
        self._bytes_used -= len(key) + len(old)
        self.stats.deletes += 1

    def append(self, key: bytes, value: bytes) -> None:
        """memcached's append: fails on missing keys, no create."""
        self._check_key(key)
        old = self._data.get(key)
        if old is None:
            raise UnsupportedOperation(
                "memcached append requires an existing key (NOT_STORED)"
            )
        if len(old) + len(value) > MAX_VALUE_BYTES:
            raise ValueTooLarge("append would exceed 1MB value limit")
        self._data[key] = old + value
        self._bytes_used += len(value)
        self._data.move_to_end(key)
        self._evict()

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    @property
    def bytes_used(self) -> int:
        return self._bytes_used

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("memcached keys are bytes")
        if len(key) > MAX_KEY_BYTES:
            raise KeyTooLarge(f"{len(key)} > {MAX_KEY_BYTES}")

    def _evict(self) -> None:
        while self._bytes_used > self.memory_limit_bytes and self._data:
            key, value = self._data.popitem(last=False)
            self._bytes_used -= len(key) + len(value)
            self.stats.evictions += 1


class MemcachedCluster:
    """Client-side-sharded pool of :class:`MemcachedLike` servers.

    Real memcached clusters have no server-side routing: clients hash
    keys onto the server list.  No rebalancing happens when the list
    changes (that is the "no dynamic membership" row of Table 1).
    """

    def __init__(self, num_servers: int, memory_limit_bytes: int = 64 << 20):
        if num_servers <= 0:
            raise ValueError("num_servers must be positive")
        self.servers = [
            MemcachedLike(memory_limit_bytes) for _ in range(num_servers)
        ]

    def _server_for(self, key: bytes) -> MemcachedLike:
        from ..core.hashing import ring_position

        return self.servers[ring_position(key) % len(self.servers)]

    def set(self, key: bytes, value: bytes) -> None:
        self._server_for(key).set(key, value)

    def get(self, key: bytes) -> bytes:
        return self._server_for(key).get(key)

    def delete(self, key: bytes) -> None:
        self._server_for(key).delete(key)

    def append(self, key: bytes, value: bytes) -> None:
        self._server_for(key).append(key, value)

    def total_items(self) -> int:
        return sum(len(s) for s in self.servers)
