"""BerkeleyDB-like disk-backed B-tree store (Figure 6 baseline).

The paper's Figure 6 shows BerkeleyDB with "some advantages such as
memory usage ... at the cost of performance" versus NoVoHT.  This module
reproduces that trade-off with a genuine B-tree:

* the **index** (keys + value locators) is an order-``t`` B-tree in
  memory — O(log n) comparisons per operation versus NoVoHT's O(1) hash;
* **values live on disk** in an append-only heap file, so every ``get``
  pays a seek+read and every ``put`` pays a write — memory stays small
  (the BerkeleyDB advantage), latency grows (the BerkeleyDB cost);
* deletes tombstone the index entry; :meth:`compact` reclaims heap space.

The B-tree uses the classic single-pass insertion with preemptive node
splitting (CLRS); deletion is by tombstone, which keeps the structure
valid without the rebalancing cases a storage-engine baseline does not
need.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.errors import KeyNotFound, StoreError


@dataclass
class _Locator:
    """Where a value lives in the heap file."""

    offset: int
    length: int
    alive: bool = True


class _BTreeNode:
    __slots__ = ("leaf", "keys", "values", "children")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: list[bytes] = []
        self.values: list[_Locator] = []
        self.children: list[_BTreeNode] = []


class BTree:
    """In-memory B-tree mapping keys to :class:`_Locator` records."""

    def __init__(self, order: int = 32):
        # ``order`` is the minimum degree t: nodes hold t-1..2t-1 keys.
        if order < 2:
            raise ValueError("order must be >= 2")
        self.t = order
        self.root = _BTreeNode(leaf=True)
        self.height = 1

    # -- search -----------------------------------------------------------

    def search(self, key: bytes) -> _Locator | None:
        node = self.root
        while True:
            i = self._find_index(node, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.leaf:
                return None
            node = node.children[i]

    @staticmethod
    def _find_index(node: _BTreeNode, key: bytes) -> int:
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if node.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- insertion ----------------------------------------------------------

    def insert(self, key: bytes, locator: _Locator) -> bool:
        """Insert or update; returns True if the key was new."""
        existing = self.search(key)
        if existing is not None:
            was_dead = not existing.alive
            existing.offset = locator.offset
            existing.length = locator.length
            existing.alive = True
            return was_dead
        root = self.root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _BTreeNode(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self.root = new_root
            self.height += 1
        self._insert_nonfull(self.root, key, locator)
        return True

    def _split_child(self, parent: _BTreeNode, index: int) -> None:
        t = self.t
        child = parent.children[index]
        sibling = _BTreeNode(leaf=child.leaf)
        # Move the upper t-1 keys (and children) into the sibling.
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        median_key = child.keys[t - 1]
        median_value = child.values[t - 1]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, median_key)
        parent.values.insert(index, median_value)
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _BTreeNode, key: bytes, locator: _Locator) -> None:
        while not node.leaf:
            i = self._find_index(node, key)
            child = node.children[i]
            if len(child.keys) == 2 * self.t - 1:
                self._split_child(node, i)
                if key > node.keys[i]:
                    i += 1
                child = node.children[i]
            node = child
        i = self._find_index(node, key)
        node.keys.insert(i, key)
        node.values.insert(i, locator)

    # -- iteration ------------------------------------------------------------

    def items(self):
        """All (key, locator) pairs in key order (live and dead)."""

        def walk(node: _BTreeNode):
            if node.leaf:
                yield from zip(node.keys, node.values)
                return
            for i, key in enumerate(node.keys):
                yield from walk(node.children[i])
                yield key, node.values[i]
            yield from walk(node.children[-1])

        yield from walk(self.root)

    def check_invariants(self) -> None:
        """Verify B-tree structural invariants (used by tests)."""
        t = self.t

        def check(node: _BTreeNode, lo: bytes | None, hi: bytes | None, is_root: bool) -> int:
            if not is_root and not (t - 1 <= len(node.keys) <= 2 * t - 1):
                raise AssertionError(f"node key count {len(node.keys)} out of range")
            for a, b in zip(node.keys, node.keys[1:]):
                if a >= b:
                    raise AssertionError("keys not strictly sorted")
            if node.keys:
                if lo is not None and node.keys[0] <= lo:
                    raise AssertionError("key below subtree bound")
                if hi is not None and node.keys[-1] >= hi:
                    raise AssertionError("key above subtree bound")
            if node.leaf:
                return 1
            if len(node.children) != len(node.keys) + 1:
                raise AssertionError("child count mismatch")
            depths = set()
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                depths.add(check(child, bounds[i], bounds[i + 1], False))
            if len(depths) != 1:
                raise AssertionError("unbalanced leaves")
            return depths.pop() + 1

        check(self.root, None, None, True)


class BerkeleyDBLike:
    """Disk-backed B-tree key/value store with tombstone deletes."""

    def __init__(self, path: str, *, order: int = 32):
        self.path = path
        self.tree = BTree(order)
        self.live_count = 0
        self.dead_bytes = 0
        try:
            exists = os.path.exists(path)
            self._heap = open(path, "r+b" if exists else "w+b")
        except OSError as exc:
            raise StoreError(f"cannot open heap {path}: {exc}") from exc
        if exists:
            self._rebuild_index()

    # -- heap file: [u32 klen][u32 vlen][key][value] -------------------------

    def _append_value(self, key: bytes, value: bytes) -> _Locator:
        self._heap.seek(0, os.SEEK_END)
        start = self._heap.tell()
        header = len(key).to_bytes(4, "little") + len(value).to_bytes(4, "little")
        self._heap.write(header + key + value)
        self._heap.flush()
        return _Locator(offset=start + 8 + len(key), length=len(value))

    def _rebuild_index(self) -> None:
        self._heap.seek(0, os.SEEK_END)
        end = self._heap.tell()
        offset = 0
        self._heap.seek(0)
        while offset < end:
            self._heap.seek(offset)
            header = self._heap.read(8)
            if len(header) < 8:
                break
            klen = int.from_bytes(header[:4], "little")
            vlen = int.from_bytes(header[4:], "little")
            key = self._heap.read(klen)
            if vlen == self._TOMBSTONE:
                existing = self.tree.search(key)
                if existing is not None and existing.alive:
                    existing.alive = False
                    self.live_count -= 1
                offset += 8 + klen
                continue
            locator = _Locator(offset=offset + 8 + klen, length=vlen)
            if self.tree.insert(key, locator):
                self.live_count += 1
            offset += 8 + klen + vlen

    # -- operations -----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        old = self.tree.search(key)
        locator = self._append_value(key, value)
        if old is not None and old.alive:
            self.dead_bytes += old.length
            old.offset, old.length = locator.offset, locator.length
        else:
            if self.tree.insert(key, locator):
                pass
            self.live_count += 1

    def get(self, key: bytes) -> bytes:
        locator = self.tree.search(key)
        if locator is None or not locator.alive:
            raise KeyNotFound(repr(key))
        self._heap.seek(locator.offset)
        value = self._heap.read(locator.length)
        if len(value) != locator.length:
            raise StoreError("heap file truncated")
        return value

    #: vlen sentinel marking a tombstone record in the heap file.
    _TOMBSTONE = 0xFFFFFFFF

    def remove(self, key: bytes) -> None:
        locator = self.tree.search(key)
        if locator is None or not locator.alive:
            raise KeyNotFound(repr(key))
        # Durable tombstone so the delete survives an index rebuild.
        self._heap.seek(0, os.SEEK_END)
        self._heap.write(
            len(key).to_bytes(4, "little")
            + self._TOMBSTONE.to_bytes(4, "little")
            + key
        )
        self._heap.flush()
        locator.alive = False
        self.dead_bytes += locator.length
        self.live_count -= 1

    def append(self, key: bytes, value: bytes) -> None:
        """Read-modify-write emulation (no native append in BDB)."""
        try:
            old = self.get(key)
        except KeyNotFound:
            old = b""
        self.put(key, old + value)

    def items(self) -> list[tuple[bytes, bytes]]:
        return [
            (key, self.get(key))
            for key, locator in self.tree.items()
            if locator.alive
        ]

    def compact(self) -> None:
        """Rewrite the heap with live values only; rebuilds the tree."""
        pairs = self.items()
        self._heap.close()
        os.remove(self.path)
        self.__init__(self.path, order=self.tree.t)
        for key, value in pairs:
            self.put(key, value)

    def __len__(self) -> int:
        return self.live_count

    def __contains__(self, key: bytes) -> bool:
        locator = self.tree.search(key)
        return locator is not None and locator.alive

    def close(self) -> None:
        if not self._heap.closed:
            self._heap.flush()
            self._heap.close()

    def __enter__(self) -> "BerkeleyDBLike":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
