"""KyotoCabinet-HashDB-like disk-resident hash store (Figure 6 baseline).

The paper rejected KyotoCabinet for NoVoHT because it is "disk-based and
any lookup must hit disk" (§III.I).  This reproduces that design point: a
fixed on-disk bucket array with chained records, where **every**
get/put/remove performs file I/O (only the bucket heads are cached in
the OS page cache, which we deliberately bypass with explicit seeks).

On-disk layout:

    header:  b"KCHD" + u32 bucket_count
    buckets: bucket_count x u64 offset of first record (0 = empty)
    records: [u64 next_offset][u8 alive][u32 klen][u32 vlen][key][value]

Removes tombstone records in place; overwrites append a fresh record and
relink the chain head (space is reclaimed only by :meth:`compact`), the
same log-structured trade-off real HashDBs make.
"""

from __future__ import annotations

import os
import struct

from ..core.errors import KeyNotFound, StoreError
from ..core.hashing import fnv1a_64

_HEADER = b"KCHD"
_BUCKET_FMT = "<Q"
_REC_FIXED = struct.Struct("<QBII")


class DiskHashDB:
    """A persistent hash table whose operations always touch disk."""

    def __init__(self, path: str, *, bucket_count: int = 1 << 14):
        if bucket_count <= 0:
            raise ValueError("bucket_count must be positive")
        self.path = path
        self.bucket_count = bucket_count
        exists = os.path.exists(path)
        try:
            self._file = open(path, "r+b" if exists else "w+b")
        except OSError as exc:
            raise StoreError(f"cannot open {path}: {exc}") from exc
        if exists:
            self._load_header()
        else:
            self._init_file()
        self._count = self._scan_count() if exists else 0

    # -- file structure ----------------------------------------------------

    def _init_file(self) -> None:
        self._file.write(_HEADER + struct.pack("<I", self.bucket_count))
        self._file.write(b"\x00" * 8 * self.bucket_count)
        self._file.flush()

    def _load_header(self) -> None:
        self._file.seek(0)
        magic = self._file.read(4)
        if magic != _HEADER:
            raise StoreError(f"{self.path} is not a DiskHashDB file")
        (self.bucket_count,) = struct.unpack("<I", self._file.read(4))

    def _bucket_offset(self, key: bytes) -> int:
        index = fnv1a_64(key) % self.bucket_count
        return 8 + index * 8

    def _read_bucket_head(self, key: bytes) -> int:
        self._file.seek(self._bucket_offset(key))
        (head,) = struct.unpack(_BUCKET_FMT, self._file.read(8))
        return head

    def _write_bucket_head(self, key: bytes, offset: int) -> None:
        self._file.seek(self._bucket_offset(key))
        self._file.write(struct.pack(_BUCKET_FMT, offset))

    def _read_record(self, offset: int) -> tuple[int, bool, bytes, bytes]:
        self._file.seek(offset)
        fixed = self._file.read(_REC_FIXED.size)
        if len(fixed) < _REC_FIXED.size:
            raise StoreError("truncated record")
        next_off, alive, klen, vlen = _REC_FIXED.unpack(fixed)
        key = self._file.read(klen)
        value = self._file.read(vlen)
        return next_off, bool(alive), key, value

    def _append_record(
        self, next_off: int, key: bytes, value: bytes
    ) -> int:
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(
            _REC_FIXED.pack(next_off, 1, len(key), len(value)) + key + value
        )
        return offset

    def _scan_count(self) -> int:
        count = 0
        data_start = 8 + 8 * self.bucket_count
        self._file.seek(0, os.SEEK_END)
        end = self._file.tell()
        offset = data_start
        while offset < end:
            next_off, alive, key, value = self._read_record(offset)
            # Records are contiguous; chain offsets do not affect the scan.
            if alive:
                count += 1
            offset += _REC_FIXED.size + len(key) + len(value)
        return count

    # -- operations --------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert/overwrite; the new record becomes the chain head."""
        # Tombstone any existing live record for the key first.
        existed = self._kill(key)
        head = self._read_bucket_head(key)
        offset = self._append_record(head, key, value)
        self._write_bucket_head(key, offset)
        self._file.flush()
        if not existed:
            self._count += 1

    def get(self, key: bytes) -> bytes:
        offset = self._read_bucket_head(key)
        while offset:
            next_off, alive, rkey, value = self._read_record(offset)
            if alive and rkey == key:
                return value
            offset = next_off
        raise KeyNotFound(repr(key))

    def remove(self, key: bytes) -> None:
        if not self._kill(key):
            raise KeyNotFound(repr(key))
        self._file.flush()
        self._count -= 1

    def append(self, key: bytes, value: bytes) -> None:
        """Read-modify-write (no native append — Table 1's "No")."""
        try:
            old = self.get(key)
        except KeyNotFound:
            old = b""
        self.put(key, old + value)

    def _kill(self, key: bytes) -> bool:
        offset = self._read_bucket_head(key)
        while offset:
            next_off, alive, rkey, _value = self._read_record(offset)
            if alive and rkey == key:
                self._file.seek(offset + 8)  # the alive byte
                self._file.write(b"\x00")
                return True
            offset = next_off
        return False

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: bytes) -> bool:
        try:
            self.get(key)
            return True
        except KeyNotFound:
            return False

    def items(self):
        """All live pairs (sequential file scan)."""
        data_start = 8 + 8 * self.bucket_count
        self._file.seek(0, os.SEEK_END)
        end = self._file.tell()
        offset = data_start
        out = []
        while offset < end:
            _next, alive, key, value = self._read_record(offset)
            if alive:
                out.append((key, value))
            offset += _REC_FIXED.size + len(key) + len(value)
        # A key overwritten many times has one live head record and dead
        # ancestors; the scan only returns the live ones.
        return out

    def compact(self) -> None:
        """Rewrite the file with only live records."""
        pairs = self.items()
        self._file.close()
        os.remove(self.path)
        self.__init__(self.path, bucket_count=self.bucket_count)
        for key, value in pairs:
            self.put(key, value)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "DiskHashDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
