"""Kademlia-style XOR-routing DHT (the C-MPI baseline of Table 1).

"C-MPI is based on new implementations of the Kademlia (with log(N)
routing time) distributed hash table" (§II).  This module implements the
Kademlia routing core from the Maymounkov/Mazières paper: 160-bit-style
(here 64-bit) node ids, the XOR distance metric, per-prefix k-buckets,
and iterative ``FIND_NODE`` lookups whose hop counts are O(log N).

Like C-MPI, there is "no support for data replication, data persistence,
or fault tolerance": store/retrieve place values on the single closest
node, and a dead node simply loses its keys.
"""

from __future__ import annotations

import random

from ..core.errors import KeyNotFound
from ..core.hashing import ring_position

ID_BITS = 64


def xor_distance(a: int, b: int) -> int:
    """The Kademlia metric: d(a, b) = a XOR b."""
    return a ^ b


def bucket_index(a: int, b: int) -> int:
    """Index of the k-bucket on *a* that covers *b* (shared-prefix length)."""
    distance = xor_distance(a, b)
    if distance == 0:
        raise ValueError("a node has no bucket for itself")
    return distance.bit_length() - 1


class KademliaNode:
    """One DHT node: id, k-buckets, local store."""

    def __init__(self, node_id: int, k: int = 8):
        self.node_id = node_id
        self.k = k
        #: buckets[i] holds up to k peers at XOR distance in [2^i, 2^{i+1}).
        self.buckets: list[list["KademliaNode"]] = [[] for _ in range(ID_BITS)]
        self.data: dict[bytes, bytes] = {}
        self.alive = True

    def observe(self, peer: "KademliaNode") -> None:
        """Record contact with *peer* (bucket insert, LRU-style)."""
        if peer.node_id == self.node_id:
            return
        bucket = self.buckets[bucket_index(self.node_id, peer.node_id)]
        if peer in bucket:
            bucket.remove(peer)
        elif len(bucket) >= self.k:
            bucket.pop(0)  # evict least-recently seen
        bucket.append(peer)

    def closest_known(self, target: int, count: int) -> list["KademliaNode"]:
        """The *count* known peers closest (XOR) to *target*."""
        candidates = [p for bucket in self.buckets for p in bucket if p.alive]
        candidates.sort(key=lambda p: xor_distance(p.node_id, target))
        return candidates[:count]


class KademliaDHT:
    """A bootstrapped Kademlia network with iterative lookups."""

    def __init__(self, num_nodes: int, *, k: int = 8, seed: int = 0):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        rng = random.Random(seed)
        ids: set[int] = set()
        while len(ids) < num_nodes:
            candidate = rng.getrandbits(ID_BITS)
            if candidate:
                ids.add(candidate)
        self.nodes = [KademliaNode(node_id, k) for node_id in sorted(ids)]
        self._populate_buckets()
        self.total_hops = 0
        self.total_lookups = 0

    def _populate_buckets(self) -> None:
        """Global-knowledge bootstrap: every node learns the k best peers
        per bucket (what a long-running network converges to)."""
        for node in self.nodes:
            for peer in self.nodes:
                node.observe(peer)

    # ------------------------------------------------------------------
    # Iterative lookup
    # ------------------------------------------------------------------

    def lookup_node(
        self, start: KademliaNode, target: int
    ) -> tuple[KademliaNode, int]:
        """Iterative FIND_NODE from *start*; returns (closest, hops)."""
        current = start
        hops = 0
        best = xor_distance(current.node_id, target)
        while True:
            nearer = current.closest_known(target, 1)
            if not nearer:
                break
            candidate = nearer[0]
            distance = xor_distance(candidate.node_id, target)
            if distance >= best:
                break
            current = candidate
            best = distance
            hops += 1
            if hops > ID_BITS * 2:
                raise RuntimeError("lookup failed to converge")
        self.total_hops += hops
        self.total_lookups += 1
        return current, hops

    def _key_target(self, key: bytes) -> int:
        return ring_position(key)

    def _entry_node(self, key: bytes) -> KademliaNode:
        alive = [n for n in self.nodes if n.alive]
        if not alive:
            raise KeyNotFound("network is empty")
        return alive[ring_position(key + b"#entry") % len(alive)]

    # ------------------------------------------------------------------
    # KV operations (single copy, no replication — like C-MPI)
    # ------------------------------------------------------------------

    def store(self, key: bytes, value: bytes) -> KademliaNode:
        owner, _hops = self.lookup_node(self._entry_node(key), self._key_target(key))
        owner.data[key] = value
        return owner

    def retrieve(self, key: bytes) -> bytes:
        owner, _hops = self.lookup_node(self._entry_node(key), self._key_target(key))
        if not owner.alive or key not in owner.data:
            raise KeyNotFound(repr(key))
        return owner.data[key]

    def delete(self, key: bytes) -> None:
        owner, _hops = self.lookup_node(self._entry_node(key), self._key_target(key))
        if key not in owner.data:
            raise KeyNotFound(repr(key))
        del owner.data[key]

    def average_hops(self) -> float:
        if self.total_lookups == 0:
            return 0.0
        return self.total_hops / self.total_lookups

    def kill_node(self, index: int) -> None:
        """C-MPI-style fragility: the node's keys are simply gone."""
        self.nodes[index].alive = False

    FEATURES = {
        "implementation": "Python (models C/MPI C-MPI)",
        "routing_hops": "log(N)",
        "persistence": False,
        "dynamic_membership": False,
        "replication": False,
        "append": False,
    }
