"""Falkon-like centralized task-execution framework (Figures 18, 19).

"Falkon has a centralized architecture, and hence had limited
scalability" — it "saturate[s] at 1700 tasks/sec at 256-core scales".
This module implements that architecture in the DES: one dispatcher
serves task requests from every worker; each dispatch occupies the
dispatcher for a fixed service time, so aggregate throughput is capped
at ``1/dispatch_time`` regardless of worker count, and worker efficiency
collapses for short tasks as workers queue for their next task.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Environment, Resource


@dataclass
class SchedulerResult:
    """Outcome of one scheduling run (shared with MATRIX runs)."""

    system: str
    num_workers: int
    tasks: int
    task_duration_s: float
    makespan_s: float

    @property
    def throughput_tasks_s(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.tasks / self.makespan_s

    @property
    def efficiency(self) -> float:
        """Useful compute time over total worker time (the Fig 19 metric)."""
        if self.makespan_s <= 0 or self.num_workers == 0:
            return 1.0
        useful = self.tasks * self.task_duration_s
        return min(1.0, useful / (self.num_workers * self.makespan_s))


class FalkonScheduler:
    """Centralized dispatcher with a naive hierarchical forwarding tree.

    Parameters are calibrated to the paper: ``dispatch_time`` of 1/1700 s
    reproduces the NO-OP saturation ceiling; ``tree_latency`` models the
    per-dispatch round trip through the naive task-distribution hierarchy
    on the Blue Gene/P, which is what depresses efficiency for short
    tasks in Figure 19.
    """

    def __init__(
        self,
        num_workers: int,
        *,
        dispatch_time: float = 1 / 1700,
        tree_latency: float = 0.9,
    ):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self.dispatch_time = dispatch_time
        self.tree_latency = tree_latency

    def run(self, num_tasks: int, task_duration_s: float = 0.0) -> SchedulerResult:
        env = Environment()
        dispatcher = Resource(env, capacity=1)
        remaining = [num_tasks]

        def worker():
            while True:
                yield dispatcher.acquire()
                if remaining[0] == 0:
                    dispatcher.release()
                    return
                remaining[0] -= 1
                yield env.timeout(self.dispatch_time)
                dispatcher.release()
                # Task and result travel through the distribution tree.
                yield env.timeout(self.tree_latency)
                yield env.timeout(task_duration_s)

        for _ in range(self.num_workers):
            env.process(worker())
        env.run()
        return SchedulerResult(
            system="falkon",
            num_workers=self.num_workers,
            tasks=num_tasks,
            task_duration_s=task_duration_s,
            makespan_s=env.now,
            )


def falkon_efficiency(
    num_workers: int, task_duration_s: float, *,
    dispatch_time: float = 2.4e-3, tree_latency: float = 1.7,
) -> float:
    """Closed-form steady-state efficiency of the centralized design.

    A worker's cycle is ``wait + dispatch + tree + duration``.  When
    aggregate demand ``N / cycle`` exceeds the dispatcher capacity
    ``1/dispatch_time``, throughput pins at the capacity and efficiency
    is ``capacity * duration / N``; otherwise overheads alone apply.

    Defaults are the *sleep-task* calibration for Figure 19 (real tasks
    carry staging/status overhead, so the dispatcher serves ~420 tasks/s
    rather than the 1700/s NO-OP ceiling): at 2048 cores this yields
    ~20%/41%/70%/82% for 1/2/4/8-second tasks, matching the paper's
    "Falkon only achieved 18% to 82%".
    """
    cycle_no_wait = dispatch_time + tree_latency + task_duration_s
    demand = num_workers / cycle_no_wait
    capacity = 1.0 / dispatch_time
    if demand <= capacity:
        return task_duration_s / cycle_no_wait if cycle_no_wait else 1.0
    return min(1.0, capacity * task_duration_s / num_workers)
