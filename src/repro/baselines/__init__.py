"""Baseline systems the paper compares ZHT against, built from scratch:

* :mod:`~repro.baselines.memcached` — bounded in-memory LRU KV (Table 1,
  Figures 7-10).
* :mod:`~repro.baselines.cassandra` — log-routing ring KV with eventual
  consistency and read repair (Table 1, Figures 8, 10).
* :mod:`~repro.baselines.kademlia` — XOR-routing DHT, the C-MPI stand-in
  (Table 1).
* :mod:`~repro.baselines.kyotocabinet` — disk-based hash store (Figure 6).
* :mod:`~repro.baselines.berkeleydb` — disk-backed B-tree store (Figure 6).
* :mod:`~repro.baselines.gpfs` — centralized metadata service with lock
  contention (Figures 1, 16).
* :mod:`~repro.baselines.falkon` — centralized task dispatcher
  (Figures 18, 19).
"""

from .berkeleydb import BerkeleyDBLike, BTree
from .cassandra import CassandraLike, RingNode
from .falkon import FalkonScheduler, SchedulerResult, falkon_efficiency
from .gpfs import GPFSModel, simulate_creates
from .kademlia import KademliaDHT, KademliaNode, bucket_index, xor_distance
from .kyotocabinet import DiskHashDB
from .memcached import (
    MAX_KEY_BYTES,
    MAX_VALUE_BYTES,
    MemcachedCluster,
    MemcachedLike,
)

__all__ = [
    "BTree",
    "BerkeleyDBLike",
    "CassandraLike",
    "DiskHashDB",
    "FalkonScheduler",
    "GPFSModel",
    "KademliaDHT",
    "KademliaNode",
    "MAX_KEY_BYTES",
    "MAX_VALUE_BYTES",
    "MemcachedCluster",
    "MemcachedLike",
    "RingNode",
    "SchedulerResult",
    "bucket_index",
    "falkon_efficiency",
    "simulate_creates",
    "xor_distance",
]
