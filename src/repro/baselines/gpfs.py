"""GPFS-like centralized parallel-filesystem metadata service.

The paper's motivating measurement (Figure 1) shows GPFS file-create
time per operation growing from ~tens of ms at 1 node to ~10s (many
directories) / ~63s (one directory) at 16K cores: "the distributed
metadata management in GPFS does not have enough degree of distribution,
and not enough emphasis was placed on avoiding lock contention.  GPFS's
metadata performance degrades rapidly under concurrent operations,
reaching saturation at only 4 to 32 core scales."

Two reproductions are provided:

* :class:`GPFSModel` — closed-form: a fixed metadata-server pool bounds
  aggregate create throughput; the shared-directory case additionally
  serializes on a distributed directory lock.  Time per op is
  ``max(base, N/capacity)``.
* :func:`simulate_creates` — the same system in the DES: clients queue on
  a server pool (:class:`~repro.sim.engine.Resource`) and on per-directory
  locks, reproducing the saturation emergently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Environment, Resource


@dataclass(frozen=True)
class GPFSModel:
    """Analytic model of centralized metadata under concurrent creates.

    Defaults are calibrated to the paper's anchors: ~5 ms single-client
    create (Fig 16, 1 node), 393 ms/op at 512 nodes many-dir
    (=> aggregate capacity ~1300 creates/s), 2449 ms/op at 512 nodes
    one-dir (=> lock-bound capacity ~210 creates/s).
    """

    #: Uncontended create latency (s) — "tens of milliseconds on a single
    #: node"; Fig 16 shows 5 ms.
    base_latency: float = 5e-3
    #: Aggregate creates/s of the metadata-server pool (many directories).
    pool_capacity: float = 1300.0
    #: Aggregate creates/s when every client hammers one directory (the
    #: distributed directory lock serializes the critical section).
    single_dir_capacity: float = 210.0

    def time_per_op(self, num_clients: int, shared_dir: bool = False) -> float:
        """Seconds per create observed by each of *num_clients* clients."""
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        capacity = self.single_dir_capacity if shared_dir else self.pool_capacity
        return max(self.base_latency, num_clients / capacity)

    def saturation_clients(self, shared_dir: bool = False) -> int:
        """Client count beyond which latency starts growing linearly —
        the paper's "saturation at only 4 to 32 core scales"."""
        capacity = self.single_dir_capacity if shared_dir else self.pool_capacity
        return max(1, int(capacity * self.base_latency))


def simulate_creates(
    num_clients: int,
    creates_per_client: int = 4,
    *,
    shared_dir: bool = False,
    num_servers: int = 7,
    service_time: float = 5e-3,
    lock_fraction: float = 0.95,
) -> float:
    """DES reproduction: average seconds per create.

    Each create occupies one server from the pool for ``service_time``
    (pool of ``num_servers`` => aggregate capacity
    ``num_servers/service_time``), and holds its directory's lock for
    ``lock_fraction`` of that service (token-based distributed locking).
    With ``shared_dir`` every client contends on one lock — the Figure 1
    "one directory" curve; otherwise each client creates in its own
    directory.
    """
    env = Environment()
    pool = Resource(env, capacity=num_servers)
    num_dirs = 1 if shared_dir else num_clients
    dir_locks = [Resource(env, capacity=1) for _ in range(num_dirs)]
    latencies: list[float] = []

    def client(client_id: int):
        lock = dir_locks[client_id % num_dirs]
        for _ in range(creates_per_client):
            start = env.now
            yield lock.acquire()
            yield pool.acquire()
            yield env.timeout(service_time * lock_fraction)
            lock.release()
            yield env.timeout(service_time * (1.0 - lock_fraction))
            pool.release()
            latencies.append(env.now - start)

    for i in range(num_clients):
        env.process(client(i))
    env.run()
    return sum(latencies) / len(latencies)
