"""Cassandra-like log-routing ring key/value store.

The paper (§II, Table 1) characterizes Cassandra by three properties it
compares ZHT against:

* **log(N) routing** — "Cassandra also uses logarithmic routing strategy
  which makes it less scalable."  We implement Chord-style finger tables:
  each node knows its successor plus ``log2(N)`` fingers, and a request
  walks the ring greedily, taking O(log N) hops (counted and exposed —
  the quantity Figures 8/10 turn into latency).
* **always-writable, eventually consistent** — "deferring consistency
  until the time when data is read and resolving conflicts at that time":
  writes go to any replica reachable and are timestamped; reads collect
  all replica versions, return the newest, and **read-repair** stale
  replicas.
* **replication** across the N successors of the owning node.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from ..core.errors import KeyNotFound
from ..core.hashing import ring_position

RING_BITS = 64
RING_SIZE = 1 << RING_BITS


@dataclass
class _Versioned:
    value: bytes
    timestamp: int
    deleted: bool = False


class RingNode:
    """One Cassandra-like node: token, finger table, local versioned store."""

    def __init__(self, node_id: int, token: int):
        self.node_id = node_id
        self.token = token % RING_SIZE
        self.data: dict[bytes, _Versioned] = {}
        #: Finger i points to the node owning ``token + 2**i`` — built by
        #: the cluster after all nodes exist.
        self.fingers: list["RingNode"] = []
        self.successor: "RingNode | None" = None
        self.alive = True


class CassandraLike:
    """A full ring with log-routing, replication, and read repair."""

    def __init__(
        self,
        num_nodes: int,
        *,
        replication_factor: int = 1,
        seed: int = 0,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if replication_factor < 1 or replication_factor > num_nodes:
            raise ValueError("replication_factor must be in [1, num_nodes]")
        rng = random.Random(seed)
        tokens: set[int] = set()
        while len(tokens) < num_nodes:
            tokens.add(rng.getrandbits(RING_BITS))
        tokens = sorted(tokens)
        self.nodes = [RingNode(i, token) for i, token in enumerate(tokens)]
        self.replication_factor = replication_factor
        self._clock = itertools.count(1)
        self._build_routing()
        #: Total routing hops taken, for the Table 1 / latency comparison.
        self.total_hops = 0
        self.total_requests = 0

    # ------------------------------------------------------------------
    # Ring construction
    # ------------------------------------------------------------------

    def _build_routing(self) -> None:
        ordered = self.nodes  # already sorted by token
        n = len(ordered)
        for i, node in enumerate(ordered):
            node.successor = ordered[(i + 1) % n]
            node.fingers = [
                self._owner_of_point((node.token + (1 << b)) % RING_SIZE)
                for b in range(RING_BITS)
            ]

    def _owner_of_point(self, point: int) -> RingNode:
        """First node whose token is >= point (wrapping)."""
        lo, hi = 0, len(self.nodes)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.nodes[mid].token < point:
                lo = mid + 1
            else:
                hi = mid
        return self.nodes[lo % len(self.nodes)]

    def owner_of_key(self, key: bytes) -> RingNode:
        return self._owner_of_point(ring_position(key))

    def replica_nodes(self, key: bytes) -> list[RingNode]:
        owner = self.owner_of_key(key)
        start = self.nodes.index(owner)
        return [
            self.nodes[(start + i) % len(self.nodes)]
            for i in range(self.replication_factor)
        ]

    # ------------------------------------------------------------------
    # Log-routing
    # ------------------------------------------------------------------

    @staticmethod
    def _in_arc(x: int, start: int, end: int) -> bool:
        """Is x in the half-open ring arc (start, end]?"""
        if start < end:
            return start < x <= end
        return x > start or x <= end

    def route(self, start: RingNode, key: bytes) -> tuple[RingNode, int]:
        """Greedy finger-table walk from *start* to the key's owner.

        Returns ``(owner, hops)`` — the hop count is what makes this
        baseline log(N) rather than zero-hop.
        """
        point = ring_position(key)
        node = start
        hops = 0
        while not self._in_arc(
            point,
            self._predecessor_token(node),
            node.token,
        ):
            # Jump to the furthest finger not overshooting the target.
            next_node = node.successor
            for finger in reversed(node.fingers):
                if finger is node:
                    continue
                if self._in_arc(finger.token, node.token, point):
                    next_node = finger
                    break
            if next_node is node:
                break
            node = next_node
            hops += 1
            if hops > len(self.nodes) + RING_BITS:
                raise RuntimeError("routing failed to converge")
        self.total_hops += hops
        self.total_requests += 1
        return node, hops

    def _predecessor_token(self, node: RingNode) -> int:
        index = self.nodes.index(node)
        return self.nodes[index - 1].token

    def average_hops(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.total_hops / self.total_requests

    # ------------------------------------------------------------------
    # Client operations (always-writable, eventually consistent)
    # ------------------------------------------------------------------

    def _entry_point(self, key: bytes) -> RingNode:
        # Clients connect to an arbitrary coordinator node.
        alive = [n for n in self.nodes if n.alive]
        return alive[ring_position(key + b"#coord") % len(alive)]

    def put(self, key: bytes, value: bytes) -> int:
        """Write to every reachable replica; returns how many accepted.

        Never rejects a write while any replica is alive ("the system is
        designed to always accept writes even in light of node failures").
        """
        self.route(self._entry_point(key), key)
        stamp = next(self._clock)
        accepted = 0
        for node in self.replica_nodes(key):
            if node.alive:
                node.data[key] = _Versioned(value, stamp)
                accepted += 1
        return accepted

    def get(self, key: bytes) -> bytes:
        """Read all replicas, resolve by newest timestamp, read-repair."""
        self.route(self._entry_point(key), key)
        versions = [
            (node, node.data[key])
            for node in self.replica_nodes(key)
            if node.alive and key in node.data
        ]
        if not versions:
            raise KeyNotFound(repr(key))
        newest = max(versions, key=lambda pair: pair[1].timestamp)[1]
        # Read repair: bring stale live replicas up to the newest version.
        for node in self.replica_nodes(key):
            if node.alive:
                current = node.data.get(key)
                if current is None or current.timestamp < newest.timestamp:
                    node.data[key] = _Versioned(
                        newest.value, newest.timestamp, newest.deleted
                    )
        if newest.deleted:
            raise KeyNotFound(repr(key))
        return newest.value

    def delete(self, key: bytes) -> None:
        """Tombstone write (deletes are writes in Cassandra)."""
        self.route(self._entry_point(key), key)
        stamp = next(self._clock)
        for node in self.replica_nodes(key):
            if node.alive:
                node.data[key] = _Versioned(b"", stamp, deleted=True)

    # -- fault injection ------------------------------------------------------

    def kill_node(self, node_id: int) -> None:
        self.nodes[node_id].alive = False

    def revive_node(self, node_id: int) -> None:
        self.nodes[node_id].alive = True

    FEATURES = {
        "implementation": "Python (models Java Cassandra)",
        "routing_hops": "log(N)",
        "persistence": True,
        "dynamic_membership": True,
        "replication": True,
        "append": False,
    }
