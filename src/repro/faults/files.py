"""File-level fault injection for NoVoHT's WAL and checkpoint I/O.

:class:`FaultyWALFile` wraps the WAL's append handle (via the
``wal_opener`` hook on :class:`~repro.novoht.novoht.NoVoHT` /
``opener`` on :class:`~repro.novoht.wal.WriteAheadLog`) and models the
storage-stack failure modes the paper's persistence layer must survive:

* **fsync loss** — the drive acknowledges a sync it never performed
  (volatile write cache); bytes written after the last *honest* sync
  are gone after a crash.
* **torn tail** — power fails mid-append; an arbitrary prefix of the
  final record reaches the platter.

The shim never fakes the happy path: writes really hit the file, and a
run without :meth:`simulate_crash` is byte-identical to an uninjected
one.  :meth:`simulate_crash` rewrites the on-disk file to exactly what
would have survived the power cut, after which a fresh ``NoVoHT(path)``
exercises the real recovery code.

Standalone corruption helpers (:func:`tear_tail`, :func:`corrupt_byte`)
build the mid-record and CRC-corruption cases for recovery tests.
"""

from __future__ import annotations

import os
from typing import BinaryIO

from .plan import FaultKind, FaultPlan


class FaultyWALFile:
    """A binary append-file wrapper with crash-consistency simulation.

    Tracks ``durable_bytes`` — the file size at the last fsync that was
    *not* lost to an injected ``FSYNC_LOSS`` fault.  ``simulate_crash``
    truncates the real file back to that point (optionally keeping a
    torn prefix of the first lost record when a ``TORN_TAIL`` rule
    fires), so subsequent recovery sees exactly a post-power-cut disk.
    """

    def __init__(
        self,
        path: str,
        mode: str = "ab",
        *,
        plan: FaultPlan | None = None,
        target: str | None = None,
    ):
        self._file: BinaryIO = open(path, mode)
        self.path = path
        self.plan = plan
        self.target = target
        #: Bytes guaranteed on disk (size as of the last honest fsync).
        self.durable_bytes = os.path.getsize(path)
        #: Offsets at which writes completed since the last honest fsync
        #: (record boundaries, for torn-tail placement).
        self._write_ends: list[int] = []
        self.fsyncs = 0
        self.fsyncs_lost = 0
        self.crashed = False

    # -- file protocol (what WriteAheadLog uses) --------------------------

    def write(self, data: bytes) -> int:
        n = self._file.write(data)
        self._write_ends.append(self._file.tell())
        return n

    def flush(self) -> None:
        self._file.flush()

    def fileno(self) -> int:
        return self._file.fileno()

    def tell(self) -> int:
        return self._file.tell()

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._file.seek(offset, whence)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def fsync(self) -> None:
        """Sync point: honest unless an ``FSYNC_LOSS`` rule fires."""
        self.fsyncs += 1
        self._file.flush()
        if self.plan is not None and self.plan.file_fault(
            FaultKind.FSYNC_LOSS, target=self.target
        ):
            self.fsyncs_lost += 1
            return
        os.fsync(self._file.fileno())
        self.durable_bytes = self._file.tell()
        self._write_ends.clear()

    # -- crash simulation --------------------------------------------------

    def simulate_crash(self) -> int:
        """Rewrite the on-disk file to its post-crash content.

        Everything past ``durable_bytes`` is discarded; if a
        ``TORN_TAIL`` rule fires (or no plan is attached), a torn prefix
        of the first un-synced record is kept, exercising the WAL's
        mid-record recovery.  Returns the surviving size.  The handle is
        closed; reopen through a fresh store to recover.
        """
        self._file.flush()
        size = self._file.tell()
        keep = self.durable_bytes
        lost_tail = size - keep
        if lost_tail > 0:
            tear = True
            if self.plan is not None:
                tear = (
                    self.plan.file_fault(FaultKind.TORN_TAIL, target=self.target)
                    is not None
                )
            if tear:
                # Keep roughly half of the first lost record: a torn write.
                first_end = next(
                    (e for e in self._write_ends if e > keep), size
                )
                keep += max(0, (first_end - keep) // 2)
        self._file.close()
        with open(self.path, "r+b") as f:
            f.truncate(keep)
        self.crashed = True
        return keep


def faulty_wal_opener(plan: FaultPlan | None = None, target: str | None = None):
    """A ``wal_opener`` for :class:`~repro.novoht.novoht.NoVoHT` that
    returns the shim and remembers the last opened file on the function
    object (``opener.last``)."""

    def opener(path: str, mode: str) -> FaultyWALFile:
        f = FaultyWALFile(path, mode, plan=plan, target=target)
        opener.last = f
        return f

    opener.last = None
    return opener


# ---------------------------------------------------------------------------
# Standalone corruption helpers for recovery tests
# ---------------------------------------------------------------------------


def tear_tail(path: str, drop_bytes: int) -> int:
    """Truncate the last *drop_bytes* bytes off *path* (simulated torn
    final record); returns the new size."""
    size = os.path.getsize(path)
    keep = max(0, size - drop_bytes)
    with open(path, "r+b") as f:
        f.truncate(keep)
    return keep


def corrupt_byte(path: str, offset: int) -> None:
    """Flip one byte at *offset* (bit rot / partial overwrite)."""
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        if not byte:
            raise ValueError(f"offset {offset} past end of {path}")
        f.seek(offset)
        f.write(bytes((byte[0] ^ 0xFF,)))
