"""Failure-recovery invariants.

Two properties turn the paper's §fault-tolerance narrative into
checkable assertions:

1. **Acknowledged durability** — every write the client saw acknowledged
   must be readable after recovery from any single node failure (given
   ``num_replicas >= 1``).  :class:`AckLedger` models the expected final
   state from the ack stream; :meth:`AckLedger.verify` replays it
   against live lookups.
2. **Replica convergence** — asynchronously-updated replicas must hold
   the primary's value once faults stop and in-flight updates drain
   (§III.J: only the secondary is strongly consistent).

The checkers work on iterables of :class:`~repro.core.server.ZHTServerCore`
so the same code audits the local, socket, and simulated backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.errors import KeyNotFound
from ..core.membership import MembershipTable
from ..core.protocol import OpCode
from ..core.server import ZHTServerCore


@dataclass
class AckLedger:
    """Model of the expected key space, built from acknowledged ops."""

    #: Expected value per key (inserts overwrite, appends concatenate).
    expected: dict[bytes, bytes] = field(default_factory=dict)
    #: Keys whose last acknowledged op was a REMOVE.
    removed: set[bytes] = field(default_factory=set)
    acked_ops: int = 0

    def record(self, op: OpCode, key: bytes, value: bytes = b"") -> None:
        """Record one *acknowledged* mutation (call only after the client
        op returned success)."""
        self.acked_ops += 1
        if op == OpCode.INSERT:
            self.expected[key] = value
            self.removed.discard(key)
        elif op == OpCode.APPEND:
            self.expected[key] = self.expected.get(key, b"") + value
            self.removed.discard(key)
        elif op == OpCode.REMOVE:
            self.expected.pop(key, None)
            self.removed.add(key)

    def verify(self, lookup: Callable[[bytes], bytes]) -> list[str]:
        """Check every acknowledged write against *lookup*.

        *lookup* returns the live value or raises
        :class:`~repro.core.errors.KeyNotFound`; any other exception is
        reported as a violation too (an acked key must stay readable).
        Returns human-readable violation strings (empty = invariant holds).
        """
        violations: list[str] = []
        for key, want in self.expected.items():
            try:
                got = lookup(key)
            except KeyNotFound:
                violations.append(f"acked write lost: {key!r} not found")
                continue
            except Exception as exc:  # noqa: BLE001 - report, don't mask
                violations.append(f"acked write unreadable: {key!r}: {exc!r}")
                continue
            if got != want:
                violations.append(
                    f"acked write diverged: {key!r} = {got!r}, want {want!r}"
                )
        for key in self.removed:
            try:
                lookup(key)
            except KeyNotFound:
                continue
            except Exception:
                continue
            violations.append(f"acked remove resurrected: {key!r}")
        return violations


# ---------------------------------------------------------------------------
# Store-level replication checks
# ---------------------------------------------------------------------------


def _alive_servers(
    servers: Iterable[ZHTServerCore], membership: MembershipTable
) -> list[ZHTServerCore]:
    return [
        s
        for s in servers
        if membership.nodes[s.info.node_id].alive
    ]


def holders_of_key(
    servers: Iterable[ZHTServerCore],
    membership: MembershipTable,
    key: bytes,
) -> list[str]:
    """Instance ids of alive servers whose stores hold *key*."""
    return [
        server.info.instance_id
        for server in _alive_servers(servers, membership)
        if any(key in part.store for part in server.partitions.values())
    ]


def classify_acked_outcomes(
    ledger: AckLedger,
    lookup: Callable[[bytes], bytes],
    servers: Iterable[ZHTServerCore],
    membership: MembershipTable,
) -> tuple[list[str], list[str]]:
    """Audit the ack ledger against the owner *and* the raw stores.

    Returns ``(lost, diverged)``:

    * **lost** — the acked data exists on *no* alive instance at all: the
      durability guarantee is broken.
    * **diverged** — the owner's answer disagrees with the ledger but an
      alive instance still holds the key (e.g. a falsely-suspected owner
      missed failover writes, or an at-least-once retry double-applied an
      APPEND).  The data survived; the chain has not converged.
    """
    servers = list(servers)
    lost: list[str] = []
    diverged: list[str] = []
    for key, want in ledger.expected.items():
        try:
            got = lookup(key)
        except KeyNotFound:
            got = None
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            lost.append(f"acked write unreadable: {key!r}: {exc!r}")
            continue
        if got == want:
            continue
        holders = holders_of_key(servers, membership, key)
        if not holders:
            lost.append(f"acked write lost: {key!r} on no alive instance")
        elif got is None:
            diverged.append(
                f"acked write missing at owner: {key!r} held by "
                f"{len(holders)} alive instance(s)"
            )
        else:
            diverged.append(
                f"acked write disagrees at owner: {key!r} = {got!r}, "
                f"want {want!r}"
            )
    for key in ledger.removed:
        try:
            lookup(key)
        except Exception:
            continue
        lost.append(f"acked remove resurrected: {key!r}")
    return lost, diverged


def check_replication_level(
    servers: Iterable[ZHTServerCore],
    membership: MembershipTable,
    keys: Iterable[bytes],
    min_copies: int,
) -> list[str]:
    """Every key must exist on at least *min_copies* alive instances."""
    servers = list(servers)
    violations = []
    for key in keys:
        holders = holders_of_key(servers, membership, key)
        if len(holders) < min_copies:
            violations.append(
                f"under-replicated: {key!r} on {len(holders)} "
                f"instance(s), want >= {min_copies}"
            )
    return violations


def check_convergence(
    servers: Iterable[ZHTServerCore],
    membership: MembershipTable,
    expected: dict[bytes, bytes],
    num_replicas: int,
    hash_name: str,
) -> list[str]:
    """After faults stop and updates drain, each key's replica chain must
    agree with the expected value (async replicas converge, §III.J)."""
    by_instance = {s.info.instance_id: s for s in servers}
    violations = []
    for key, want in expected.items():
        pid = membership.partition_of_key(key, hash_name)
        chain = membership.replicas_for_partition(pid, num_replicas)
        for inst in chain:
            if not membership.nodes[inst.node_id].alive:
                continue
            server = by_instance.get(inst.instance_id)
            if server is None:
                continue
            part = server.partitions.get(pid)
            store = part.store if part is not None else None
            if store is None or key not in store:
                violations.append(
                    f"replica missing: {key!r} absent on "
                    f"{inst.instance_id[:8]}"
                )
                continue
            got = store.get(key)
            if got != want:
                violations.append(
                    f"replica diverged: {key!r} on {inst.instance_id[:8]} "
                    f"= {got!r}, want {want!r}"
                )
    return violations
