"""Deterministic fault injection for ZHT deployments.

The paper's fault-tolerance story (§III.H: timeout detection with
exponential backoff, replica failover, manager-driven re-replication) is
implemented across ``repro.core``, ``repro.net``, and ``repro.sim`` —
this package exercises it as a whole:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`, one seeded schedule
  format for every fault class (message drop/delay/duplicate, connection
  reset, node crash/stall, fsync loss, torn WAL tail).
* :mod:`~repro.faults.transport` — :class:`FaultyClientTransport`, a
  wrapper applying a plan around any :class:`~repro.net.transport.ClientTransport`.
* :mod:`~repro.faults.files` — :class:`FaultyWALFile`, the file-level
  shim simulating crashes with un-synced or torn WAL tails.
* :mod:`~repro.faults.invariants` — :class:`AckLedger` and the checkers
  behind the core invariant: an *acknowledged* write survives any single
  node failure under replication.
* :mod:`~repro.faults.chaos` — the end-to-end chaos harness
  (``python -m repro chaos``) over the local/TCP/UDP backends.
* :mod:`~repro.faults.simchaos` — the same harness inside the DES
  simulator, for churn at scales sockets cannot host.
"""

from .chaos import ChaosReport, run_chaos
from .files import FaultyWALFile, corrupt_byte, faulty_wal_opener, tear_tail
from .invariants import (
    AckLedger,
    check_convergence,
    check_replication_level,
    classify_acked_outcomes,
    holders_of_key,
)
from .plan import (
    VICTIM_TARGET,
    FaultKind,
    FaultPlan,
    FaultRecord,
    FaultRule,
    resolve_victim_rules,
)
from .transport import FaultyClientTransport, FaultyTransportStats


def __getattr__(name):
    # Loaded lazily: simchaos imports repro.sim.cluster, whose fault hooks
    # import repro.faults.plan — an eager import here would be circular.
    if name == "run_chaos_sim":
        from .simchaos import run_chaos_sim

        return run_chaos_sim
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AckLedger",
    "ChaosReport",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultRule",
    "FaultyClientTransport",
    "FaultyTransportStats",
    "FaultyWALFile",
    "faulty_wal_opener",
    "check_convergence",
    "check_replication_level",
    "classify_acked_outcomes",
    "corrupt_byte",
    "holders_of_key",
    "run_chaos",
    "run_chaos_sim",
    "tear_tail",
]
