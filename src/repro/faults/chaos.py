"""End-to-end failure-recovery harness (``python -m repro chaos``).

One run drives the paper's whole Pillar-5 story against a live
deployment and measures it:

1. **steady state** — a client streams writes, recording every
   acknowledgement in an :class:`~repro.faults.invariants.AckLedger`;
2. **failure** — one physical node is hard-killed mid-workload; the
   client rides through timeouts, exponential backoff, and replica
   failover (§III.H);
3. **repair** — a manager runs
   :meth:`~repro.core.manager.ManagerCore.repair_after_failure`,
   reassigning the dead node's partitions and restoring the replication
   level;
4. **verification** — zero acknowledged writes lost, full replication
   restored, async replicas converged, and the injected fault sequence
   reproducible from the plan seed.

The same harness runs over the in-process local network and real
TCP/UDP loopback sockets; :mod:`repro.faults.simchaos` repeats it inside
the DES for scales sockets cannot host.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..core.config import ZHTConfig
from ..core.errors import ZHTError
from ..core.protocol import OpCode
from ..scenario.cluster import (
    build_cluster as _build_cluster,
    default_config as _default_config,
    kill_node as _kill,
    repair_node as _repair,
    server_cores as _server_cores,
)
from .invariants import (
    AckLedger,
    check_convergence,
    check_replication_level,
    classify_acked_outcomes,
)
from .plan import FaultPlan, resolve_victim_rules
from .transport import FaultyClientTransport

BACKENDS = ("local", "tcp", "udp", "sim")


@dataclass
class ChaosReport:
    """Everything one chaos run measured and verified."""

    backend: str
    nodes: int
    replicas: int
    seed: int
    ops_attempted: int = 0
    ops_acked: int = 0
    ops_failed: int = 0
    #: Ops the client retried or failed over (from client stats).
    retries: int = 0
    failovers: int = 0
    nodes_marked_dead: int = 0
    victim: str = ""
    #: Worst successful-op latency between kill and repair — the op that
    #: burned the timeout/backoff chain before failing over (seconds;
    #: simulated seconds for the sim backend).
    failover_latency_s: float = 0.0
    #: Wall time the repair script took (time-to-re-replication).
    repair_time_s: float = 0.0
    throughput_before: float = 0.0
    throughput_during: float = 0.0
    throughput_after: float = 0.0
    #: Acked-durability violations — data on *no* alive instance
    #: (must be empty).
    lost_writes: list = field(default_factory=list)
    #: Acked writes the owner disagrees about but an alive instance still
    #: holds (false-suspicion failover, at-least-once duplication).
    diverged_writes: list = field(default_factory=list)
    #: Replication-level violations after repair (must be empty).
    replication_violations: list = field(default_factory=list)
    #: Async-replica convergence violations after quiesce (must be empty).
    convergence_violations: list = field(default_factory=list)
    #: Deterministic digest of the injected fault sequence.
    fault_digest: str = ""
    injected_faults: int = 0

    @property
    def ok(self) -> bool:
        return not (
            self.lost_writes
            or self.diverged_writes
            or self.replication_violations
            or self.convergence_violations
        )

    def summary_lines(self) -> list[str]:
        dip = (
            (1 - self.throughput_during / self.throughput_before) * 100
            if self.throughput_before
            else 0.0
        )
        return [
            f"backend={self.backend} nodes={self.nodes} "
            f"replicas={self.replicas} seed={self.seed}",
            f"ops: {self.ops_acked}/{self.ops_attempted} acked, "
            f"{self.ops_failed} failed, {self.retries} retries, "
            f"{self.failovers} failovers, "
            f"{self.nodes_marked_dead} node(s) marked dead",
            f"victim: {self.victim}",
            f"failover latency: {self.failover_latency_s * 1e3:.1f} ms   "
            f"repair time: {self.repair_time_s * 1e3:.1f} ms",
            f"throughput ops/s: {self.throughput_before:,.0f} before, "
            f"{self.throughput_during:,.0f} during ({dip:+.0f}% dip), "
            f"{self.throughput_after:,.0f} after",
            f"faults injected: {self.injected_faults} "
            f"(digest {self.fault_digest})",
            f"invariants: "
            + (
                "OK (no acked write lost, replication restored)"
                if self.ok
                else f"{len(self.lost_writes)} lost, "
                f"{len(self.diverged_writes)} diverged at owner, "
                f"{len(self.replication_violations)} under-replicated, "
                f"{len(self.convergence_violations)} replica mismatches"
            ),
        ]


def run_chaos(
    backend: str = "local",
    *,
    nodes: int = 4,
    replicas: int = 1,
    ops: int = 240,
    seed: int = 0,
    plan: FaultPlan | None = None,
    config: ZHTConfig | None = None,
    value_bytes: int = 64,
    kill_fraction: float = 0.35,
    detector: str | None = None,
) -> ChaosReport:
    """Run one kill-and-repair chaos scenario; returns the report.

    ``plan`` may add message-level chaos (drops/delays/duplicates) on
    top of the node kill; with ``plan=None`` only the kill is injected.
    The fault sequence for a given ``(seed, plan)`` is deterministic.
    ``detector`` overrides ``failure_detector`` in whatever config is
    used (the phi-vs-count failover ablation).
    """
    if backend == "sim":
        from .simchaos import run_chaos_sim

        return run_chaos_sim(
            nodes=nodes,
            replicas=replicas,
            ops=ops,
            seed=seed,
            plan=plan,
            value_bytes=value_bytes,
            kill_fraction=kill_fraction,
            detector=detector,
        )
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}")
    if nodes < 3:
        raise ValueError("chaos needs >= 3 nodes (victim + survivors)")

    config = config or _default_config(backend, replicas)
    if detector is not None:
        config = config.replace(failure_detector=detector)
    plan = plan or FaultPlan(seed)
    report = ChaosReport(backend, nodes, replicas, seed)
    rng = random.Random(seed)

    kill_index = max(1, int(ops * kill_fraction))
    repair_index = min(ops - 1, kill_index + max(6, ops // 6))

    with _build_cluster(backend, nodes, config, seed) as cluster:
        victim = sorted(cluster.membership.nodes)[1]
        report.victim = victim
        resolve_victim_rules(plan, cluster.membership, victim)
        client = cluster.client(seed=seed)
        client.transport = FaultyClientTransport(client.transport, plan)

        value = bytes(rng.randrange(256) for _ in range(value_bytes))
        ledger = AckLedger()
        window_latencies: list[float] = []
        t_start = time.perf_counter()
        t_kill = t_repair_start = t_repair_done = t_start

        for i in range(ops):
            if i == kill_index:
                _kill(cluster, backend, victim, plan)
                t_kill = time.perf_counter()
            if i == repair_index:
                t_repair_start = time.perf_counter()
                report.repair_time_s = _repair(cluster, victim, config, seed)
                t_repair_done = time.perf_counter()

            key = f"chaos-{seed}-{i:05d}".encode()
            op = OpCode.APPEND if i % 7 == 3 else OpCode.INSERT
            report.ops_attempted += 1
            t0 = time.perf_counter()
            try:
                if op == OpCode.INSERT:
                    client.insert(key, value)
                else:
                    client.append(key, b"+tail")
            except ZHTError:
                report.ops_failed += 1
                continue
            dt = time.perf_counter() - t0
            ledger.record(op, key, value if op == OpCode.INSERT else b"+tail")
            report.ops_acked += 1
            if kill_index <= i < repair_index:
                window_latencies.append(dt)

        t_end = time.perf_counter()
        report.retries = client.stats.retries
        report.failovers = client.stats.failovers
        report.nodes_marked_dead = client.stats.nodes_marked_dead
        report.failover_latency_s = max(window_latencies, default=0.0)
        report.throughput_before = kill_index / max(t_kill - t_start, 1e-9)
        report.throughput_during = (repair_index - kill_index) / max(
            t_repair_start - t_kill, 1e-9
        )
        report.throughput_after = (ops - repair_index) / max(
            t_end - t_repair_done, 1e-9
        )

        # -- verification ------------------------------------------------
        if backend in ("tcp", "udp"):
            time.sleep(0.2)  # drain in-flight async replica updates
        fresh = cluster.client(seed=seed + 1)
        cores = _server_cores(cluster, backend)
        membership = cluster.membership
        report.lost_writes, report.diverged_writes = classify_acked_outcomes(
            ledger, fresh.lookup, cores, membership
        )
        alive_nodes = sum(1 for n in membership.nodes.values() if n.alive)
        min_copies = min(replicas + 1, alive_nodes)
        report.replication_violations = check_replication_level(
            cores, membership, ledger.expected.keys(), min_copies
        )
        report.convergence_violations = check_convergence(
            cores,
            membership,
            ledger.expected,
            replicas,
            config.hash_name,
        )
    report.injected_faults = len(plan.trace)
    report.fault_digest = plan.trace_digest()
    return report
