"""The chaos harness inside the discrete-event simulator.

Runs the same kill → failover → repair → verify scenario as
:func:`repro.faults.chaos.run_chaos`, but against
:class:`~repro.sim.cluster.SimulatedCluster`, where a "node" costs no
memory beyond its state machine — so churn can be exercised at scales
loopback sockets cannot host, with the same real
:class:`~repro.core.client.OpDriver` /
:class:`~repro.core.server.ZHTServerCore` protocol logic.

Times in the resulting :class:`~repro.faults.chaos.ChaosReport` are
*simulated* seconds (from the calibrated latency models), not wall
time.
"""

from __future__ import annotations

import random

from ..core.client import ZHTClientCore
from ..core.config import ReplicationMode, ZHTConfig
from ..core.errors import KeyNotFound, ZHTError
from ..core.manager import ManagerCore
from ..core.protocol import OpCode
from ..sim.cluster import SimSpec, SimulatedCluster, _SimMessage
from .chaos import ChaosReport
from .invariants import (
    AckLedger,
    check_convergence,
    check_replication_level,
    classify_acked_outcomes,
)
from .plan import FaultPlan, resolve_victim_rules


def _sim_roundtrip(cluster: SimulatedCluster, address, request, timeout):
    """DES sub-generator: one request/response with a timeout race.

    Returns the response, or ``None`` on timeout / unroutable address
    (mirrors :meth:`ClientTransport.roundtrip`).
    """
    dst = cluster._addr_to_index.get(address)
    if dst is None:
        # Unroutable (e.g. a manager port): burn the timeout like a real
        # transport waiting on a dead address would.
        yield cluster.env.timeout(timeout)
        return None
    reply = cluster.env.event()
    cluster._deliver(dst, _SimMessage(request, reply, 0), 0)
    winner = yield cluster._first_of(reply, cluster.env.timeout(timeout))
    return reply.value if winner == 0 else None


def _sim_execute(cluster: SimulatedCluster, core: ZHTClientCore, driver):  # lint: single-threaded
    """DES sub-generator mirroring :func:`repro.net.transport.execute_op`:
    drives one op through retries/backoff/failover in simulated time.
    The discrete-event simulator runs everything on one thread, so the
    client core's locks are not needed here."""
    while True:
        attempt = driver.next_attempt()
        if attempt is None:
            break
        if attempt.delay > 0:
            yield cluster.env.timeout(attempt.delay)
        sent_at = cluster.env.now
        response = yield from _sim_roundtrip(
            cluster, attempt.address, attempt.request, attempt.timeout
        )
        if response is None:
            driver.on_timeout()
        else:
            driver.on_response(response, rtt_s=cluster.env.now - sent_at)
    # Manager failure notifications have no routable address in the sim.
    core.pending_notifications.clear()
    return driver.result()


def _sim_repair(cluster: SimulatedCluster, victim: str, config, seed: int):
    """DES sub-generator running the manager repair script over the
    simulated network."""
    manager_node = next(
        n
        for n, info in cluster.membership.nodes.items()
        if info.alive and n != victim
    )
    manager = ManagerCore(
        manager_node,
        cluster.membership,
        config,
        rng=random.Random(seed ^ 0xC0DE),
    )
    script = manager.repair_after_failure(victim)
    reply = None
    while True:
        try:
            call = script.send(reply)
        except StopIteration as stop:
            return stop.value
        reply = yield from _sim_roundtrip(
            cluster, call.address, call.request, config.request_timeout * 4
        )


def run_chaos_sim(
    *,
    nodes: int = 4,
    replicas: int = 1,
    ops: int = 240,
    seed: int = 0,
    plan: FaultPlan | None = None,
    value_bytes: int = 64,
    kill_fraction: float = 0.35,
    partitions_per_instance: int = 16,
    detector: str | None = None,
) -> ChaosReport:
    """One kill-and-repair chaos scenario inside the DES; see
    :func:`repro.faults.chaos.run_chaos` for the scenario shape."""
    if nodes < 3:
        raise ValueError("chaos needs >= 3 nodes (victim + survivors)")
    plan = plan or FaultPlan(seed)
    config = ZHTConfig(
        transport="local",
        num_partitions=nodes * partitions_per_instance,
        num_replicas=replicas,
        replication_mode=(
            ReplicationMode.ASYNC if replicas > 0 else ReplicationMode.NONE
        ),
        request_timeout=0.005,
        failures_before_dead=2,
        backoff_factor=1.5,
        max_retries=10,
        # Re-probe flapping nodes within a few (simulated) op latencies.
        breaker_cooldown_s=0.02,
        breaker_cooldown_max_s=0.2,
    )
    if detector is not None:
        config = config.replace(failure_detector=detector)
    spec = SimSpec(
        num_nodes=nodes,
        num_replicas=replicas,
        replication_mode=config.replication_mode,
        partitions_per_instance=partitions_per_instance,
        real_core=True,
        seed=seed,
        faults=plan,
        config=config,
    )
    cluster = SimulatedCluster(spec)
    env = cluster.env
    membership = cluster.membership
    report = ChaosReport("sim", nodes, replicas, seed)
    victim = sorted(membership.nodes)[1]
    report.victim = victim
    resolve_victim_rules(plan, membership, victim)
    rng = random.Random(seed)
    value = bytes(rng.randrange(256) for _ in range(value_bytes))
    ledger = AckLedger()
    core = ZHTClientCore(
        membership.copy(),
        config,
        rng=random.Random((seed << 16) ^ 0xFA),
        clock=lambda: env.now,
    )

    kill_index = max(1, int(ops * kill_fraction))
    repair_index = min(ops - 1, kill_index + max(6, ops // 6))
    times = {"start": 0.0, "kill": 0.0, "repair_start": 0.0, "repair_done": 0.0}
    window: list[float] = []

    def chaos_proc():
        for i in range(ops):
            if i == kill_index:
                cluster.kill_node(victim)
                plan.crash_target(
                    victim,
                    *[
                        str(inst.address)
                        for inst in membership.instances_on_node(victim)
                    ],
                )
                times["kill"] = env.now
            if i == repair_index:
                times["repair_start"] = env.now
                yield from _sim_repair(cluster, victim, config, seed)
                times["repair_done"] = env.now
                report.repair_time_s = env.now - times["repair_start"]

            key = f"simchaos-{seed}-{i:05d}".encode()
            op = OpCode.APPEND if i % 7 == 3 else OpCode.INSERT
            payload = b"+tail" if op == OpCode.APPEND else value
            report.ops_attempted += 1
            t0 = env.now
            driver = core.driver(op, key, payload)
            try:
                yield from _sim_execute(cluster, core, driver)
            except ZHTError:
                report.ops_failed += 1
                continue
            ledger.record(op, key, payload)
            report.ops_acked += 1
            if kill_index <= i < repair_index:
                window.append(env.now - t0)
        times["end"] = env.now

    proc = env.process(chaos_proc(), name="chaos")
    env.run()
    if not proc.done:
        raise RuntimeError("sim chaos workload deadlocked")

    report.retries = core.stats.retries
    report.failovers = core.stats.failovers
    report.nodes_marked_dead = core.stats.nodes_marked_dead
    report.failover_latency_s = max(window, default=0.0)
    report.throughput_before = kill_index / max(times["kill"], 1e-12)
    report.throughput_during = (repair_index - kill_index) / max(
        times["repair_start"] - times["kill"], 1e-12
    )
    report.throughput_after = (ops - repair_index) / max(
        times["end"] - times["repair_done"], 1e-12
    )

    # -- verification (directly against the stores; the DES has drained,
    # so there are no in-flight replica updates) -------------------------
    def lookup(key: bytes) -> bytes:
        pid = membership.partition_of_key(key, config.hash_name)
        inst = membership.owner_of_partition(pid)
        server = cluster.handlers[cluster._addr_to_index[inst.address]]
        part = server.partitions.get(pid)
        if part is None or key not in part.store:
            raise KeyNotFound(f"{key!r} not on owner {inst.instance_id[:8]}")
        return part.store.get(key)

    report.lost_writes, report.diverged_writes = classify_acked_outcomes(
        ledger, lookup, cluster.handlers, membership
    )
    alive_nodes = sum(1 for n in membership.nodes.values() if n.alive)
    report.replication_violations = check_replication_level(
        cluster.handlers,
        membership,
        ledger.expected.keys(),
        min(replicas + 1, alive_nodes),
    )
    report.convergence_violations = check_convergence(
        cluster.handlers, membership, ledger.expected, replicas, config.hash_name
    )
    report.injected_faults = len(plan.trace)
    report.fault_digest = plan.trace_digest()
    return report
