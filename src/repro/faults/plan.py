"""The :class:`FaultPlan` schedule format.

One plan describes every fault a run will inject, across all three
injection points (client transport, DES cluster, WAL file shim).  Plans
are **deterministic**: each rule's firing decisions are a pure function
of ``(plan.seed, rule index, per-rule match counter)``, so two runs that
present the same sequence of matching events to a plan built with the
same seed inject the identical fault sequence — the property the chaos
harness asserts on (replayability is what makes an injected-fault
failure debuggable).

Every decision is appended to :attr:`FaultPlan.trace`, and
:meth:`FaultPlan.trace_digest` summarises a run's fault sequence in one
comparable string.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, replace

#: Sentinel rule target resolved by the chaos harness to the concrete
#: instance addresses of the node it is about to kill (the transports
#: match faults against address strings, which are only known once the
#: cluster is built).
VICTIM_TARGET = "victim"


class FaultKind:
    """Names of the injectable fault classes."""

    #: Message vanishes; the sender observes a timeout.
    DROP = "drop"
    #: Message is delivered after an extra ``rule.delay`` seconds.
    DELAY = "delay"
    #: Message is delivered twice (UDP retransmit / duplicated datagram).
    DUPLICATE = "duplicate"
    #: Connection reset: the attempt fails immediately (no timeout wait)
    #: and any cached connection to the target is discarded.
    RESET = "reset"
    #: Node crash: the target becomes permanently unreachable until the
    #: harness revives/repairs it.
    CRASH = "crash"
    #: Node stall: the target answers, but ``rule.delay`` seconds late
    #: (GC pause / overloaded node).
    STALL = "stall"
    #: ``fsync`` silently does nothing; bytes written after the last real
    #: sync are lost if the process crashes.
    FSYNC_LOSS = "fsync_loss"
    #: On crash, a prefix of the first un-synced record survives (power
    #: loss mid-append), exercising WAL tail recovery.
    TORN_TAIL = "torn_tail"

    MESSAGE_KINDS = (DROP, DELAY, DUPLICATE, RESET, STALL)
    FILE_KINDS = (FSYNC_LOSS, TORN_TAIL)
    ALL = MESSAGE_KINDS + FILE_KINDS + (CRASH,)


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule.

    A rule *matches* an event when ``kind`` equals the event kind and
    ``target``/``op`` (when set) match the event's target and operation.
    Among matching events, the rule skips the first ``after``, then fires
    with ``probability`` (seeded, deterministic), at most ``count`` times.
    """

    kind: str
    #: Node id, ``"host:port"`` address string, or ``None`` for any.
    target: str | None = None
    #: OpCode name (``"INSERT"``) or ``None`` for any operation.
    op: str | None = None
    #: Skip this many matching events before the rule becomes eligible.
    after: int = 0
    #: Maximum number of firings (``None`` = unlimited).
    count: int | None = None
    #: Deterministic firing probability over eligible events.
    probability: float = 1.0
    #: Seconds of injected latency (DELAY / STALL).
    delay: float = 0.0
    #: Simulated-time instant for scheduled faults (CRASH in the DES).
    at_time: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")

    def matches(self, target: str | None, op: str | None) -> bool:
        if self.target is not None and self.target != target:
            return False
        if self.op is not None and self.op != op:
            return False
        return True


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as appended to :attr:`FaultPlan.trace`."""

    kind: str
    target: str | None
    op: str | None
    #: Per-rule sequence number of the matching event that fired.
    n: int
    rule_index: int

    def key(self) -> tuple:
        return (self.kind, self.target, self.op, self.n, self.rule_index)


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    Thread-safe: counters and the trace are guarded by one lock, so the
    same plan can back a multi-threaded socket deployment (determinism
    then holds per-rule, to the extent the event order itself is
    deterministic — single-client runs are fully reproducible).
    """

    def __init__(self, seed: int = 0, rules: list[FaultRule] | None = None):
        self.seed = seed
        self.rules: list[FaultRule] = list(rules or [])
        self.trace: list[FaultRecord] = []
        self._lock = threading.Lock()
        #: Matching-event counter per rule index.
        self._matches: dict[int, int] = {}
        #: Firing counter per rule index.
        self._fired: dict[int, int] = {}
        #: Targets (node ids and/or address strings) currently crashed.
        self._crashed: set[str] = set()

    # -- construction ----------------------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    @classmethod
    def message_chaos(
        cls,
        seed: int,
        *,
        drop: float = 0.0,
        delay: float = 0.0,
        delay_seconds: float = 0.0,
        duplicate: float = 0.0,
        reset: float = 0.0,
        target: str | None = None,
    ) -> "FaultPlan":
        """A plan injecting background message-level chaos at the given
        per-message probabilities."""
        plan = cls(seed)
        if drop:
            plan.add(FaultRule(FaultKind.DROP, target=target, probability=drop))
        if delay:
            plan.add(
                FaultRule(
                    FaultKind.DELAY,
                    target=target,
                    probability=delay,
                    delay=delay_seconds,
                )
            )
        if duplicate:
            plan.add(
                FaultRule(FaultKind.DUPLICATE, target=target, probability=duplicate)
            )
        if reset:
            plan.add(FaultRule(FaultKind.RESET, target=target, probability=reset))
        return plan

    @classmethod
    def overload(
        cls,
        seed: int,
        *,
        target: str | None = None,
        stall_s: float = 0.05,
        probability: float = 0.35,
    ) -> "FaultPlan":
        """An overloaded (slow, not dead) server: a fraction of round
        trips to *target* complete *stall_s* late, emulating queueing
        delay.  Exercises admission control / RETRY_LATER handling and
        the detector's ability to not declare a slow node dead."""
        plan = cls(seed)
        plan.add(
            FaultRule(
                FaultKind.STALL,
                target=target,
                probability=probability,
                delay=stall_s,
            )
        )
        return plan

    @classmethod
    def flapping(
        cls,
        seed: int,
        *,
        target: str | None = VICTIM_TARGET,
        period: int = 40,
        burst: int = 8,
        cycles: int = 6,
    ) -> "FaultPlan":
        """A flapping node: every *period* matching messages, the next
        *burst* round trips to *target* are dropped, for *cycles* cycles.
        The default target is the :data:`VICTIM_TARGET` sentinel, which
        the chaos harness resolves to its kill victim's addresses.
        Exercises the circuit breaker's open → half-open → closed loop —
        the client must both suspect the node quickly and rediscover it
        once the burst passes."""
        plan = cls(seed)
        for k in range(cycles):
            plan.add(
                FaultRule(
                    FaultKind.DROP,
                    target=target,
                    after=k * period,
                    count=burst,
                )
            )
        return plan

    # -- deterministic decisions ------------------------------------------

    def _chance(self, rule_index: int, n: int) -> float:
        """Uniform [0,1) value pure in ``(seed, rule_index, n)``."""
        mixed = (self.seed * 1_000_003 + rule_index) * 2_147_483_647 + n
        return random.Random(mixed).random()

    def _consider(
        self, rule_index: int, rule: FaultRule, target: str | None, op: str | None
    ) -> FaultRecord | None:
        """Advance *rule*'s counters for one matching event; return the
        record if it fires.  Caller holds the lock."""
        n = self._matches.get(rule_index, 0)
        self._matches[rule_index] = n + 1
        if n < rule.after:
            return None
        fired = self._fired.get(rule_index, 0)
        if rule.count is not None and fired >= rule.count:
            return None
        if rule.probability < 1.0 and self._chance(rule_index, n) >= rule.probability:
            return None
        self._fired[rule_index] = fired + 1
        record = FaultRecord(rule.kind, target, op, n, rule_index)
        self.trace.append(record)
        return record

    def message_faults(
        self, *, target: str | None = None, op: str | None = None
    ) -> list[tuple[FaultRecord, FaultRule]]:
        """Decide which message-level faults hit one send attempt.

        *target* is an address string or node id; *op* an OpCode name.
        Returns ``(record, rule)`` pairs for every rule that fired.
        """
        hits: list[tuple[FaultRecord, FaultRule]] = []
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.kind not in FaultKind.MESSAGE_KINDS:
                    continue
                if rule.at_time is not None:
                    continue  # scheduled rules are enacted by the harness
                if not rule.matches(target, op):
                    continue
                record = self._consider(index, rule, target, op)
                if record is not None:
                    hits.append((record, rule))
        return hits

    def file_fault(self, kind: str, *, target: str | None = None) -> FaultRule | None:
        """Decide one file-level fault event (an ``fsync`` call, a crash
        tearing the tail).  Returns the firing rule or ``None``."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.kind != kind:
                    continue
                if not rule.matches(target, None):
                    continue
                record = self._consider(index, rule, target, None)
                if record is not None:
                    return rule
        return None

    # -- crash bookkeeping -------------------------------------------------

    def scheduled_crashes(self) -> list[tuple[float, str]]:
        """``(at_time, target)`` for every scheduled CRASH rule, sorted."""
        out = [
            (rule.at_time, rule.target)
            for rule in self.rules
            if rule.kind == FaultKind.CRASH
            and rule.at_time is not None
            and rule.target is not None
        ]
        return sorted(out)

    def crash_target(self, *targets: str) -> None:
        """Record that *targets* (node id and/or address strings) are down.

        The harness calls this when it enacts a crash (kills a server,
        removes a sim instance); transports then refuse to reach them.
        """
        with self._lock:
            for target in targets:
                if target not in self._crashed:
                    self._crashed.add(target)
                    self.trace.append(
                        FaultRecord(FaultKind.CRASH, target, None, 0, -1)
                    )

    def record_external(self, kind: str, target: str) -> None:
        """Append a harness-enacted fault to the trace without touching
        transport state (e.g. a shard kill the supervisor will undo)."""
        with self._lock:
            self.trace.append(FaultRecord(kind, target, None, 0, -1))

    def revive_target(self, *targets: str) -> None:
        with self._lock:
            for target in targets:
                self._crashed.discard(target)

    def is_crashed(self, *candidates: str | None) -> bool:
        with self._lock:
            return any(c in self._crashed for c in candidates if c is not None)

    # -- replay verification ----------------------------------------------

    def trace_digest(self) -> str:
        """Stable digest of the injected fault sequence (for replay
        assertions: same seed + same run => same digest)."""
        h = hashlib.sha256()
        with self._lock:
            for record in self.trace:
                h.update(repr(record.key()).encode())
        return h.hexdigest()[:16]

    def trace_keys(self) -> list[tuple]:
        with self._lock:
            return [record.key() for record in self.trace]


def resolve_victim_rules(plan, membership, victim: str) -> None:
    """Rewrite rules targeting :data:`VICTIM_TARGET` to *victim*'s
    concrete instance addresses.

    Must run before any traffic consults the plan: rules are replaced
    in place (preserving rule indices and so the deterministic firing
    schedule), with extra per-address copies appended at the end.
    """
    addresses = [
        str(inst.address) for inst in membership.instances_on_node(victim)
    ]
    if not addresses:
        return
    extra = []
    for i, rule in enumerate(plan.rules):
        if rule.target == VICTIM_TARGET:
            plan.rules[i] = replace(rule, target=addresses[0])
            extra.extend(replace(rule, target=a) for a in addresses[1:])
    plan.rules.extend(extra)
