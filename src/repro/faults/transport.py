"""Fault-injecting wrapper around any client transport.

:class:`FaultyClientTransport` sits between an operation driver and a
real (TCP/UDP/local) transport and applies a :class:`~repro.faults.plan.FaultPlan`
to every send:

* ``DROP`` — the request is swallowed; the caller waits out its timeout
  (exactly what a lost packet looks like from the client side).
* ``DELAY`` / ``STALL`` — the round trip completes, late.
* ``DUPLICATE`` — the message is transmitted twice (the server-side UDP
  dedup cache and idempotent TCP handling absorb the copy).
* ``RESET`` — the attempt fails fast, like ``ECONNRESET``, and the
  cached connection to the target is evicted.
* crashed targets (``plan.crash_target``) behave as black holes.

The wrapper is transport-agnostic, so the same plan drives faults over
loopback sockets and the in-process local network.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..core.membership import Address
from ..core.protocol import Request, Response
from ..net.transport import ClientTransport
from .plan import FaultKind, FaultPlan


@dataclass
class FaultyTransportStats:
    sends: int = 0
    drops: int = 0
    delays: int = 0
    duplicates: int = 0
    resets: int = 0
    crash_blackholes: int = 0


class FaultyClientTransport(ClientTransport):
    """Applies *plan* to every message crossing *inner*."""

    def __init__(
        self,
        inner: ClientTransport,
        plan: FaultPlan,
        *,
        sleep: Callable[[float], None] = time.sleep,
        max_drop_wait: float = 0.5,
    ):
        self.inner = inner
        self.plan = plan
        # Batch planning chunks against the real transport's limit even
        # when wrapped (a faulty UDP client still carries datagrams).
        self.max_request_bytes = inner.max_request_bytes
        self.stats = FaultyTransportStats()
        self._sleep = sleep
        #: Cap on how long a DROP makes the caller actually wait — lost
        #: messages must look like timeouts, but tests should not pay
        #: multi-second sleeps for them.
        self.max_drop_wait = max_drop_wait

    # ------------------------------------------------------------------

    def roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        self.stats.sends += 1
        if self.plan.is_crashed(str(address), address.host):
            self.stats.crash_blackholes += 1
            self._sleep(min(timeout, self.max_drop_wait))
            return None
        duplicate = False
        extra_delay = 0.0
        for record, rule in self.plan.message_faults(
            target=str(address), op=request.op.name
        ):
            if rule.kind == FaultKind.DROP:
                self.stats.drops += 1
                self._sleep(min(timeout, self.max_drop_wait))
                return None
            if rule.kind == FaultKind.RESET:
                self.stats.resets += 1
                self.inner.evict(address)
                return None
            if rule.kind in (FaultKind.DELAY, FaultKind.STALL):
                self.stats.delays += 1
                extra_delay += rule.delay
            elif rule.kind == FaultKind.DUPLICATE:
                self.stats.duplicates += 1
                duplicate = True
        if extra_delay:
            self._sleep(extra_delay)
        if duplicate:
            # The duplicated copy reaches the server too; its response is
            # discarded (the original's wins), matching a repeated datagram.
            self.inner.roundtrip(address, request, timeout)
        return self.inner.roundtrip(address, request, timeout)

    def send_oneway(self, address: Address, request: Request) -> None:
        self.stats.sends += 1
        if self.plan.is_crashed(str(address), address.host):
            self.stats.crash_blackholes += 1
            return
        duplicate = False
        extra_delay = 0.0
        for record, rule in self.plan.message_faults(
            target=str(address), op=request.op.name
        ):
            if rule.kind == FaultKind.DROP:
                self.stats.drops += 1
                return
            if rule.kind == FaultKind.RESET:
                self.stats.resets += 1
                self.inner.evict(address)
                return
            if rule.kind in (FaultKind.DELAY, FaultKind.STALL):
                self.stats.delays += 1
                extra_delay += rule.delay
            elif rule.kind == FaultKind.DUPLICATE:
                self.stats.duplicates += 1
                duplicate = True
        if extra_delay:
            self._sleep(extra_delay)
        self.inner.send_oneway(address, request)
        if duplicate:
            self.inner.send_oneway(address, request)

    def evict(self, address: Address) -> None:
        self.inner.evict(address)

    def close(self) -> None:
        self.inner.close()
