"""Operation-history capture for consistency verification.

A :class:`HistoryRecorder` logs every client operation as a timestamped
*interval* — ``(client_id, op, key, value, t_call, t_return, status)``
— which is exactly the input a linearizability checker needs: two
operations are concurrent iff their intervals overlap, and only the
real-time order between non-overlapping intervals constrains the
allowed linearizations (Herlihy & Wing).

Design constraints:

* **Negligible overhead when disabled.** The hook in
  :class:`repro.api.ZHT` is a single ``is None`` check per operation;
  nothing is allocated, no clock is read.
* **Transport-agnostic.** The recorder hangs off the client handle, so
  the same capture path covers local, TCP, UDP, and (via an injectable
  ``clock``) the discrete-event simulator, where timestamps are
  simulated seconds (``env.now``).
* **Replayable artifact.** Events serialize to JSONL (one event per
  line, latin-1-escaped bytes) so a failing run's history can be
  shipped as a CI artifact and re-checked offline with
  ``python -m repro verify --check PATH``.

The ``ZHT_HISTORY=path`` environment hook attaches one process-global
JSONL recorder to every :class:`~repro.api.ZHT` client constructed in
the process — which is how the chaos harness (``python -m repro chaos``)
records without any code knowing about it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

#: Terminal outcome of one operation interval.
STATUS_OK = "ok"  #: definite success (effect applied / value returned)
STATUS_NOTFOUND = "notfound"  #: definite miss (lookup/remove of absent key)
STATUS_FAIL = "fail"  #: no definite response — the op MAY have applied


@dataclass(frozen=True)
class HistoryEvent:
    """One operation's invocation/response interval."""

    client_id: str
    op: str  #: "insert" | "lookup" | "remove" | "append"
    key: bytes
    value: bytes  #: argument value (mutations) — empty for lookups
    t_call: float
    t_return: float
    status: str  #: STATUS_OK | STATUS_NOTFOUND | STATUS_FAIL
    #: Value the operation returned (lookups only).
    result: bytes = b""
    #: Replica-chain position that served the final attempt (0 = owner,
    #: 1 = strongly-consistent secondary, >=2 = asynchronous replica).
    replica_index: int = 0
    #: Process-unique monotonically increasing event id.
    seq: int = 0

    @property
    def definite(self) -> bool:
        """The client saw a response — the effect definitely happened."""
        return self.status != STATUS_FAIL

    def to_json(self) -> str:
        return json.dumps(
            {
                "client": self.client_id,
                "op": self.op,
                "key": self.key.decode("latin-1"),
                "value": self.value.decode("latin-1"),
                "t_call": self.t_call,
                "t_return": self.t_return,
                "status": self.status,
                "result": self.result.decode("latin-1"),
                "replica_index": self.replica_index,
                "seq": self.seq,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "HistoryEvent":
        d = json.loads(line)
        return cls(
            client_id=d["client"],
            op=d["op"],
            key=d["key"].encode("latin-1"),
            value=d["value"].encode("latin-1"),
            t_call=d["t_call"],
            t_return=d["t_return"],
            status=d["status"],
            result=d.get("result", "").encode("latin-1"),
            replica_index=d.get("replica_index", 0),
            seq=d.get("seq", 0),
        )


class HistoryRecorder:
    """Thread-safe event sink shared by all clients of one run.

    Events accumulate in memory (for the in-run checker) and, when
    *path* is given, are appended to a JSONL file as they happen, so a
    crashed run still leaves a usable artifact behind.
    """

    def __init__(
        self,
        path: str | None = None,
        *,
        clock=time.monotonic,
        fresh: bool = False,
    ):
        self.path = path
        self.clock = clock
        self._lock = threading.Lock()
        self._events: list[HistoryEvent] = []
        self._seq = 0
        # Append by default so several recorders (e.g. multiple client
        # processes sharing one ZHT_HISTORY path) interleave instead of
        # truncating each other; one-shot runs pass fresh=True so a
        # stale artifact from a previous run cannot poison the check.
        mode = "w" if fresh else "a"
        self._file = open(path, mode, buffering=1) if path else None

    def now(self) -> float:
        return self.clock()

    def record(
        self,
        client_id: str,
        op: str,
        key: bytes,
        value: bytes,
        t_call: float,
        t_return: float,
        status: str,
        *,
        result: bytes = b"",
        replica_index: int = 0,
    ) -> HistoryEvent:
        with self._lock:
            self._seq += 1
            event = HistoryEvent(
                client_id,
                op,
                bytes(key),
                bytes(value),
                t_call,
                t_return,
                status,
                result=bytes(result),
                replica_index=replica_index,
                seq=self._seq,
            )
            self._events.append(event)
            if self._file is not None:
                self._file.write(event.to_json() + "\n")
        return event

    def events(self) -> list[HistoryEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "HistoryRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def save_history(events: list[HistoryEvent], path: str) -> None:
    with open(path, "w") as f:
        for event in events:
            f.write(event.to_json() + "\n")


def load_history(path: str) -> list[HistoryEvent]:
    events = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(HistoryEvent.from_json(line))
    return events


# ---------------------------------------------------------------------------
# ZHT_HISTORY environment hook
# ---------------------------------------------------------------------------

_env_lock = threading.Lock()
_env_recorder: HistoryRecorder | None = None
_env_path: str | None = None


def recorder_from_env() -> HistoryRecorder | None:
    """The process-global recorder named by ``$ZHT_HISTORY``, if set.

    Every :class:`repro.api.ZHT` client constructed while the variable
    is set shares this recorder, so existing drivers (the chaos harness,
    the demo command, user scripts) record histories with zero code
    changes.  Returns ``None`` — the no-overhead path — when unset.
    """
    global _env_recorder, _env_path
    path = os.environ.get("ZHT_HISTORY")
    if not path:
        return None
    with _env_lock:
        if _env_recorder is None or _env_path != path:
            _env_recorder = HistoryRecorder(path)
            _env_path = path
        return _env_recorder
