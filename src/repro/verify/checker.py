"""History-based consistency checker.

Verifies the paper's §III.J consistency model against a recorded
operation history (see :mod:`repro.verify.history`):

* **Per-key linearizability** for ``insert``/``lookup``/``remove`` —
  a Wing & Gong-style search for a valid linearization of each key's
  interval history against a register model.  ZHT keys are independent
  (a mutation touches exactly one key's store entry), so the global
  check partitions into per-key checks, which is what makes it
  tractable: the search is exponential in per-key *concurrency*, not in
  history length.
* **Append multiset containment** for concurrent ``append`` — the
  paper's lock-free concurrent-modification primitive promises that
  every acknowledged fragment lands in the value exactly once, in
  *some* order, with no interleaving corruption.  Order-freedom makes a
  full linearization search both intractable (n! append orders produce
  n! distinct states, defeating memoization) and unnecessary: the
  checker instead verifies the final value tokenizes into the acked
  fragments and that every mid-run read is a plausible prefix.
* **Bounded staleness** for reads served by asynchronous replicas
  (chain position >= 2): the returned value must have been current at
  some instant no more than ``staleness_bound`` seconds before the
  read's invocation.  Reads served by the primary or the
  strongly-consistent secondary participate in the linearizability
  check instead.

Operations that returned no response (``status == "fail"``: timeout,
exhausted retries) *may or may not* have taken effect; the checker
treats them as optional operations whose effect can linearize at any
point after their invocation — the standard "info op" treatment
(Knossos/Porcupine do the same).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..obs import REGISTRY
from .history import (
    STATUS_FAIL,
    STATUS_NOTFOUND,
    STATUS_OK,
    HistoryEvent,
)

_INF = float("inf")

#: Register-model operations (participate in the linearization search).
REGISTER_OPS = frozenset({"insert", "lookup", "remove"})


@dataclass
class KeyReport:
    """Verdict for one key's sub-history."""

    key: bytes
    model: str  #: "register" | "append"
    ok: bool
    violations: list[str] = field(default_factory=list)
    #: Minimal violating sub-history (greedy-shrunk): removing any one
    #: event from this list makes the remaining history linearizable.
    minimal: list[HistoryEvent] = field(default_factory=list)
    #: DFS states explored (register model).
    states: int = 0
    #: The search hit its node budget before deciding; not a violation.
    inconclusive: bool = False

    def describe(self) -> list[str]:
        lines = [f"key {self.key!r} [{self.model}]: " + "; ".join(self.violations)]
        for ev in self.minimal:
            lines.append(
                f"    {ev.client_id} {ev.op}({ev.key!r}"
                + (f", {ev.value!r}" if ev.value else "")
                + f") -> {ev.status}"
                + (f" {ev.result!r}" if ev.result else "")
                + f"  @[{ev.t_call:.6f}, {ev.t_return:.6f}]"
                + (f" replica={ev.replica_index}" if ev.replica_index else "")
            )
        return lines


@dataclass
class CheckReport:
    """Verdict for a whole history."""

    ok: bool = True
    events_total: int = 0
    keys_checked: int = 0
    register_keys: int = 0
    append_keys: int = 0
    stale_reads_checked: int = 0
    failed_ops: int = 0
    states_explored: int = 0
    elapsed_s: float = 0.0
    #: Per-key reports that found violations.
    violations: list[KeyReport] = field(default_factory=list)
    #: Keys whose search exhausted its budget (reported, not failed).
    inconclusive_keys: list[bytes] = field(default_factory=list)

    def first_violation(self) -> KeyReport | None:
        return self.violations[0] if self.violations else None

    def summary_lines(self) -> list[str]:
        lines = [
            f"history: {self.events_total} events over {self.keys_checked} "
            f"keys ({self.register_keys} register, {self.append_keys} "
            f"append), {self.failed_ops} indefinite ops",
            f"checker: {self.states_explored} states explored, "
            f"{self.stale_reads_checked} bounded-staleness reads, "
            f"{self.elapsed_s:.3f}s",
        ]
        if self.inconclusive_keys:
            lines.append(
                f"inconclusive (budget exhausted): "
                f"{len(self.inconclusive_keys)} key(s)"
            )
        if self.ok:
            lines.append("verdict: LINEARIZABLE (no violations)")
        else:
            lines.append(f"verdict: VIOLATION ({len(self.violations)} key(s))")
            for report in self.violations:
                lines.extend("  " + l for l in report.describe())
        return lines


# ---------------------------------------------------------------------------
# Register model
# ---------------------------------------------------------------------------


def _step(state: bytes | None, ev: HistoryEvent):
    """Apply *ev* to register *state*.

    Returns ``(consistent, new_state)``: whether the event's recorded
    outcome is consistent with linearizing it at this point, and the
    state afterwards.  Indefinite events have no recorded outcome, so
    they are always consistent — choosing one simply applies its effect.
    """
    op = ev.op
    if op == "insert":
        return (not ev.definite or ev.status == STATUS_OK, ev.value)
    if op == "append":
        return (not ev.definite or ev.status == STATUS_OK, (state or b"") + ev.value)
    if op == "remove":
        if state is None:
            return (not ev.definite or ev.status == STATUS_NOTFOUND, None)
        return (not ev.definite or ev.status == STATUS_OK, None)
    if op == "lookup":
        if state is None:
            ok = ev.status == STATUS_NOTFOUND
        else:
            ok = ev.status == STATUS_OK and ev.result == state
        return (ok, state)
    return (False, state)


def _linearize_register(
    events: list[HistoryEvent], budget: int
) -> tuple[bool, int, bool]:
    """Search for a valid linearization of one key's register history.

    Wing & Gong's algorithm: repeatedly pick a *minimal* operation (one
    whose invocation precedes no other pending operation's response),
    apply it to the model, and recurse; memoize on
    ``(remaining-set, state)`` so permutations of concurrent commuting
    prefixes are explored once.

    Indefinite ops (status ``fail``) use response time +inf — their
    effect may land arbitrarily late — and are optional: the search
    succeeds when every *definite* operation has been linearized.

    Returns ``(linearizable, states_explored, budget_exhausted)``.
    """
    # Indefinite lookups constrain nothing (no outcome to validate, no
    # effect on state): drop them up front.
    events = [e for e in events if e.definite or e.op != "lookup"]
    n = len(events)
    if n == 0:
        return True, 0, False
    eff_ret = [e.t_return if e.definite else _INF for e in events]
    definite_mask = 0
    for i, e in enumerate(events):
        if e.definite:
            definite_mask |= 1 << i
    all_mask = (1 << n) - 1

    visited: set[tuple[int, bytes | None]] = set()
    states = 0
    exhausted = False

    def dfs(remaining: int, state: bytes | None) -> bool:
        nonlocal states, exhausted
        if not (remaining & definite_mask):
            return True
        key = (remaining, state)
        if key in visited:
            return False
        visited.add(key)
        states += 1
        if states > budget:
            exhausted = True
            return False
        # The earliest response among pending definite ops bounds which
        # ops may linearize next: nothing invoked after it can precede it.
        min_ret = _INF
        rem = remaining & definite_mask
        while rem:
            i = (rem & -rem).bit_length() - 1
            if eff_ret[i] < min_ret:
                min_ret = eff_ret[i]
            rem &= rem - 1
        rem = remaining
        while rem:
            i = (rem & -rem).bit_length() - 1
            rem &= rem - 1
            ev = events[i]
            if ev.t_call > min_ret:
                continue
            consistent, new_state = _step(state, ev)
            if not consistent:
                continue
            if dfs(remaining & ~(1 << i), new_state):
                return True
            if exhausted:
                return False
        return False

    ok = dfs(all_mask, None)
    return ok, states, exhausted


def _shrink_register(
    events: list[HistoryEvent], budget: int, max_len: int = 64
) -> list[HistoryEvent]:
    """Greedy ddmin-style shrink of a non-linearizable sub-history:
    drop every event whose removal keeps the history non-linearizable.
    The result is 1-minimal — putting back any single dropped event is
    unnecessary, and removing any kept event makes it pass."""
    if len(events) > max_len:
        events = events[-max_len:]
        ok, _, _ = _linearize_register(events, budget)
        if ok:  # the tail alone passes; shrinking needs the full set
            return events
    kept = list(events)
    # Try dropping reads before writes: a greedy shrink that removes a
    # write first can leave an orphaned read ("value never written") as
    # the core, which is minimal but hides the actual conflict.  Reads
    # first converges on write + contradicting-read cores instead.
    for drop_ops in ({"lookup"}, {"insert", "remove", "append"}):
        i = 0
        while i < len(kept):
            if kept[i].op not in drop_ops:
                i += 1
                continue
            candidate = kept[:i] + kept[i + 1 :]
            ok, _, exhausted = _linearize_register(candidate, budget)
            if not ok and not exhausted:
                kept = candidate
            else:
                i += 1
    return kept


# ---------------------------------------------------------------------------
# Append model
# ---------------------------------------------------------------------------


def tokenize_fragments(
    value: bytes, fragments: list[bytes], *, node_budget: int = 100_000
) -> list[bytes] | None:
    """Split *value* into a sequence drawn from *fragments*, or ``None``.

    Backtracking parse (fragments may be ambiguous prefixes of each
    other); each fragment may be used any number of times — the caller
    applies count constraints to the returned sequence.
    """
    frags = sorted(set(f for f in fragments if f), key=len, reverse=True)
    dead: set[int] = set()
    nodes = 0

    def parse(pos: int, acc: list[bytes]) -> list[bytes] | None:
        nonlocal nodes
        if pos == len(value):
            return list(acc)
        if pos in dead:
            return None
        nodes += 1
        if nodes > node_budget:
            return None
        for frag in frags:
            if value.startswith(frag, pos):
                acc.append(frag)
                out = parse(pos + len(frag), acc)
                if out is not None:
                    return out
                acc.pop()
        dead.add(pos)
        return None

    return parse(0, [])


#: Sentinel for "the post-quiesce value was not observed" — offline
#: re-checks of a saved history where no read-back can be issued.  The
#: containment checks are skipped; the read-ordering checks still run.
UNKNOWN_FINAL = object()


def check_append_key(
    key: bytes,
    events: list[HistoryEvent],
    final_value,
    *,
    strict_once: bool = True,
) -> KeyReport:
    """Verify one append-only key.

    *final_value* is the value read back after quiesce (``None`` if the
    key was absent, :data:`UNKNOWN_FINAL` if no read-back is available).
    ``strict_once=False`` relaxes "exactly once" to "at least once" for
    acked fragments — required when client retries are possible (a
    timed-out append whose first attempt actually applied is re-sent,
    legitimately landing the fragment twice under ZHT's at-least-once
    mutation semantics).
    """
    report = KeyReport(key, "append", True)
    appends = [e for e in events if e.op == "append"]
    acked = [e for e in appends if e.status == STATUS_OK]
    failed = [e for e in appends if e.status == STATUS_FAIL]
    reads = [e for e in events if e.op == "lookup" and e.definite]
    unknown_final = final_value is UNKNOWN_FINAL

    known = [e.value for e in appends]
    if not unknown_final:
        if final_value is None:
            if acked:
                report.ok = False
                report.violations.append(
                    f"{len(acked)} acked append(s) but key absent after "
                    f"quiesce"
                )
                report.minimal = acked[:4]
            return report

        tokens = tokenize_fragments(final_value, known)
        if tokens is None:
            report.ok = False
            report.violations.append(
                f"final value is not a concatenation of appended fragments "
                f"(interleaving corruption): {final_value!r}"
            )
            report.minimal = appends[:8]
            return report
        counts: dict[bytes, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        for e in acked:
            got = counts.get(e.value, 0)
            want = "exactly once" if strict_once else "at least once"
            if got == 0 or (strict_once and got != 1):
                report.ok = False
                report.violations.append(
                    f"acked fragment {e.value!r} appears {got}x in final "
                    f"value, want {want}"
                )
                report.minimal.append(e)
        # Anything in the final value that is not an acked or indefinite
        # fragment would have been caught by tokenize (unknown bytes);
        # here catch over-application of *acked* fragments in strict mode
        # only — indefinite fragments may legitimately appear 0..N times.
        acked_values = {e.value for e in acked}
        failed_values = {e.value for e in failed}
        for token, got in counts.items():
            if token not in acked_values and token not in failed_values:
                report.ok = False
                report.violations.append(
                    f"final value contains fragment {token!r} that no "
                    f"append in the history produced"
                )
    else:
        # No final value: reads must still be totally prefix-ordered
        # (append-only values grow monotonically, so any two observed
        # values must be prefixes of one another).
        by_len = sorted(
            (r.result for r in reads if r.status == STATUS_OK), key=len
        )
        for shorter, longer in zip(by_len, by_len[1:]):
            if not longer.startswith(shorter):
                report.ok = False
                report.violations.append(
                    f"reads {shorter!r} and {longer!r} are not "
                    f"prefix-ordered (fragments reordered between reads)"
                )

    # Mid-run reads: append-only values grow monotonically, so in any
    # linearization every read is a prefix of the final value; it must
    # contain every fragment acked before the read was invoked and no
    # fragment invoked after the read returned.
    for r in reads:
        got = r.result if r.status == STATUS_OK else b""
        if not unknown_final and not final_value.startswith(got):
            report.ok = False
            report.violations.append(
                f"read {got!r} is not a prefix of the final value "
                f"(fragments reordered after being observed)"
            )
            report.minimal.append(r)
            continue
        for e in acked:
            if e.t_return < r.t_call and e.value not in got:
                report.ok = False
                report.violations.append(
                    f"read at t={r.t_call:.6f} misses fragment {e.value!r} "
                    f"acked at t={e.t_return:.6f} (lost/stale append)"
                )
                report.minimal.extend([e, r])
        for e in appends:
            if e.t_call > r.t_return and e.value and e.value in got:
                report.ok = False
                report.violations.append(
                    f"read returned fragment {e.value!r} before its append "
                    f"was invoked (time travel)"
                )
                report.minimal.extend([r, e])
    # One lost update produces a violation per (read, fragment) pair;
    # keep the report readable by deduplicating the witness events and
    # capping the violation list.
    if len(report.violations) > 6:
        dropped = len(report.violations) - 6
        report.violations = report.violations[:6]
        report.violations.append(f"... and {dropped} more violation(s)")
    seen: set[int] = set()
    report.minimal = [
        e for e in report.minimal if not (e.seq in seen or seen.add(e.seq))
    ][:12]
    return report


# ---------------------------------------------------------------------------
# Bounded staleness
# ---------------------------------------------------------------------------


def _check_stale_reads(
    strong: list[HistoryEvent],
    stale_reads: list[HistoryEvent],
    bound: float,
) -> list[str]:
    """Check async-replica reads of one key against *bound* seconds.

    A write's value is *possibly current* from its invocation until the
    response time of the earliest write forced to linearize after it
    (one invoked after the first write's response).  A stale read is
    admissible iff its returned value was possibly current at some
    instant in ``[t_call - bound, t_return]``.
    """
    writes = [
        e
        for e in strong
        if e.op in ("insert", "remove") and e.status != STATUS_NOTFOUND
    ]
    definite_writes = [e for e in writes if e.definite]

    def retire_time(w: HistoryEvent) -> float:
        if not w.definite:
            return _INF  # effect may land arbitrarily late
        later = [x.t_return for x in definite_writes if x.t_call >= w.t_return]
        return min(later, default=_INF)

    #: (value-or-None-for-absent, install_time, latest-possible retire).
    versions: list[tuple[bytes | None, float, float]] = [
        (None, -_INF, min((w.t_return for w in definite_writes), default=_INF))
    ]
    for w in writes:
        value = w.value if w.op == "insert" else None
        versions.append((value, w.t_call, retire_time(w)))

    violations = []
    for r in stale_reads:
        want = r.result if r.status == STATUS_OK else None
        window_lo = r.t_call - bound
        admissible = any(
            value == want and install <= r.t_return and window_lo < retire
            for value, install, retire in versions
        )
        if not admissible:
            lags = [
                r.t_call - retire
                for value, _install, retire in versions
                if value == want and retire < _INF
            ]
            lag = f" (lag >= {min(lags):.6f}s)" if lags else ""
            shown = "absent" if want is None else repr(want)
            violations.append(
                f"stale read at t={r.t_call:.6f} on replica "
                f"{r.replica_index} returned {shown}, not current within "
                f"the {bound}s staleness bound{lag}"
            )
    return violations


def _check_stale_append_reads(
    strong: list[HistoryEvent],
    stale_reads: list[HistoryEvent],
    bound: float,
    final_value,
) -> list[str]:
    """Bounded staleness for append-only keys.

    Register staleness is version-based; append-only values instead grow
    monotonically, and replication applies fragments in the primary's
    serialization order.  A replica read lagging by at most *bound*
    seconds may therefore miss *recent* fragments, but it must

    * contain every fragment acked more than *bound* seconds before the
      read was invoked (anything older has had the whole bound to reach
      the replica);
    * not contain a fragment whose append had not even been invoked by
      the time the read returned (staleness cannot show the future);
    * still be a prefix of the final value when one is known — a lagged
      replica is *behind* the primary, never differently ordered.
    """
    appends = [e for e in strong if e.op == "append"]
    acked = [e for e in appends if e.status == STATUS_OK]
    violations = []
    for r in stale_reads:
        got = r.result if r.status == STATUS_OK else b""
        if (
            isinstance(final_value, bytes)
            and got
            and not final_value.startswith(got)
        ):
            violations.append(
                f"stale read at t={r.t_call:.6f} on replica "
                f"{r.replica_index} returned {got!r}, not a prefix of the "
                f"final value (fragments reordered on the replica)"
            )
            continue
        for e in acked:
            if e.t_return < r.t_call - bound and e.value not in got:
                violations.append(
                    f"stale read at t={r.t_call:.6f} on replica "
                    f"{r.replica_index} misses fragment {e.value!r} acked "
                    f"at t={e.t_return:.6f}, beyond the {bound}s staleness "
                    f"bound (lag >= {r.t_call - e.t_return:.6f}s)"
                )
        for e in appends:
            if e.t_call > r.t_return and e.value and e.value in got:
                violations.append(
                    f"stale read at t={r.t_call:.6f} returned fragment "
                    f"{e.value!r} before its append was invoked "
                    f"(time travel)"
                )
    return violations


# ---------------------------------------------------------------------------
# Whole-history check
# ---------------------------------------------------------------------------


def final_values_from_history(
    events: list[HistoryEvent],
) -> dict[bytes, bytes | None]:
    """Recover post-run values from the history's own read-back events.

    The runner records its final strong read-back like any other
    operation, so a saved JSONL artifact is self-contained: for each key
    the latest definite primary/secondary lookup that started *after*
    every mutation of that key settled is its quiesced final value.
    Keys with no such lookup are omitted (their append checks fall back
    to :data:`UNKNOWN_FINAL`).
    """
    last_mutation: dict[bytes, float] = {}
    latest: dict[bytes, HistoryEvent] = {}
    for e in events:
        if e.op != "lookup":
            last_mutation[e.key] = max(
                last_mutation.get(e.key, -_INF), e.t_return
            )
        elif e.definite and e.replica_index < 2:
            cur = latest.get(e.key)
            if cur is None or e.t_call > cur.t_call:
                latest[e.key] = e
    return {
        key: (e.result if e.status == STATUS_OK else None)
        for key, e in latest.items()
        if e.t_call > last_mutation.get(key, -_INF)
    }


def check_history(
    events: list[HistoryEvent],
    *,
    final_values: dict[bytes, bytes | None] | None = None,
    staleness_bound: float | None = None,
    strict_append_once: bool = True,
    dfs_budget: int = 200_000,
) -> CheckReport:
    """Check a recorded history; returns a :class:`CheckReport`.

    *final_values* supplies each append-mode key's post-quiesce value
    (the runner's final strong read-back).  *staleness_bound* enables
    the bounded-staleness check for reads recorded with
    ``replica_index >= 2``; without it such reads are skipped entirely
    (they carry no strong-consistency guarantee to check).
    """
    t0 = time.perf_counter()
    report = CheckReport(events_total=len(events))
    final_values = final_values or {}

    by_key: dict[bytes, list[HistoryEvent]] = {}
    for ev in events:
        by_key.setdefault(ev.key, []).append(ev)
    report.keys_checked = len(by_key)
    report.failed_ops = sum(1 for e in events if not e.definite)

    for key in sorted(by_key):
        key_events = sorted(by_key[key], key=lambda e: (e.t_call, e.seq))
        # Async-replica reads are checked for bounded staleness, not
        # linearizability; primary/secondary events are the strong set.
        stale_reads = [
            e
            for e in key_events
            if e.op == "lookup" and e.replica_index >= 2 and e.definite
        ]
        stale_seqs = {e.seq for e in stale_reads}
        strong = [e for e in key_events if e.seq not in stale_seqs]

        ops = {e.op for e in strong}
        append_key = "append" in ops and not (ops - {"append", "lookup"})
        if append_key:
            report.append_keys += 1
            key_report = check_append_key(
                key,
                strong,
                final_values.get(key, UNKNOWN_FINAL),
                strict_once=strict_append_once,
            )
        else:
            report.register_keys += 1
            ok, states, exhausted = _linearize_register(strong, dfs_budget)
            report.states_explored += states
            key_report = KeyReport(key, "register", ok, states=states)
            if exhausted:
                key_report.ok = True
                key_report.inconclusive = True
                report.inconclusive_keys.append(key)
            elif not ok:
                key_report.violations.append(
                    "no valid linearization of this key's history"
                )
                key_report.minimal = _shrink_register(
                    [e for e in strong if e.definite or e.op != "lookup"],
                    dfs_budget,
                )

        if staleness_bound is not None and stale_reads:
            report.stale_reads_checked += len(stale_reads)
            if append_key:
                stale_violations = _check_stale_append_reads(
                    strong,
                    stale_reads,
                    staleness_bound,
                    final_values.get(key, UNKNOWN_FINAL),
                )
            else:
                stale_violations = _check_stale_reads(
                    strong, stale_reads, staleness_bound
                )
            if stale_violations:
                key_report.ok = False
                key_report.violations.extend(stale_violations)
                key_report.minimal.extend(stale_reads[:4])

        if not key_report.ok:
            report.violations.append(key_report)

    report.ok = not report.violations
    report.elapsed_s = time.perf_counter() - t0
    REGISTRY.counter("verify.events_checked").inc(len(events))
    REGISTRY.counter("verify.keys_checked").inc(report.keys_checked)
    REGISTRY.counter("verify.states_explored").inc(report.states_explored)
    REGISTRY.counter("verify.violations").inc(len(report.violations))
    return report
