"""Consistency verification: history capture + linearizability checking.

The paper's consistency claims (§III.J) — strongly consistent
primary/secondary, bounded-lag asynchronous tails — are *checked*, not
assumed, by this package:

* :mod:`~repro.verify.history` records every client operation as a
  timestamped invocation/response interval (negligible overhead when
  off; ``ZHT_HISTORY=path`` attaches a process-global JSONL recorder);
* :mod:`~repro.verify.checker` validates recorded histories — per-key
  Wing&Gong linearizability for insert/lookup/remove, multiset
  containment for concurrent appends, bounded staleness for async
  replica reads — and shrinks violations to a minimal sub-history;
* :mod:`~repro.verify.workload` generates deterministic seeded
  schedules (and synthetic valid histories for benchmarking);
* :mod:`~repro.verify.runner` composes them with the fault-injection
  harness into the ``python -m repro verify`` record → crash → recover
  → check loop, including deliberately broken replication modes that
  prove the checker actually detects violations.
"""

from .checker import (
    UNKNOWN_FINAL,
    CheckReport,
    KeyReport,
    check_append_key,
    check_history,
    final_values_from_history,
    tokenize_fragments,
)
from .history import (
    STATUS_FAIL,
    STATUS_NOTFOUND,
    STATUS_OK,
    HistoryEvent,
    HistoryRecorder,
    load_history,
    recorder_from_env,
    save_history,
)
from .runner import BACKENDS, MUTATIONS, VerifyReport, run_verify
from .workload import (
    VerifyOp,
    VerifySchedule,
    fragment,
    generate_schedule,
    synthesize_history,
)

__all__ = [
    "BACKENDS",
    "MUTATIONS",
    "CheckReport",
    "HistoryEvent",
    "HistoryRecorder",
    "KeyReport",
    "STATUS_FAIL",
    "STATUS_NOTFOUND",
    "STATUS_OK",
    "UNKNOWN_FINAL",
    "VerifyOp",
    "VerifyReport",
    "VerifySchedule",
    "check_append_key",
    "check_history",
    "final_values_from_history",
    "fragment",
    "generate_schedule",
    "load_history",
    "recorder_from_env",
    "run_verify",
    "save_history",
    "synthesize_history",
    "tokenize_fragments",
]
