"""End-to-end consistency verification (``python -m repro verify``).

One run drives the full record → crash → recover → check loop:

1. **record** — a seeded schedule (:func:`~repro.verify.workload.generate_schedule`)
   is executed by concurrent logical clients, each recording every
   operation's invocation/response interval into a shared
   :class:`~repro.verify.history.HistoryRecorder`;
2. **crash/recover** — with chaos enabled, one physical node is
   hard-killed mid-workload and later repaired by a manager, exactly as
   the chaos harness (:mod:`repro.faults.chaos`) does;
3. **read-back** — after quiesce every touched key gets a final strong
   read-back (this pins each append key's post-run value for the
   multiset check), and with ≥3 copies the async tail replicas are
   probed directly via :meth:`~repro.api.ZHT.lookup_at_replica`;
4. **check** — the history goes through the Wing&Gong linearizability /
   bounded-staleness checker (:mod:`repro.verify.checker`) and the
   verdict — including the first violating minimal sub-history — is
   reported.

The same runner executes over the in-process local network, TCP/UDP
loopback sockets, and the discrete-event simulator (timestamps are then
simulated seconds).

``mutation`` selects a deliberately broken replication mode — the
verification subsystem's self-test, proving the checker detects real
consistency bugs rather than vacuously passing:

* ``ack-unreplicated`` (:attr:`ZHTConfig.test_skip_secondary_sync`) —
  the owner acks mutations without writing the strongly-consistent
  secondary; a primary kill then loses acked data, which the register
  checker flags as a linearizability violation.
* ``stale-tail`` (:attr:`ZHTConfig.test_freeze_tail_replicas`) —
  replicas at chain position ≥2 drop updates, so tail reads lag
  unboundedly; flagged by the bounded-staleness checker.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..core.config import ReplicationMode, ZHTConfig
from ..core.errors import KeyNotFound, ZHTError
from ..core.protocol import OpCode
from ..faults.plan import FaultPlan
from ..faults.transport import FaultyClientTransport
from .checker import CheckReport, check_history
from .history import (
    STATUS_FAIL,
    STATUS_NOTFOUND,
    STATUS_OK,
    HistoryRecorder,
)
from .workload import generate_schedule

BACKENDS = ("local", "tcp", "udp", "sharded", "sim")
MUTATIONS = ("none", "ack-unreplicated", "stale-tail")

_OPCODES = {
    "insert": OpCode.INSERT,
    "lookup": OpCode.LOOKUP,
    "remove": OpCode.REMOVE,
    "append": OpCode.APPEND,
}


@dataclass
class VerifyReport:
    """Everything one verify run executed, recorded, and concluded."""

    backend: str
    nodes: int
    replicas: int
    seed: int
    mutation: str = "none"
    chaos: bool = False
    victim: str = ""
    ops_attempted: int = 0
    ops_acked: int = 0
    ops_failed: int = 0
    events_recorded: int = 0
    stale_probes: int = 0
    hot_cache: bool = False
    cache_hits: int = 0
    history_path: str | None = None
    elapsed_s: float = 0.0
    check: CheckReport | None = None

    @property
    def ok(self) -> bool:
        return self.check is not None and self.check.ok

    def summary_lines(self) -> list[str]:
        head = (
            f"backend={self.backend} nodes={self.nodes} "
            f"replicas={self.replicas} seed={self.seed} "
            f"chaos={'on' if self.chaos else 'off'}"
        )
        if self.mutation != "none":
            head += f" mutation={self.mutation}"
        if self.hot_cache:
            head += f" hot-cache=on ({self.cache_hits} hits)"
        lines = [
            head,
            f"workload: {self.ops_acked}/{self.ops_attempted} acked, "
            f"{self.ops_failed} failed, {self.events_recorded} events "
            f"recorded in {self.elapsed_s:.2f}s"
            + (
                f", {self.stale_probes} tail-replica probes"
                if self.stale_probes
                else ""
            ),
        ]
        if self.victim:
            lines.append(f"victim: {self.victim} (killed and repaired mid-run)")
        if self.history_path:
            lines.append(f"history artifact: {self.history_path}")
        if self.check is not None:
            lines.extend(self.check.summary_lines())
        return lines


def run_verify(
    backend: str = "local",
    *,
    ops: int = 400,
    seed: int = 0,
    clients: int = 4,
    nodes: int = 4,
    replicas: int = 1,
    chaos: bool = True,
    mutation: str = "none",
    history_path: str | None = None,
    staleness_bound: float = 0.25,
    hot_cache: bool = False,
    plan: FaultPlan | None = None,
    shards: int | None = None,
) -> VerifyReport:
    """Run one end-to-end verification scenario; returns the report.

    The workload for a given ``(seed, ops, clients)`` is deterministic;
    the interleaving is whatever the backend produces, which is exactly
    what the checker validates.  ``plan`` may layer message-level chaos
    (drops/delays/duplicates) on top of the node kill.

    ``hot_cache=True`` turns on the client-side hot-key value cache with
    an aggressively low heat threshold, so the run proves cache hits
    satisfy the bounded-staleness contract: hits are recorded as reads at
    chain position >= 2, the cache TTL is capped at half the staleness
    bound, and ``replicas`` is raised to 2 so the checker applies the
    bounded-staleness model.  (The sim backend drives client cores
    directly and has no value cache; hot-read spreading still applies.)
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}")
    if mutation not in MUTATIONS:
        raise ValueError(f"mutation must be one of {MUTATIONS}")
    mut_flags = {}
    if shards is not None:
        # Shard count per node — only meaningful for the sharded
        # backend, where it overrides the chaos default.
        mut_flags["num_shards"] = shards
    if hot_cache:
        mut_flags.update(
            hot_key_cache_size=256,
            # TTL well inside the bound: a served value is at most
            # TTL + replication-lag old, and the checker's window is
            # staleness_bound.
            hot_key_cache_ttl_s=min(0.1, staleness_bound / 2),
            hot_key_threshold=4,
            hot_read_spread=True,
        )
        replicas = max(replicas, 2)
    if mutation == "ack-unreplicated":
        # The bug only surfaces once the secondary serves reads, so the
        # scenario needs a replica chain and the mid-run kill.
        mut_flags["test_skip_secondary_sync"] = True
        replicas = max(replicas, 1)
        chaos = True
    elif mutation == "stale-tail":
        # Needs an async tail (chain position 2); repair would
        # re-replicate and mask the frozen tail, so chaos stays off.
        mut_flags["test_freeze_tail_replicas"] = True
        replicas = max(replicas, 2)
        chaos = False
    nodes = max(nodes, 3 if chaos else 1, replicas + 1)

    if backend == "sim":
        return _run_verify_sim(
            ops=ops,
            seed=seed,
            clients=clients,
            nodes=nodes,
            replicas=replicas,
            chaos=chaos,
            mutation=mutation,
            history_path=history_path,
            staleness_bound=staleness_bound,
            plan=plan,
            mut_flags=mut_flags,
            hot_cache=hot_cache,
        )
    return _run_verify_live(
        backend,
        ops=ops,
        seed=seed,
        clients=clients,
        nodes=nodes,
        replicas=replicas,
        chaos=chaos,
        mutation=mutation,
        history_path=history_path,
        staleness_bound=staleness_bound,
        plan=plan,
        mut_flags=mut_flags,
        hot_cache=hot_cache,
    )


# ---------------------------------------------------------------------------
# Live backends (local / tcp / udp)
# ---------------------------------------------------------------------------


def _run_verify_live(
    backend: str,
    *,
    ops: int,
    seed: int,
    clients: int,
    nodes: int,
    replicas: int,
    chaos: bool,
    mutation: str,
    history_path: str | None,
    staleness_bound: float,
    plan: FaultPlan | None,
    mut_flags: dict,
    hot_cache: bool = False,
) -> VerifyReport:
    from ..scenario.cluster import (
        build_cluster as _build_cluster,
        default_config as _default_config,
        kill_node as _kill,
        repair_node as _repair,
    )

    plan = plan or FaultPlan(seed)
    config = _default_config(backend, replicas).replace(**mut_flags)
    if backend == "udp":
        # Concurrent clients can overflow loopback UDP socket buffers;
        # with the chaos default of 2 strikes a burst of drops falsely
        # suspects a healthy owner and fails reads over to a replica
        # that never saw the writes — real (and detected!) weak
        # behavior, but not the scenario under test.  More strikes make
        # false suspicion rare while dead-node failover still works
        # (under the phi detector each timeout can accrue up to
        # ``suspicion_event_cap`` units, so the threshold is doubled
        # again to preserve the original two-real-timeouts intent).
        config = config.replace(failures_before_dead=8)
    schedule = generate_schedule(seed, ops, clients=clients)
    recorder = HistoryRecorder(history_path, fresh=True)
    report = VerifyReport(
        backend,
        nodes,
        replicas,
        seed,
        mutation=mutation,
        chaos=chaos,
        hot_cache=hot_cache,
        history_path=history_path,
    )
    t_start = time.perf_counter()
    lock = threading.Lock()
    progress = {"done": 0}
    results: list[tuple[int, int, int]] = [(0, 0, 0)] * clients

    with _build_cluster(backend, nodes, config, seed) as cluster:
        victim = sorted(cluster.membership.nodes)[1] if chaos else ""
        report.victim = victim

        def worker(ci: int, ops_list) -> None:
            zht = cluster.client(
                seed=(seed << 8) + ci,
                recorder=recorder,
                client_id=f"c{ci:02d}",
            )
            zht.transport = FaultyClientTransport(zht.transport, plan)
            acked = failed = 0
            for op in ops_list:
                try:
                    if op.op == "insert":
                        zht.insert(op.key, op.value)
                    elif op.op == "append":
                        zht.append(op.key, op.value)
                    elif op.op == "remove":
                        try:
                            zht.remove(op.key)
                        except KeyNotFound:
                            pass
                    else:
                        try:
                            zht.lookup(op.key)
                        except KeyNotFound:
                            pass
                    acked += 1
                except ZHTError:
                    failed += 1
                with lock:
                    progress["done"] += 1
            results[ci] = (acked, failed, zht.stats.hot_cache_hits)

        threads = [
            threading.Thread(
                target=worker, args=(ci, ops_list), name=f"verify-c{ci}"
            )
            for ci, ops_list in enumerate(schedule.clients)
        ]
        for t in threads:
            t.start()

        # The main thread injects the kill and runs the repair at the
        # scheduled global-progress points, like the chaos harness but
        # with the workload concurrent to the fault.
        killed = repaired = False
        if chaos:
            while any(t.is_alive() for t in threads):
                with lock:
                    done = progress["done"]
                if not killed and done >= schedule.kill_at:
                    _kill(cluster, backend, victim, plan)
                    killed = True
                if killed and not repaired and done >= schedule.repair_at:
                    _repair(cluster, victim, config, seed)
                    repaired = True
                    break
                time.sleep(0.0005)
        for t in threads:
            t.join()
        if chaos and not killed:
            _kill(cluster, backend, victim, plan)
        if chaos and not repaired:
            _repair(cluster, victim, config, seed)

        for acked, failed, hits in results:
            report.ops_acked += acked
            report.ops_failed += failed
            report.cache_hits += hits
        report.ops_attempted = schedule.total_ops

        if backend in ("tcp", "udp", "sharded"):
            time.sleep(0.2)  # drain in-flight async replica updates

        # -- hot-key cache probes ----------------------------------------
        # The scheduled workload spreads accesses too thin to heat any
        # key, so this phase manufactures heat: hammer a few keys past
        # the (lowered) threshold so the cache fills and serves hits —
        # each recorded as a bounded-stale read the checker must accept —
        # then overwrite each key and read it again, proving mutations
        # invalidate (the post-insert lookup must observe the new value,
        # which the checker rejects if served from a stale cache entry).
        if hot_cache:
            hot = cluster.client(
                seed=(seed << 8) + 0xF3,
                recorder=recorder,
                client_id="hot-prober",
            )
            hot.transport = FaultyClientTransport(hot.transport, plan)
            for key in schedule.keys[:4]:
                try:
                    for _ in range(config.hot_key_threshold * 3):
                        try:
                            hot.lookup(key)
                        except KeyNotFound:
                            break
                    hot.insert(key, b"hot-rewrite")
                    hot.lookup(key)
                except ZHTError:
                    continue
            report.cache_hits += hot.stats.hot_cache_hits

        # -- final strong read-back (pins append-key final values) -------
        reader = cluster.client(
            seed=(seed << 8) + 0xF1, recorder=recorder, client_id="reader"
        )
        reader.transport = FaultyClientTransport(reader.transport, plan)
        final_values: dict[bytes, bytes | None] = {}
        for key in schedule.keys:
            for _attempt in range(3):
                try:
                    final_values[key] = reader.lookup(key)
                    break
                except KeyNotFound:
                    final_values[key] = None
                    break
                except ZHTError:
                    continue

        # -- async tail-replica probes (bounded staleness) ---------------
        stale_phase = replicas >= 2
        if stale_phase:
            # Let more than the bound elapse so a frozen tail is
            # unambiguously out of its staleness window; a converged
            # tail passes no matter how long we wait.
            time.sleep(staleness_bound + 0.05)
            prober = cluster.client(
                seed=(seed << 8) + 0xF2,
                recorder=recorder,
                client_id="tail-prober",
            )
            prober.transport = FaultyClientTransport(prober.transport, plan)
            append_keys = set(schedule.append_keys)
            for key in schedule.keys:
                if key in append_keys:
                    continue
                try:
                    prober.lookup_at_replica(key, 2)
                except (KeyNotFound, ZHTError):
                    pass
                report.stale_probes += 1

    events = recorder.events()
    recorder.close()
    report.events_recorded = len(events)
    report.check = check_history(
        events,
        final_values=final_values,
        staleness_bound=staleness_bound if stale_phase else None,
        strict_append_once=not chaos,
    )
    report.elapsed_s = time.perf_counter() - t_start
    return report


# ---------------------------------------------------------------------------
# DES backend
# ---------------------------------------------------------------------------


def _run_verify_sim(
    *,
    ops: int,
    seed: int,
    clients: int,
    nodes: int,
    replicas: int,
    chaos: bool,
    mutation: str,
    history_path: str | None,
    staleness_bound: float,
    plan: FaultPlan | None,
    mut_flags: dict,
    hot_cache: bool = False,
    partitions_per_instance: int = 16,
) -> VerifyReport:
    """The same scenario inside the DES (simulated-seconds timestamps)."""
    from ..core.client import ZHTClientCore
    from ..faults.simchaos import _sim_execute, _sim_repair
    from ..sim.cluster import SimSpec, SimulatedCluster

    plan = plan or FaultPlan(seed)
    config = ZHTConfig(
        transport="local",
        num_partitions=nodes * partitions_per_instance,
        num_replicas=replicas,
        replication_mode=(
            ReplicationMode.ASYNC if replicas > 0 else ReplicationMode.NONE
        ),
        request_timeout=0.005,
        failures_before_dead=2,
        backoff_factor=1.5,
        max_retries=10,
        **mut_flags,
    )
    spec = SimSpec(
        num_nodes=nodes,
        num_replicas=replicas,
        replication_mode=config.replication_mode,
        partitions_per_instance=partitions_per_instance,
        real_core=True,
        seed=seed,
        faults=plan,
        config=config,
    )
    cluster = SimulatedCluster(spec)
    env = cluster.env
    membership = cluster.membership
    recorder = HistoryRecorder(
        history_path, clock=lambda: env.now, fresh=True
    )
    schedule = generate_schedule(seed, ops, clients=clients)
    report = VerifyReport(
        "sim",
        nodes,
        replicas,
        seed,
        mutation=mutation,
        chaos=chaos,
        hot_cache=hot_cache,
        history_path=history_path,
    )
    victim = sorted(membership.nodes)[1] if chaos else ""
    report.victim = victim
    t_start = time.perf_counter()

    state = {"done": 0, "acked": 0, "failed": 0, "killed": False, "repaired": False}
    final_values: dict[bytes, bytes | None] = {}
    stale_phase = replicas >= 2

    def run_op(core, cid, op_name, key, value=b"", replica_index=0):
        """DES sub-generator: one recorded operation."""
        driver = core.driver(_OPCODES[op_name], key, value)
        if replica_index:
            driver._replica_index = replica_index
        t0 = env.now
        status, result = STATUS_FAIL, b""
        try:
            response = yield from _sim_execute(cluster, core, driver)
            status = STATUS_OK
            if op_name == "lookup":
                result = response.value
        except KeyNotFound:
            # Same at-least-once caveat as ZHT._execute: a retried REMOVE
            # observing NOT_FOUND may have applied on a lost attempt.
            if op_name == "remove" and driver._attempts_used > 1:
                status = STATUS_FAIL
            else:
                status = STATUS_NOTFOUND
        except ZHTError:
            pass
        recorder.record(
            cid,
            op_name,
            key,
            value,
            t0,
            env.now,
            status,
            result=result,
            replica_index=driver.served_replica_index,
        )
        return status, result

    def kill_victim():
        cluster.kill_node(victim)
        plan.crash_target(
            victim,
            *[
                str(inst.address)
                for inst in membership.instances_on_node(victim)
            ],
        )
        state["killed"] = True

    def client_proc(ci: int, ops_list):
        core = ZHTClientCore(
            membership.copy(),
            config,
            rng=random.Random((seed << 16) ^ (0xC1 + ci)),
        )
        for op in ops_list:
            # Cooperative fault injection: whichever client crosses the
            # scheduled global-progress point performs it (deterministic
            # under the DES's total event order).
            if chaos and not state["killed"] and state["done"] >= schedule.kill_at:
                kill_victim()
            if (
                chaos
                and state["killed"]
                and not state["repaired"]
                and state["done"] >= schedule.repair_at
            ):
                state["repaired"] = True
                yield from _sim_repair(cluster, victim, config, seed)
            status, _ = yield from run_op(
                core, f"c{ci:02d}", op.op, op.key, op.value
            )
            state["done"] += 1
            if status == STATUS_FAIL:
                state["failed"] += 1
            else:
                state["acked"] += 1

    def main_proc():
        procs = [
            env.process(client_proc(ci, ops_list), name=f"verify-c{ci}")
            for ci, ops_list in enumerate(schedule.clients)
        ]
        for proc in procs:
            yield proc
        if chaos and not state["killed"]:
            kill_victim()
        if chaos and not state["repaired"]:
            yield from _sim_repair(cluster, victim, config, seed)

        reader = ZHTClientCore(
            membership.copy(), config, rng=random.Random((seed << 16) ^ 0xF1)
        )
        for key in schedule.keys:
            for _attempt in range(3):
                status, result = yield from run_op(reader, "reader", "lookup", key)
                if status == STATUS_OK:
                    final_values[key] = result
                    break
                if status == STATUS_NOTFOUND:
                    final_values[key] = None
                    break

        if stale_phase:
            yield env.timeout(staleness_bound + 0.01)
            prober = ZHTClientCore(
                membership.copy(),
                config,
                rng=random.Random((seed << 16) ^ 0xF2),
            )
            append_keys = set(schedule.append_keys)
            for key in schedule.keys:
                if key in append_keys:
                    continue
                yield from run_op(
                    prober, "tail-prober", "lookup", key, replica_index=2
                )
                report.stale_probes += 1

    proc = env.process(main_proc(), name="verify-main")
    env.run()
    if not proc.done:
        raise RuntimeError("sim verify workload deadlocked")

    report.ops_attempted = schedule.total_ops
    report.ops_acked = state["acked"]
    report.ops_failed = state["failed"]
    events = recorder.events()
    recorder.close()
    report.events_recorded = len(events)
    report.check = check_history(
        events,
        final_values=final_values,
        staleness_bound=staleness_bound if stale_phase else None,
        strict_append_once=not chaos,
    )
    report.elapsed_s = time.perf_counter() - t_start
    return report
