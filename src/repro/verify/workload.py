"""Deterministic workload/schedule generation for the verifier.

One seed fully determines *what* every logical client does (ops, keys,
values, barrier positions); the *interleaving* is whatever the backend
produces (thread scheduling on live transports, event order in the
DES).  That split is deliberate: the checker validates any observed
interleaving, so only the workload itself needs to be reproducible for
a failure to be replayable.

Two key populations:

* **register keys** (``reg-…``) receive insert/lookup/remove — the
  per-key linearizability model;
* **append keys** (``app-…``) receive only appends and lookups — the
  multiset-containment model.  Every fragment embeds
  ``(client, op index)`` with a terminator so fragments are pairwise
  distinct and no fragment is a proper prefix of another, making the
  final-value tokenization unambiguous.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class VerifyOp:
    """One scheduled client operation."""

    client: int
    index: int
    op: str  #: "insert" | "lookup" | "remove" | "append"
    key: bytes
    value: bytes = b""


@dataclass(frozen=True)
class VerifySchedule:
    """The full deterministic plan for one verify run."""

    seed: int
    #: Per-client operation sequences.
    clients: list
    #: Every key the run may touch (for the final strong read-back).
    keys: list
    #: Keys using the append model (subset of ``keys``).
    append_keys: list
    #: Global op counts at which the harness injects the node kill and
    #: runs the repair (mirrors the chaos harness's kill/repair points).
    kill_at: int
    repair_at: int

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.clients)


def fragment(seed: int, client: int, index: int) -> bytes:
    """A globally unique, prefix-free append fragment."""
    return f"|s{seed}c{client:02d}i{index:05d};".encode()


def generate_schedule(
    seed: int,
    ops: int,
    *,
    clients: int = 4,
    register_keys: int = 0,
    append_keys: int = 0,
    append_fraction: float = 0.25,
    remove_fraction: float = 0.1,
    lookup_fraction: float = 0.35,
    kill_fraction: float = 0.35,
    repair_fraction: float = 0.6,
) -> VerifySchedule:
    """Generate a seeded schedule of *ops* operations over *clients*.

    Key-space sizes default to ``ops // 8`` register keys and
    ``max(2, clients)`` append keys — small enough that keys see real
    concurrency, large enough that per-key histories stay tractable.
    """
    rng = random.Random(seed)
    n_reg = register_keys or max(4, ops // 8)
    n_app = append_keys or max(2, clients)
    reg = [f"reg-{seed}-{i:04d}".encode() for i in range(n_reg)]
    app = [f"app-{seed}-{i:04d}".encode() for i in range(n_app)]

    per_client: list[list[VerifyOp]] = [[] for _ in range(clients)]
    for i in range(ops):
        client = i % clients
        index = len(per_client[client])
        roll = rng.random()
        if roll < append_fraction:
            key = rng.choice(app)
            if rng.random() < lookup_fraction:
                op = VerifyOp(client, index, "lookup", key)
            else:
                op = VerifyOp(
                    client, index, "append", key, fragment(seed, client, index)
                )
        else:
            key = rng.choice(reg)
            r = rng.random()
            if r < lookup_fraction:
                op = VerifyOp(client, index, "lookup", key)
            elif r < lookup_fraction + remove_fraction:
                op = VerifyOp(client, index, "remove", key)
            else:
                value = f"v{seed}-{client}-{index}-{rng.randrange(1 << 30)}".encode()
                op = VerifyOp(client, index, "insert", key, value)
        per_client[client].append(op)

    return VerifySchedule(
        seed=seed,
        clients=per_client,
        keys=reg + app,
        append_keys=app,
        kill_at=max(1, int(ops * kill_fraction)),
        repair_at=min(ops - 1, max(2, int(ops * repair_fraction))),
    )


def synthesize_history(seed: int, ops: int, *, clients: int = 8):
    """Build a *valid* concurrent history without running a cluster.

    Used by the checker throughput benchmark: applies a seeded schedule
    to a plain dict model under a logical clock, giving each client
    overlapping operation intervals (so the checker really searches)
    while the outcomes stay linearizable by construction — the model IS
    the linearization.
    """
    from .history import STATUS_NOTFOUND, STATUS_OK, HistoryEvent

    schedule = generate_schedule(seed, ops, clients=clients)
    rng = random.Random(seed ^ 0x5EED)
    model: dict[bytes, bytes] = {}
    events: list[HistoryEvent] = []
    #: Each client's earliest possible next invocation time.
    free_at = [0.0] * clients
    seq = 0
    flat = [
        (client, op)
        for client, ops_list in enumerate(schedule.clients)
        for op in ops_list
    ]
    # Interleave clients round-robin with jittered overlapping intervals.
    # Ops are applied to the model in flat order, so that order must be a
    # valid linearization of the emitted intervals: each op's
    # linearization point t_lin advances a global clock, and its interval
    # [t_call, t_return] brackets t_lin with jitter so intervals of
    # different clients genuinely overlap (the checker has to search).
    now = 0.0
    for client, op in flat:
        t_lin = max(now, free_at[client]) + rng.random() * 1e-4 + 1e-9
        t_call = max(free_at[client], t_lin - rng.random() * 5e-4)
        t_return = t_lin + rng.random() * 5e-4
        now = t_lin
        free_at[client] = t_return
        status, result = STATUS_OK, b""
        if op.op == "insert":
            model[op.key] = op.value
        elif op.op == "append":
            model[op.key] = model.get(op.key, b"") + op.value
        elif op.op == "remove":
            if op.key in model:
                del model[op.key]
            else:
                status = STATUS_NOTFOUND
        elif op.op == "lookup":
            if op.key in model:
                result = model[op.key]
            else:
                status = STATUS_NOTFOUND
        seq += 1
        events.append(
            HistoryEvent(
                client_id=f"c{client}",
                op=op.op,
                key=op.key,
                value=op.value,
                t_call=t_call,
                t_return=t_return,
                status=status,
                result=result,
                seq=seq,
            )
        )
    events.sort(key=lambda e: e.t_call)
    final_values = {key: model.get(key) for key in schedule.append_keys}
    return events, final_values
