"""Workload generators shared by the simulator and the real benchmarks.

The paper's micro-benchmark (§IV.A): "Each client creates a long list of
key-value pairs; here we set the length of the key to 15 bytes and length
of value to 132 bytes.  Clients sequentially send all of the key-value
pairs through a ZHT Client API for insert, then lookup, and then remove.
... Since the keys are randomly generated, the communication pattern is
All-to-All."

Every generator is seed-deterministic **per client id**: the same
``(seed, client_id)`` produces the identical op stream whether it drives
the discrete-event simulator or a live TCP cluster, so sim results and
real-transport benchmark results are directly comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from .core.protocol import OpCode

#: Paper's micro-benchmark payload shape.
KEY_BYTES = 15
VALUE_BYTES = 132


def random_key(rng: random.Random, length: int = KEY_BYTES) -> bytes:
    """A random printable ASCII key (ZHT keys are "variable length ASCII
    text string"s)."""
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "".join(rng.choice(alphabet) for _ in range(length)).encode("ascii")


def random_value(rng: random.Random, length: int = VALUE_BYTES) -> bytes:
    return rng.randbytes(length)


@dataclass
class MicroBenchmarkWorkload:
    """Insert-then-lookup-then-remove over random keys (all-to-all)."""

    ops_per_client: int
    key_bytes: int = KEY_BYTES
    value_bytes: int = VALUE_BYTES
    seed: int = 0
    #: Include the remove phase (benchmarks measuring only insert+lookup
    #: can disable it).
    include_remove: bool = True

    def client_ops(self, client_id: int) -> Iterator[tuple[OpCode, bytes, bytes]]:
        """The exact op sequence for one client (deterministic per id)."""
        rng = random.Random((self.seed << 20) ^ client_id)
        keys = [random_key(rng, self.key_bytes) for _ in range(self.ops_per_client)]
        value = random_value(rng, self.value_bytes)
        for key in keys:
            yield OpCode.INSERT, key, value
        for key in keys:
            yield OpCode.LOOKUP, key, b""
        if self.include_remove:
            for key in keys:
                yield OpCode.REMOVE, key, b""

    @property
    def total_ops_per_client(self) -> int:
        return self.ops_per_client * (3 if self.include_remove else 2)


@dataclass
class AppendWorkload:
    """Concurrent appends to a small hot key set (the FusionFS directory
    pattern: many clients appending entries under one parent-dir key)."""

    ops_per_client: int
    hot_keys: int = 1
    fragment_bytes: int = 64
    seed: int = 0

    def client_ops(self, client_id: int) -> Iterator[tuple[OpCode, bytes, bytes]]:
        rng = random.Random((self.seed << 20) ^ client_id)
        for i in range(self.ops_per_client):
            key = f"hot-dir-{rng.randrange(self.hot_keys):04d}".encode()
            fragment = f"[c{client_id}:{i}]".encode().ljust(self.fragment_bytes, b".")
            yield OpCode.APPEND, key, fragment

    @property
    def total_ops_per_client(self) -> int:
        return self.ops_per_client


@dataclass
class ZipfWorkload:
    """Skewed-popularity reads/writes (stress for hot partitions)."""

    ops_per_client: int
    universe: int = 10_000
    alpha: float = 1.1
    write_ratio: float = 0.1
    seed: int = 0
    _cdf: list[float] = field(default_factory=list, repr=False)

    def _ensure_cdf(self) -> None:
        if self._cdf:
            return
        weights = [1.0 / (i + 1) ** self.alpha for i in range(self.universe)]
        total = sum(weights)
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def _sample(self, rng: random.Random) -> int:
        self._ensure_cdf()
        u = rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def client_ops(self, client_id: int) -> Iterator[tuple[OpCode, bytes, bytes]]:
        rng = random.Random((self.seed << 20) ^ client_id)
        for _ in range(self.ops_per_client):
            key = f"zipf-{self._sample(rng):08d}".encode()
            if rng.random() < self.write_ratio:
                yield OpCode.INSERT, key, random_value(rng)
            else:
                yield OpCode.LOOKUP, key, b""

    @property
    def total_ops_per_client(self) -> int:
        return self.ops_per_client
