"""repro — a full Python reproduction of ZHT (IPDPS 2013).

ZHT is a zero-hop distributed hash table tuned for high-end computing:
light-weight, persistent (NoVoHT), replicated, dynamically scalable
without rehashing, and supporting ``append`` for lock-free concurrent
modification.

Quickstart::

    from repro import build_local_cluster

    with build_local_cluster(num_nodes=4) as cluster:
        zht = cluster.client()
        zht.insert("greeting", b"hello")
        print(zht.lookup("greeting"))

Package layout:

* :mod:`repro.core` — the ZHT protocol state machines (sans I/O).
* :mod:`repro.novoht` — the persistent hash table under every instance.
* :mod:`repro.net` — real TCP/UDP transports + in-process local transport.
* :mod:`repro.sim` — discrete-event simulator for scale experiments.
* :mod:`repro.baselines` — Memcached-, Cassandra-, Kademlia-,
  KyotoCabinet-, BerkeleyDB-, GPFS-, and Falkon-like comparators.
* :mod:`repro.fusionfs` / :mod:`repro.istore` / :mod:`repro.matrix` —
  the three real systems the paper builds on ZHT.
"""

from .api import ZHT, LocalCluster, build_local_cluster, build_membership
from .core import (
    KeyNotFound,
    OpCode,
    ReplicationMode,
    Status,
    ZHTConfig,
    ZHTError,
)
from .novoht import NoVoHT

__version__ = "1.0.0"

__all__ = [
    "ZHT",
    "KeyNotFound",
    "LocalCluster",
    "NoVoHT",
    "OpCode",
    "ReplicationMode",
    "Status",
    "ZHTConfig",
    "ZHTError",
    "build_local_cluster",
    "build_membership",
    "__version__",
]
