"""Network topologies for the simulator.

Two models cover the paper's testbeds:

* :class:`TorusTopology` — the IBM Blue Gene/P 3D torus: "the IBM Blue
  Gene/P network for communication is a 3D Torus network, which does
  multi-hop routing to send messages among compute nodes ... one rack of
  Blue Gene/P has 1024 nodes, any larger scale than 1024 will involve
  more than one rack" (§IV.C).  Hop count is the Manhattan distance with
  per-dimension wraparound; crossing a rack boundary adds a penalty hop
  count.
* :class:`SwitchedTopology` — the HEC-Cluster: a flat Ethernet switch,
  every distinct pair is one switch traversal.
"""

from __future__ import annotations

from dataclasses import dataclass


def torus_dims_for(num_nodes: int) -> tuple[int, int, int]:
    """Pick near-cubic 3D torus dimensions containing *num_nodes*.

    Blue Gene/P midplanes are 8x8x8 (512 nodes); larger systems stack
    midplanes.  We choose the most cubic factorization of the smallest
    power-of-two box that fits.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    size = 1
    while size < num_nodes:
        size *= 2
    # Distribute log2(size) across three dimensions as evenly as possible.
    log2 = size.bit_length() - 1
    dims = [1, 1, 1]
    for i in range(log2):
        dims[i % 3] *= 2
    dims.sort()
    return (dims[0], dims[1], dims[2])


@dataclass(frozen=True)
class TorusTopology:
    """3D torus with wraparound links and rack-crossing penalties."""

    dims: tuple[int, int, int]
    #: Nodes per rack (Blue Gene/P: 1024).
    rack_size: int = 1024
    #: Extra hops charged when source and destination racks differ
    #: (inter-rack cabling and the extra switch chips on the path).
    rack_penalty_hops: int = 4

    @classmethod
    def for_nodes(cls, num_nodes: int, **kwargs) -> "TorusTopology":
        return cls(torus_dims_for(num_nodes), **kwargs)

    @property
    def num_nodes(self) -> int:
        x, y, z = self.dims
        return x * y * z

    def coordinates(self, node: int) -> tuple[int, int, int]:
        x, y, z = self.dims
        if not 0 <= node < x * y * z:
            raise ValueError(f"node {node} outside torus of {x * y * z}")
        return (node % x, (node // x) % y, node // (x * y))

    def hops(self, src: int, dst: int) -> int:
        """Torus Manhattan distance plus any rack-crossing penalty."""
        if src == dst:
            return 0
        total = 0
        for a, b, size in zip(
            self.coordinates(src), self.coordinates(dst), self.dims
        ):
            d = abs(a - b)
            total += min(d, size - d)
        if src // self.rack_size != dst // self.rack_size:
            total += self.rack_penalty_hops
        return total

    def average_hops(self, num_nodes: int | None = None, samples: int = 512) -> float:
        """Mean hop count over a deterministic sample of node pairs."""
        n = num_nodes if num_nodes is not None else self.num_nodes
        n = min(n, self.num_nodes)
        if n <= 1:
            return 0.0
        total = 0.0
        count = 0
        # Deterministic low-discrepancy pair sample (golden-ratio stride).
        stride = max(1, int(n * 0.6180339887498949))
        src = 0
        for i in range(min(samples, n * 2)):
            dst = (src + stride + i) % n
            if dst != src:
                total += self.hops(src, dst)
                count += 1
            src = (src + 7919) % n
        return total / max(count, 1)


@dataclass(frozen=True)
class SwitchedTopology:
    """Flat switched Ethernet (the 64-node HEC-Cluster)."""

    num_nodes: int
    #: Hops through the switch fabric for any distinct pair.
    switch_hops: int = 1

    def hops(self, src: int, dst: int) -> int:
        if not 0 <= src < self.num_nodes or not 0 <= dst < self.num_nodes:
            raise ValueError("node outside topology")
        return 0 if src == dst else self.switch_hops

    def average_hops(self, num_nodes: int | None = None, samples: int = 0) -> float:
        n = num_nodes if num_nodes is not None else self.num_nodes
        if n <= 1:
            return 0.0
        # Fraction of pairs that are remote when targets are uniform.
        return self.switch_hops * (n - 1) / n
