"""Closed-form latency/efficiency model for extreme scales (Figure 11).

The paper ran ZHT to 8K nodes, validated a PeerSim simulation against
those runs ("on average only 3% of difference"), then used the simulator
for the 16K→1M-node points of Figure 11: efficiency drops to 8% at 1M
nodes, i.e. ~7 ms latency ("8% efficiency implies about 7ms latency, at
1M node scales ... At 1M node scales and latencies of 7ms, we would
achieve nearly 150M ops/sec throughputs").

Our DES (:mod:`repro.sim.cluster`) covers the validated range; event
counts make million-node DES impractical in Python, so — like the paper —
we switch models beyond the measured range.  The closed form is:

    latency(N) = client + service + 2 * (wire_base + per_hop * hops(N))
               + congestion(N)

``hops(N)`` is the exact average hop count of the 3D-torus topology
model.  ``congestion(N)`` captures the super-linear saturation the
paper's PeerSim runs exhibit at extreme scale (cross-rack cabling,
adaptive-routing conflicts, and OS jitter that a uniform-traffic
bandwidth analysis cannot see: ZHT's 150-byte messages load torus links
far below capacity, yet the measured efficiency still collapses).  We
fit the two-parameter power law ``c * N**alpha`` to the paper's own
published simulation anchors — 51% efficiency at 8K nodes and 8% at 1M
nodes — and validate the composite model against our DES for N ≤ 8K.
"""

from __future__ import annotations

import math

from .network import BGP_TORUS_LINK, ZHT_BGP, LinkModel, ServiceModel
from .topology import TorusTopology

#: The paper's Figure 11 anchors: (nodes, efficiency relative to 2-node).
FIG11_ANCHORS = ((8192, 0.51), (1_048_576, 0.08))

#: Scales plotted in Figure 11 (measured to 8K, simulated to 1M).
FIG11_SCALES = (
    2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
    16384, 32768, 65536, 131072, 262144, 524288, 1_048_576,
)


def average_hops(num_nodes: int) -> float:
    """Average hop count on the modeled 3D torus for *num_nodes*."""
    if num_nodes <= 1:
        return 0.0
    return TorusTopology.for_nodes(num_nodes).average_hops()


def base_latency_s(
    num_nodes: int,
    service: ServiceModel = ZHT_BGP,
    link: LinkModel = BGP_TORUS_LINK,
    message_bytes: int = 171,
) -> float:
    """Contention-free per-op latency from the calibrated constants."""
    hops = average_hops(num_nodes)
    if num_nodes <= 1:
        one_way = link.local_delivery + message_bytes / link.bandwidth
    else:
        one_way = link.one_way(max(1, round(hops)), message_bytes)
        # Use the fractional hop count rather than the rounded one.
        one_way = (
            link.wire_base
            + hops * link.per_hop
            + message_bytes / link.bandwidth
        )
    return (
        service.client_overhead
        + service.service_time
        # insert and remove persist, lookup does not: 2/3 of the mix.
        + service.persistence_time * 2 / 3
        + 2 * one_way
    )


def _fit_congestion(
    service: ServiceModel, link: LinkModel
) -> tuple[float, float]:
    """Fit ``c * N**alpha`` through the paper's two Figure 11 anchors."""
    two_node = base_latency_s(2, service, link)
    targets = []
    for n, eff in FIG11_ANCHORS:
        target_latency = two_node / eff
        excess = max(1e-9, target_latency - base_latency_s(n, service, link))
        targets.append((n, excess))
    (n1, e1), (n2, e2) = targets
    alpha = math.log(e2 / e1) / math.log(n2 / n1)
    c = e1 / n1**alpha
    return c, alpha


def predicted_latency_s(
    num_nodes: int,
    service: ServiceModel = ZHT_BGP,
    link: LinkModel = BGP_TORUS_LINK,
) -> float:
    """Model latency at *num_nodes* (seconds)."""
    base = base_latency_s(num_nodes, service, link)
    if num_nodes <= 2:
        return base
    c, alpha = _fit_congestion(service, link)
    return base + c * num_nodes**alpha


def predicted_latency_ms(num_nodes: int, **kwargs) -> float:
    return predicted_latency_s(num_nodes, **kwargs) * 1e3


def predicted_efficiency(
    num_nodes: int,
    service: ServiceModel = ZHT_BGP,
    link: LinkModel = BGP_TORUS_LINK,
) -> float:
    """Efficiency vs the 2-node ideal (the paper's Figure 11 metric)."""
    if num_nodes <= 2:
        return 1.0
    return min(
        1.0,
        predicted_latency_s(2, service, link)
        / predicted_latency_s(num_nodes, service, link),
    )


def predicted_throughput_ops_s(
    num_nodes: int,
    instances_per_node: int = 1,
    service: ServiceModel = ZHT_BGP,
    link: LinkModel = BGP_TORUS_LINK,
) -> float:
    """System throughput with 1:1 sequential clients: N / latency."""
    return (
        num_nodes
        * instances_per_node
        / predicted_latency_s(num_nodes, service, link)
    )
