"""Compatibility shim: the workload generators moved to
:mod:`repro.workload` so real-transport benchmarks can share them with
the simulator.  Import from there; this module re-exports the public
names for existing callers."""

from ..workload import (  # noqa: F401
    KEY_BYTES,
    VALUE_BYTES,
    AppendWorkload,
    MicroBenchmarkWorkload,
    ZipfWorkload,
    random_key,
    random_value,
)

__all__ = [
    "KEY_BYTES",
    "VALUE_BYTES",
    "AppendWorkload",
    "MicroBenchmarkWorkload",
    "ZipfWorkload",
    "random_key",
    "random_value",
]
