"""Latency and service-time models, calibrated to the paper.

Every constant here is anchored to a number the paper states; the
citation is given next to each value.  The simulator composes three
pieces per operation:

    latency = client_overhead
            + one_way(request) + queueing + service (+ persistence)
            + one_way(response)

Calibration anchors (§IV):

* ZHT on Blue Gene/P: "on one node, the latency of both TCP with
  connection caching and UDP is extremely low (<0.5ms)"; "100% efficiency
  implies a latency of about 0.6ms per operation (this is the performance
  of ZHT at 2 node scales)"; "up to 1.1ms at 8K-node scales".
* NoVoHT: "persistency of writing key/value pairs to disk only adds about
  3us of latency on top of the in-memory implementation" (Fig 6 shows
  ~5-10 µs in-memory operations).
* Memcached on Blue Gene/P: "latencies ranging from 1.1ms to 1.4ms from 1
  node to 8K nodes (note that this represents a 25% to 139% slower
  latency, depending on the scale)".
* HEC-Cluster: ZHT ~0.73 ms (Fig 4); "Memcached only shows slightly
  better performance than ZHT up to 64-node scales" (no disk write);
  Cassandra ~3x ZHT latency at 64 nodes and "nearly 7x throughput
  difference", driven by "a logarithmic-routing-time dynamic member list"
  and JVM overheads.
* TCP without connection caching pays a full TCP handshake round trip
  per operation (Fig 7 shows it roughly doubling latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkModel:
    """Per-message network cost: ``base + hops*per_hop + bytes/bandwidth``."""

    name: str
    #: Fixed one-way software/NIC cost per message (s).
    wire_base: float
    #: Added per topology hop (s).
    per_hop: float
    #: Link bandwidth (bytes/s).
    bandwidth: float
    #: One-way cost when client and server share a node (loopback).
    local_delivery: float

    def one_way(self, hops: int, nbytes: int) -> float:
        if hops == 0:
            return self.local_delivery + nbytes / self.bandwidth
        return self.wire_base + hops * self.per_hop + nbytes / self.bandwidth


@dataclass(frozen=True)
class ServiceModel:
    """Per-system processing costs and routing behaviour."""

    name: str
    #: Server CPU per operation (s) — request decode, hash-table op,
    #: response encode.
    service_time: float
    #: Extra server time per *mutation* for persistence (s).  ZHT/NoVoHT:
    #: ~3 µs (WAL append); memcached: 0 (in-memory only).
    persistence_time: float
    #: Client-side per-op CPU (serialize, hash, membership lookup) (s).
    client_overhead: float
    #: Extra cost paid once per op on the *first* contact when the client
    #: must establish a connection (TCP without connection caching: one
    #: extra round trip for the handshake).
    connect_round_trips: float = 0.0

    def routing_forwards(self, num_nodes: int) -> int:
        """Server-to-server forwards on the request path (0 = zero-hop)."""
        return 0


@dataclass(frozen=True)
class LogRoutingServiceModel(ServiceModel):
    """log(N)-routing system (Cassandra / Kademlia / C-MPI style)."""

    #: Fraction of log2(N) links actually traversed per lookup.
    forward_factor: float = 0.5

    def routing_forwards(self, num_nodes: int) -> int:
        if num_nodes <= 1:
            return 0
        return max(0, int(math.ceil(math.log2(num_nodes) * self.forward_factor)))


# ---------------------------------------------------------------------------
# Links
# ---------------------------------------------------------------------------

#: Blue Gene/P 3D torus: 425 MB/s per link; sub-µs per-hop router latency
#: plus software stack per message.  Constants tuned so a 2-node ZHT op
#: costs ~0.6 ms and an 8K-node op ~1.1 ms (Fig 7).
BGP_TORUS_LINK = LinkModel(
    name="bgp-torus",
    wire_base=120e-6,
    per_hop=11e-6,
    bandwidth=350e6,
    local_delivery=25e-6,
)

#: Gigabit Ethernet through one switch (HEC-Cluster).
CLUSTER_ETHERNET_LINK = LinkModel(
    name="cluster-ethernet",
    wire_base=90e-6,
    per_hop=40e-6,
    bandwidth=110e6,
    local_delivery=20e-6,
)


# ---------------------------------------------------------------------------
# Services — Blue Gene/P testbed (Figures 7, 9, 11, 12, 13, 14)
# ---------------------------------------------------------------------------

#: ZHT with TCP connection caching or UDP (equivalent per Fig 7).
ZHT_BGP = ServiceModel(
    name="zht",
    service_time=230e-6,
    persistence_time=3e-6,  # "only adds about 3us of latency"
    client_overhead=120e-6,
)

#: ZHT over TCP opening a fresh connection per op: pay a handshake RTT.
ZHT_BGP_NO_CONN_CACHE = ServiceModel(
    name="zht-tcp-nocache",
    service_time=230e-6,
    persistence_time=3e-6,
    client_overhead=120e-6,
    connect_round_trips=1.0,
)

#: Memcached on Blue Gene/P: 1.1 ms at 1 node → its constant cost is
#: dominated by its (poorly ported) client/server stack, not the network.
MEMCACHED_BGP = ServiceModel(
    name="memcached",
    service_time=600e-6,
    persistence_time=0.0,
    client_overhead=430e-6,
)


# ---------------------------------------------------------------------------
# Services — HEC-Cluster testbed (Figures 8, 10)
# ---------------------------------------------------------------------------

ZHT_CLUSTER = ServiceModel(
    name="zht",
    service_time=200e-6,
    persistence_time=60e-6,  # spinning disk WAL append on the cluster
    client_overhead=120e-6,
)

#: "slightly better performance than ZHT ... ZHT must write to disk,
#: while Memcached's data stayed completely in-memory."
MEMCACHED_CLUSTER = ServiceModel(
    name="memcached",
    service_time=190e-6,
    persistence_time=0.0,
    client_overhead=110e-6,
)

#: Cassandra: JVM service cost + log-routing forwards + commit log.
CASSANDRA_CLUSTER = LogRoutingServiceModel(
    name="cassandra",
    service_time=700e-6,
    persistence_time=150e-6,
    client_overhead=250e-6,
    forward_factor=0.5,
)


def zht_instance_service(
    base: ServiceModel, instances_per_node: int, cores_per_node: int = 4
) -> ServiceModel:
    """Service model for co-located instances sharing a node's cores.

    "assigning one instance to each core yields the best resource
    utilization"; beyond that, instances time-share and per-op service
    slows proportionally (Fig 13: 8 instances/node on 4 cores roughly
    doubles latency at scale).  Each instance ships with its co-located
    client (the paper's 1:1 deployment), so a node runs ``2 x instances``
    active threads over ``cores_per_node`` cores.
    """
    threads = 2 * instances_per_node
    if threads <= cores_per_node:
        return base
    factor = threads / cores_per_node
    return ServiceModel(
        name=f"{base.name}-x{instances_per_node}",
        service_time=base.service_time * factor,
        persistence_time=base.persistence_time,
        client_overhead=base.client_overhead,
        connect_round_trips=base.connect_round_trips,
    )
