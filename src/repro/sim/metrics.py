"""Measurement helpers for simulation runs.

Implements the paper's metrics (§IV.A):

* **Latency** — request submission to response receipt, in ms.
* **Throughput** — operations completed per second across the system.
* **Ideal throughput** — "Measured throughput between two nodes times the
  number of nodes".
* **Efficiency** — "Ratio between measured throughput and ideal
  throughput".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class LatencyStats:
    """Streaming latency accumulator with exact quantiles.

    Keeps all samples (simulation runs are bounded); exposes mean,
    percentiles, min/max.  Times are in seconds internally, reported in
    milliseconds to match the paper's figures.
    """

    def __init__(self):
        self.samples: list[float] = []
        self._sum = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative latency")
        self.samples.append(seconds)
        self._sum += seconds

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean_ms(self) -> float:
        if not self.samples:
            return 0.0
        return self._sum / len(self.samples) * 1e3

    def percentile_ms(self, p: float) -> float:
        if not self.samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(p / 100 * len(ordered)) - 1))
        return ordered[rank] * 1e3

    @property
    def min_ms(self) -> float:
        return min(self.samples) * 1e3 if self.samples else 0.0

    @property
    def max_ms(self) -> float:
        return max(self.samples) * 1e3 if self.samples else 0.0


@dataclass
class RunResult:
    """Outcome of one simulated workload run."""

    system: str
    num_nodes: int
    instances_per_node: int
    ops: int
    #: Simulated wall-clock duration of the measured phase (s).
    duration_s: float
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def throughput_ops_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.ops / self.duration_s

    @property
    def latency_ms(self) -> float:
        return self.latency.mean_ms

    def efficiency_vs(self, two_node_latency_ms: float) -> float:
        """Efficiency against the ideal scaling of a 2-node deployment.

        With 1:1 clients issuing sequentially, ideal throughput per node
        is ``1 / two_node_latency``; efficiency reduces to the latency
        ratio (this is how the paper's Figure 11 is computed: "Efficiency
        was computed by comparing ... against the ideal latency/throughput
        (which was taken to be the better performer at 2-node scale)").
        """
        if self.latency_ms <= 0:
            return 0.0
        return min(1.0, two_node_latency_ms / self.latency_ms)

    def row(self) -> dict:
        return {
            "system": self.system,
            "nodes": self.num_nodes,
            "instances_per_node": self.instances_per_node,
            "ops": self.ops,
            "latency_ms": round(self.latency_ms, 4),
            "p95_ms": round(self.latency.percentile_ms(95), 4),
            "throughput_ops_s": round(self.throughput_ops_s, 1),
        }
