"""Discrete-event simulation engine.

A small, fast SimPy-style kernel used to run ZHT deployments at scales a
single machine cannot host for real (the paper validated a PeerSim-based
simulator against ≤8K-node Blue Gene/P runs within 3% and used it for the
1M-node point of Figure 11 — we adopt the same methodology).

Model:

* **Processes** are Python generators driven by the engine.  A process
  may ``yield``:

  - an :class:`Event` — suspend until the event succeeds; the ``yield``
    evaluates to the event's value;
  - another :class:`Process` — suspend until that process returns; the
    ``yield`` evaluates to its return value;
  - the result of :meth:`Environment.timeout` — suspend for simulated
    seconds.

* :class:`Store` is an unbounded FIFO channel with blocking ``get``
  (message queues between simulated servers/clients).
* :class:`Resource` is a counted semaphore (CPU cores, disk channels).

The engine is deterministic: ties in time are broken by scheduling
sequence number.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable


class SimError(Exception):
    """Raised for illegal engine operations (double-succeed, etc.)."""


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("env", "_value", "_ok", "triggered", "_waiters")

    def __init__(self, env: "Environment"):
        self.env = env
        self._value: Any = None
        self._ok = True
        self.triggered = False
        self._waiters: list[Process] = []

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimError("event already triggered")
        self.triggered = True
        self._value = value
        self._ok = True
        for proc in self._waiters:
            self.env._schedule(0.0, proc._resume, value, None)
        self._waiters.clear()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimError("event already triggered")
        self.triggered = True
        self._value = exc
        self._ok = False
        for proc in self._waiters:
            self.env._schedule(0.0, proc._resume, None, exc)
        self._waiters.clear()
        return self

    @property
    def value(self) -> Any:
        return self._value

    def _wait(self, proc: "Process") -> None:
        if self.triggered:
            if self._ok:
                self.env._schedule(0.0, proc._resume, self._value, None)
            else:
                self.env._schedule(0.0, proc._resume, None, self._value)
        else:
            self._waiters.append(proc)


class Process:
    """A running generator, resumable by the engine."""

    __slots__ = ("env", "_gen", "done", "result", "_completion", "name")

    def __init__(self, env: "Environment", gen: Generator, name: str = ""):
        self.env = env
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = False
        self.result: Any = None
        self._completion = Event(env)

    # The completion event doubles as "yield process" support.
    def _wait(self, proc: "Process") -> None:
        self._completion._wait(proc)

    @property
    def triggered(self) -> bool:
        return self._completion.triggered

    def _resume(self, value: Any, exc: BaseException | None) -> None:
        try:
            if exc is not None:
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._completion.succeed(stop.value)
            return
        except BaseException as err:
            self.done = True
            self._completion.fail(err)
            if not self._completion._waiters and not isinstance(
                err, GeneratorExit
            ):
                raise
            return
        if isinstance(yielded, (Event, Process)):
            yielded._wait(self)
        else:
            raise SimError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "yield an Event, a timeout, or a Process"
            )


class Environment:
    """The simulation clock and event queue."""

    def __init__(self):
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable, Any, Any]] = []
        self._seq = 0
        self.events_processed = 0

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable, value: Any, exc: Any) -> None:
        if delay < 0:
            raise SimError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, value, exc))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds after *delay* simulated seconds."""
        evt = Event(self)
        self._seq += 1
        heapq.heappush(
            self._queue,
            (self.now + delay, self._seq, evt.succeed, value, None),
        )
        return evt

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start *gen* as a process at the current time."""
        proc = Process(self, gen, name)
        self._schedule(0.0, proc._resume, None, None)
        return proc

    # -- execution -------------------------------------------------------------

    def step(self) -> None:
        """Pop and execute exactly one scheduled callback."""
        time, _seq, fn, value, exc = heapq.heappop(self._queue)
        self.now = time
        self.events_processed += 1
        self._invoke(fn, value, exc)

    def _invoke(self, fn: Callable, value: Any, exc: Any) -> None:
        # Two callback shapes: Event.succeed(value) and Process._resume(v, e).
        if getattr(fn, "__func__", None) is Event.succeed:
            fn(value)
        else:
            fn(value, exc)

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains or the clock passes *until*.

        Returns the final simulation time.
        """
        while self._queue:
            time = self._queue[0][0]
            if until is not None and time > until:
                self.now = until
                return self.now
            time, _seq, fn, value, exc = heapq.heappop(self._queue)
            self.now = time
            self.events_processed += 1
            self._invoke(fn, value, exc)
        return self.now

    def run_process(self, gen: Generator) -> Any:
        """Convenience: start *gen*, run to completion, return its result."""
        proc = self.process(gen)
        self.run()
        if not proc.done:
            raise SimError(f"process {proc.name!r} never completed (deadlock?)")
        return proc.result

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when every input event has succeeded."""
        events = list(events)
        gate = Event(self)
        remaining = len(events)
        if remaining == 0:
            gate.succeed([])
            return gate
        results: list[Any] = [None] * remaining

        def make_waiter(i: int, evt: Event):
            def waiter():
                nonlocal remaining
                value = yield evt
                results[i] = value
                remaining -= 1
                if remaining == 0 and not gate.triggered:
                    gate.succeed(results)

            return waiter()

        for i, evt in enumerate(events):
            self.process(make_waiter(i, evt), name=f"all_of[{i}]")
        return gate


class Store:
    """Unbounded FIFO channel with blocking get."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event yielding the next item (immediately if available)."""
        evt = self.env.event()
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def __len__(self) -> int:
        return len(self._items)


class Resource:
    """Counted resource (e.g. CPU cores shared by co-located instances)."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    def acquire(self) -> Event:
        evt = self.env.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self.in_use <= 0:
                raise SimError("release without acquire")
            self.in_use -= 1
