"""Simulated ZHT deployments at scale.

:class:`SimulatedCluster` wires the DES engine, a network topology, the
calibrated latency/service models, and — for ZHT runs — the *same*
:class:`~repro.core.server.ZHTServerCore` /
:class:`~repro.core.client.OpDriver` state machines the real transports
use.  Baseline systems (Memcached-, Cassandra-like) run a plain
dictionary handler with their own service models, since only their
performance envelope (not their protocol semantics) is compared in the
paper.

One simulated **client process per instance** issues operations
sequentially (the paper's 1:1 client:server deployment); servers are
single-threaded queues (the event-driven architecture); multiple
instances per node time-share the node's cores via the service-time
scaling in :func:`~repro.sim.network.zht_instance_service`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.client import ZHTClientCore
from ..core.config import ReplicationMode, ZHTConfig
from ..core.errors import Status
from ..core.membership import (
    Address,
    InstanceInfo,
    MembershipTable,
    NodeInfo,
    new_instance_id,
)
from ..core.protocol import MUTATING_OPS, OpCode, Request, Response
from ..core.server import ZHTServerCore
from ..faults.plan import FaultKind
from .engine import Environment, Store
from .metrics import LatencyStats, RunResult
from .network import (
    BGP_TORUS_LINK,
    ZHT_BGP,
    LinkModel,
    ServiceModel,
    zht_instance_service,
)
from .topology import SwitchedTopology, TorusTopology
from .workload import MicroBenchmarkWorkload

#: Fixed wire overhead estimate per message (headers + framing), bytes.
_MSG_OVERHEAD = 24

#: Fraction of a full service time charged per routing forward at an
#: intermediate server (decode + next-hop lookup + re-encode).
_FORWARD_SERVICE_FACTOR = 0.4

#: Primary-side cost of dispatching one fire-and-forget replica update,
#: as a fraction of the service time (serialize + send syscall).
_REPLICA_DISPATCH_FACTOR = 0.15

#: Replica-side cost of applying an asynchronous update, as a fraction
#: of the service time (no response is generated).
_REPLICA_APPLY_FACTOR = 0.8


@dataclass
class SimSpec:
    """Everything defining one simulated deployment."""

    num_nodes: int
    instances_per_node: int = 1
    link: LinkModel = BGP_TORUS_LINK
    service: ServiceModel = ZHT_BGP
    topology: str = "torus"  # "torus" | "switch"
    cores_per_node: int = 4
    num_replicas: int = 0
    #: Replication mode for the sim: "none" (fire-and-forget, ZHT's
    #: Figure 12 configuration), "async" (sync secondary), "sync" (all).
    replication_mode: str = ReplicationMode.NONE
    partitions_per_instance: int = 1
    #: Run the real ZHT server/client cores (True) or a dict handler
    #: with the same network envelope (baselines).
    real_core: bool = True
    seed: int = 0
    #: Optional :class:`~repro.faults.plan.FaultPlan` — enables message
    #: drop/delay/duplicate injection in :meth:`SimulatedCluster._deliver`
    #: and scheduled node crashes, so scale sweeps can run under churn.
    faults: object | None = None
    #: Override the auto-built :class:`ZHTConfig` (timeouts, retries, ...).
    #: Partition/replica counts must match the spec.
    config: ZHTConfig | None = None

    @property
    def num_instances(self) -> int:
        return self.num_nodes * self.instances_per_node

    @property
    def num_partitions(self) -> int:
        return self.num_instances * self.partitions_per_instance


@dataclass
class _SimMessage:
    request: Request
    reply_event: object  # engine Event or None for one-way
    src_node: int


class _DictHandler:
    """Minimal KV semantics for baseline systems."""

    def __init__(self):
        self.data: dict[bytes, bytes] = {}

    def handle(self, request: Request) -> Response:
        op = request.op
        if op == OpCode.INSERT:
            self.data[request.key] = request.value
            return Response(status=Status.OK, request_id=request.request_id)
        if op == OpCode.LOOKUP:
            value = self.data.get(request.key)
            if value is None:
                return Response(
                    status=Status.KEY_NOT_FOUND, request_id=request.request_id
                )
            return Response(
                status=Status.OK, value=value, request_id=request.request_id
            )
        if op == OpCode.REMOVE:
            self.data.pop(request.key, None)
            return Response(status=Status.OK, request_id=request.request_id)
        if op == OpCode.APPEND:
            self.data[request.key] = self.data.get(request.key, b"") + request.value
            return Response(status=Status.OK, request_id=request.request_id)
        return Response(status=Status.OK, request_id=request.request_id)


class SimulatedCluster:
    """A ZHT (or baseline KV) deployment inside the DES engine."""

    def __init__(self, spec: SimSpec):
        self.spec = spec
        self.env = Environment()
        self.rng = random.Random(spec.seed)
        if spec.topology == "torus":
            self.topology = TorusTopology.for_nodes(spec.num_nodes)
        elif spec.topology == "switch":
            self.topology = SwitchedTopology(spec.num_nodes)
        else:
            raise ValueError(f"unknown topology {spec.topology!r}")

        self.effective_service = zht_instance_service(
            spec.service, spec.instances_per_node, spec.cores_per_node
        )

        self._build_membership()
        self.queues: list[Store] = [Store(self.env) for _ in range(spec.num_instances)]
        self._addr_to_index = {
            inst.address: i for i, inst in enumerate(self.instances)
        }
        #: Instance indices whose node has crashed: their queued and
        #: future messages are discarded (a dead server is a blackhole).
        self.dead_instances: set[int] = set()
        if spec.real_core:
            self.config = spec.config or ZHTConfig(
                num_partitions=spec.num_partitions,
                num_replicas=spec.num_replicas,
                replication_mode=(
                    spec.replication_mode
                    if spec.replication_mode != ReplicationMode.NONE
                    else ReplicationMode.NONE
                ),
                transport="local",
            )
            self.handlers = [
                ZHTServerCore(
                    inst, self.membership, self.config, clock=lambda: self.env.now
                )
                for inst in self.instances
            ]
        else:
            self.config = spec.config or ZHTConfig(
                num_partitions=spec.num_partitions, transport="local"
            )
            self.handlers = [_DictHandler() for _ in self.instances]

        for i in range(spec.num_instances):
            self.env.process(self._server_proc(i), name=f"server-{i}")
        if spec.faults is not None:
            for at_time, target in spec.faults.scheduled_crashes():
                self.env.process(
                    self._crash_at(at_time, target), name=f"crash-{target}"
                )

    # ------------------------------------------------------------------

    def _build_membership(self) -> None:
        spec = self.spec
        nodes, instances = [], []
        for n in range(spec.num_nodes):
            node_id = f"n{n}"
            nodes.append(NodeInfo(node_id, Address(node_id, 0)))
            for i in range(spec.instances_per_node):
                instances.append(
                    InstanceInfo(
                        new_instance_id(self.rng), node_id, Address(node_id, i + 1)
                    )
                )
        self.membership = MembershipTable.bootstrap(
            spec.num_partitions, nodes, instances
        )
        self.instances = instances
        self._node_index = {f"n{n}": n for n in range(spec.num_nodes)}

    def _node_of_instance(self, index: int) -> int:
        return self._node_index[self.instances[index].node_id]

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def kill_node(self, target: str) -> None:
        """Abruptly fail a node (by node id, e.g. ``"n1"``) or a single
        instance (by address string): its messages vanish from now on."""
        for i, inst in enumerate(self.instances):
            if inst.node_id == target or str(inst.address) == target:
                self.dead_instances.add(i)

    def _crash_at(self, at_time: float, target: str):
        yield self.env.timeout(at_time)
        self.kill_node(target)
        self.spec.faults.crash_target(target)

    def _first_of(self, *events):
        """An event succeeding with the index of whichever input event
        triggers first (a race — used to put timeouts on sim round trips
        that faults may leave unanswered)."""
        gate = self.env.event()

        def watch(i, evt):
            yield evt
            if not gate.triggered:
                gate.succeed(i)

        for i, evt in enumerate(events):
            self.env.process(watch(i, evt), name=f"first-of-{i}")
        return gate

    @property
    def _faulty(self) -> bool:
        return self.spec.faults is not None or bool(self.dead_instances)

    # ------------------------------------------------------------------
    # Message transport
    # ------------------------------------------------------------------

    def _one_way(self, src_node: int, dst_node: int, nbytes: int) -> float:
        return self.spec.link.one_way(
            self.topology.hops(src_node, dst_node), nbytes
        )

    def _deliver(self, dst_index: int, message: _SimMessage, src_node: int) -> None:
        """Schedule *message* to arrive at instance *dst_index*."""
        copies = 1
        extra_delay = 0.0
        plan = self.spec.faults
        if plan is not None:
            for record, rule in plan.message_faults(
                target=str(self.instances[dst_index].address),
                op=message.request.op.name,
            ):
                if record.kind in (FaultKind.DROP, FaultKind.RESET):
                    return  # the wire ate it
                if record.kind in (FaultKind.DELAY, FaultKind.STALL):
                    extra_delay += rule.delay
                elif record.kind is FaultKind.DUPLICATE:
                    copies += 1
        if dst_index in self.dead_instances:
            return  # blackhole: packets to a crashed instance vanish
        size = (
            _MSG_OVERHEAD
            + len(message.request.key)
            + len(message.request.value)
            + len(message.request.payload)
        )
        delay = (
            self._one_way(src_node, self._node_of_instance(dst_index), size)
            + extra_delay
        )

        def arrive(_value=None):
            self.queues[dst_index].put(message)

        for _ in range(copies):
            evt = self.env.timeout(delay)
            evt._wait(_CallbackWaiter(arrive))

    # ------------------------------------------------------------------
    # Server process
    # ------------------------------------------------------------------

    def _server_proc(self, index: int):
        env = self.env
        spec = self.spec
        queue = self.queues[index]
        handler = self.handlers[index]
        my_node = self._node_of_instance(index)
        service = self.effective_service

        while True:
            message: _SimMessage = yield queue.get()
            request = message.request

            if index in self.dead_instances:
                continue  # crashed: drain and discard without replying

            if request.op == OpCode.PING and request.payload == b"fwd":
                # Routing forward at an intermediate server (log-routing
                # baselines): partial service, immediate ack.
                yield env.timeout(service.service_time * _FORWARD_SERVICE_FACTOR)
                if message.reply_event is not None:
                    self._reply(message, Response(status=Status.OK), my_node)
                continue

            if request.op == OpCode.REPLICA_UPDATE and message.reply_event is None:
                # Fire-and-forget replica apply: no response is built.
                cost = (
                    service.service_time * _REPLICA_APPLY_FACTOR
                    + service.persistence_time
                )
            elif request.op in MUTATING_OPS:
                cost = service.service_time + service.persistence_time
            else:
                cost = service.service_time
            yield env.timeout(cost)

            if spec.real_core:
                result = handler.handle(request)
                response = result.response
                for addr, update in result.async_sends:
                    yield env.timeout(
                        service.service_time * _REPLICA_DISPATCH_FACTOR
                    )
                    self._deliver(
                        self._addr_to_index[addr],
                        _SimMessage(update, None, my_node),
                        my_node,
                    )
                if result.sync_sends:
                    # The response is held until every synchronous replica
                    # acks, but the server loop keeps serving — otherwise
                    # two servers replicating to each other deadlock (an
                    # event-driven server never blocks on the network).
                    env.process(
                        self._sync_replicate_then_reply(
                            result.sync_sends, message, response, my_node
                        ),
                        name="sync-repl",
                    )
                    continue
            else:
                response = handler.handle(request)

            if request.op == OpCode.REPLICA_UPDATE and message.reply_event is None:
                # Fire-and-forget replica apply: partial cost, no response.
                continue
            if response is not None and message.reply_event is not None:
                self._reply(message, response, my_node)

    def _sync_replicate_then_reply(
        self, sync_sends, message: _SimMessage, response: Response, my_node: int
    ):
        for addr, update in sync_sends:
            ack = self.env.event()
            self._deliver(
                self._addr_to_index[addr],
                _SimMessage(update, ack, my_node),
                my_node,
            )
            if self._faulty:
                # Under fault injection the ack may never come (replica
                # crashed, update dropped): race it against the timeout
                # and degrade the response per §III.J.
                winner = yield self._first_of(
                    ack, self.env.timeout(self.config.request_timeout)
                )
                if winner == 1:
                    response.status = Status.REPLICATION_ERROR
                    break
            else:
                yield ack
        if response is not None and message.reply_event is not None:
            self._reply(message, response, my_node)

    def _reply(self, message: _SimMessage, response: Response, my_node: int) -> None:
        size = _MSG_OVERHEAD + len(response.value)
        delay = self._one_way(my_node, message.src_node, size)

        def arrive(_value=None):
            # A duplicated request can produce two replies; only the
            # first settles the waiter.
            if not message.reply_event.triggered:
                message.reply_event.succeed(response)

        evt = self.env.timeout(delay)
        evt._wait(_CallbackWaiter(arrive))

    # ------------------------------------------------------------------
    # Client process
    # ------------------------------------------------------------------

    def _client_proc(self, client_id: int, ops, stats: LatencyStats, done: list):
        env = self.env
        spec = self.spec
        service = spec.service
        my_node = self._node_of_instance(client_id)
        client_core = ZHTClientCore(
            self.membership,
            ZHTConfig(num_partitions=spec.num_partitions, transport="local"),
            rng=random.Random((spec.seed << 16) ^ client_id),
        )
        hash_name = client_core.config.hash_name
        forwards = service.routing_forwards(spec.num_instances)

        # Stagger start times so clients do not tick in lockstep.
        yield env.timeout(self.rng.random() * 1e-4)

        for op, key, value in ops:
            t0 = env.now
            yield env.timeout(service.client_overhead)

            # Target instance: zero-hop via membership for ZHT; a random
            # entry point + log(N) forwards for log-routing baselines.
            pid = self.membership.partition_of_key(key, hash_name)
            target = self._addr_to_index[
                self.membership.owner_of_partition(pid).address
            ]

            if service.connect_round_trips:
                # TCP without connection caching: handshake round trip.
                dst_node = self._node_of_instance(target)
                rtt = 2 * self._one_way(my_node, dst_node, _MSG_OVERHEAD)
                yield env.timeout(rtt * service.connect_round_trips)

            for _ in range(forwards):
                hop = self.rng.randrange(spec.num_instances)
                ack = env.event()
                self._deliver(
                    hop,
                    _SimMessage(
                        Request(op=OpCode.PING, payload=b"fwd"), ack, my_node
                    ),
                    my_node,
                )
                yield ack

            reply = env.event()
            request = Request(
                op=op,
                key=key,
                value=value,
                request_id=client_core.allocate_request_id(),
                epoch=self.membership.epoch,
            )
            self._deliver(target, _SimMessage(request, reply, my_node), my_node)
            if self._faulty:
                # Under churn the reply may never arrive; give up after
                # the configured timeout rather than deadlocking the run.
                winner = yield self._first_of(
                    reply, env.timeout(self.config.request_timeout)
                )
                if winner == 1:
                    continue
                response = reply.value
            else:
                response = yield reply
                assert response.status in (
                    Status.OK,
                    Status.KEY_NOT_FOUND,
                ), response
            stats.record(env.now - t0)
        done[0] += 1

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run_workload(self, workload: MicroBenchmarkWorkload) -> RunResult:
        """Run one client per instance through *workload*; returns metrics."""
        stats = LatencyStats()
        done = [0]
        for client_id in range(self.spec.num_instances):
            self.env.process(
                self._client_proc(
                    client_id, workload.client_ops(client_id), stats, done
                ),
                name=f"client-{client_id}",
            )
        self.env.run()
        if done[0] != self.spec.num_instances:
            raise RuntimeError(
                f"only {done[0]}/{self.spec.num_instances} clients finished"
            )
        return RunResult(
            system=self.spec.service.name,
            num_nodes=self.spec.num_nodes,
            instances_per_node=self.spec.instances_per_node,
            ops=stats.count,
            duration_s=self.env.now,
            latency=stats,
        )


class _CallbackWaiter:
    """Adapter letting a plain callback wait on an engine event."""

    __slots__ = ("_fn",)

    def __init__(self, fn):
        self._fn = fn

    def _resume(self, value, exc):
        if exc is None:
            self._fn(value)


def simulate(
    num_nodes: int,
    *,
    ops_per_client: int = 16,
    service: ServiceModel = ZHT_BGP,
    link: LinkModel = BGP_TORUS_LINK,
    topology: str = "torus",
    instances_per_node: int = 1,
    num_replicas: int = 0,
    replication_mode: str = ReplicationMode.NONE,
    real_core: bool = True,
    include_remove: bool = True,
    seed: int = 0,
) -> RunResult:
    """One-call helper: build a cluster, run the micro-benchmark, return
    the metrics row."""
    spec = SimSpec(
        num_nodes=num_nodes,
        instances_per_node=instances_per_node,
        link=link,
        service=service,
        topology=topology,
        num_replicas=num_replicas,
        replication_mode=replication_mode,
        real_core=real_core,
        seed=seed,
    )
    cluster = SimulatedCluster(spec)
    workload = MicroBenchmarkWorkload(
        ops_per_client=ops_per_client, seed=seed, include_remove=include_remove
    )
    return cluster.run_workload(workload)
