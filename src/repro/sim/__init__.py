"""Discrete-event simulation substrate for scale experiments.

The paper validated a PeerSim simulation against ≤8K-node Blue Gene/P
runs (3% average error) and used it beyond; this package plays the same
role: :mod:`~repro.sim.engine` is the DES kernel,
:mod:`~repro.sim.cluster` runs real ZHT cores over modeled networks,
:mod:`~repro.sim.network` holds the calibrated constants, and
:mod:`~repro.sim.analytic` extends Figure 11 to 1M nodes in closed form.
"""

from .analytic import (
    FIG11_SCALES,
    predicted_efficiency,
    predicted_latency_ms,
    predicted_throughput_ops_s,
)
from .cluster import SimSpec, SimulatedCluster, simulate
from .engine import Environment, Event, Process, Resource, SimError, Store
from .metrics import LatencyStats, RunResult
from .network import (
    BGP_TORUS_LINK,
    CASSANDRA_CLUSTER,
    CLUSTER_ETHERNET_LINK,
    MEMCACHED_BGP,
    MEMCACHED_CLUSTER,
    ZHT_BGP,
    ZHT_BGP_NO_CONN_CACHE,
    ZHT_CLUSTER,
    LinkModel,
    LogRoutingServiceModel,
    ServiceModel,
    zht_instance_service,
)
from .topology import SwitchedTopology, TorusTopology, torus_dims_for
from .workload import (
    KEY_BYTES,
    VALUE_BYTES,
    AppendWorkload,
    MicroBenchmarkWorkload,
    ZipfWorkload,
)

__all__ = [
    "AppendWorkload",
    "BGP_TORUS_LINK",
    "CASSANDRA_CLUSTER",
    "CLUSTER_ETHERNET_LINK",
    "Environment",
    "Event",
    "FIG11_SCALES",
    "KEY_BYTES",
    "LatencyStats",
    "LinkModel",
    "LogRoutingServiceModel",
    "MEMCACHED_BGP",
    "MEMCACHED_CLUSTER",
    "MicroBenchmarkWorkload",
    "Process",
    "Resource",
    "RunResult",
    "ServiceModel",
    "SimError",
    "SimSpec",
    "SimulatedCluster",
    "Store",
    "SwitchedTopology",
    "TorusTopology",
    "VALUE_BYTES",
    "ZHT_BGP",
    "ZHT_BGP_NO_CONN_CACHE",
    "ZHT_CLUSTER",
    "ZipfWorkload",
    "predicted_efficiency",
    "predicted_latency_ms",
    "predicted_throughput_ops_s",
    "simulate",
    "torus_dims_for",
    "zht_instance_service",
]
