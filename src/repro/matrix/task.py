"""Task model for the MATRIX many-task computing framework."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass


class TaskState(enum.Enum):
    """Lifecycle of a MATRIX task, mirrored into ZHT for monitoring."""

    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class Task:
    """One unit of work.

    ``duration_s`` drives simulated/sleep tasks (the paper's workload:
    "100K tasks of various lengths, ranging from 0 seconds (NO-OP) to 1,
    2, 4, and 8 seconds"); real executions may instead carry a callable
    via :attr:`payload`.
    """

    task_id: str
    duration_s: float = 0.0
    payload: object = None
    state: TaskState = TaskState.WAITING
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    worker: int | None = None
    result: object = None

    def status_record(self) -> bytes:
        """Serialized status for the ZHT task-state store ("The task
        status is distributed across all the compute nodes, and the
        client can look up the status information by relying on ZHT")."""
        return json.dumps(
            {
                "id": self.task_id,
                "state": self.state.value,
                "worker": self.worker,
                "submitted": self.submitted_at,
                "started": self.started_at,
                "finished": self.finished_at,
            },
            separators=(",", ":"),
        ).encode()

    @staticmethod
    def parse_status(record: bytes) -> dict:
        return json.loads(record.decode())
