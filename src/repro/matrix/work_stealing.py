"""Adaptive work stealing — MATRIX's load-balancing algorithm.

MATRIX "utilizes the adaptive work stealing algorithm to achieve
distributed load balancing" [51].  The algorithm implemented here
follows that design:

* every executor owns a local deque of ready tasks;
* an idle executor contacts ``num_victims`` random peers, asks each for
  its queue length, and steals **half** the queue of the most-loaded one
  (steal-half is the provably efficient policy);
* failed steal attempts back off exponentially (``poll_interval`` doubles
  up to a cap, resetting on success) — the *adaptive* part, which keeps
  steal traffic negligible when the system is drained.

The module is deliberately transport-free: `StealPolicy` decides *whom*
to ask and *how long* to wait, and works identically in the DES
scheduler and the thread-based runtime.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field


@dataclass
class StealPolicy:
    """Victim selection + adaptive backoff state for one executor."""

    executor_id: int
    num_executors: int
    num_victims: int = 2
    initial_poll_interval: float = 0.001
    max_poll_interval: float = 0.1
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self):
        if self.num_executors <= 0:
            raise ValueError("num_executors must be positive")
        if not 0 <= self.executor_id < self.num_executors:
            raise ValueError("executor_id out of range")
        self.poll_interval = self.initial_poll_interval

    def choose_victims(self) -> list[int]:
        """Random distinct peers to probe (never self)."""
        others = self.num_executors - 1
        if others <= 0:
            return []
        count = min(self.num_victims, others)
        victims: set[int] = set()
        while len(victims) < count:
            v = self.rng.randrange(self.num_executors)
            if v != self.executor_id:
                victims.add(v)
        return sorted(victims)

    def on_steal_failure(self) -> float:
        """Record a dry steal; returns how long to back off before retry."""
        interval = self.poll_interval
        self.poll_interval = min(self.poll_interval * 2, self.max_poll_interval)
        return interval

    def on_steal_success(self) -> None:
        self.poll_interval = self.initial_poll_interval


def steal_count(victim_queue_len: int) -> int:
    """How many tasks to take from a victim: half, rounded down."""
    return victim_queue_len // 2


def execute_steal(victim: deque, thief: deque) -> int:
    """Move half of *victim*'s tasks (from the back) to *thief*.

    Returns the number of tasks moved.  Taking from the back steals the
    coldest work, preserving the victim's locality at the front.
    """
    count = steal_count(len(victim))
    for _ in range(count):
        thief.append(victim.pop())
    return count


def pick_most_loaded(queue_lengths: dict[int, int]) -> int | None:
    """The victim worth stealing from, or None if all are (near) empty."""
    if not queue_lengths:
        return None
    victim, length = max(queue_lengths.items(), key=lambda kv: kv[1])
    if length < 2:
        return None  # nothing worth taking half of
    return victim
