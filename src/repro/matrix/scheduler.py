"""MATRIX — distributed many-task execution framework (§V.C).

Two runtimes over the same work-stealing policy:

* :class:`MatrixSimulation` — DES: N executors with local queues, adaptive
  work stealing between them, and per-task ZHT interactions (submit,
  status update on start, status update on completion) charged at the
  calibrated ZHT latency for the deployment scale.  Used for the
  Figure 18/19 reproductions, where throughput "tracked well the increase
  in ZHT performance".
* :class:`MatrixOnZHT` — real execution: tasks run as Python callables on
  a thread pool per executor, with task state genuinely stored in and
  monitored through a live ZHT deployment (the integration the paper
  describes: "ZHT to submit tasks and monitor the task execution progress
  by the clients").
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque

from ..api import ZHT, LocalCluster
from ..baselines.falkon import SchedulerResult
from ..sim.analytic import predicted_latency_s
from ..sim.engine import Environment
from .task import Task, TaskState
from .work_stealing import StealPolicy, execute_steal, pick_most_loaded


class MatrixSimulation:
    """DES model of MATRIX on an HEC machine.

    Parameters
    ----------
    num_executors:
        Compute nodes running MATRIX executors (the paper uses 1 executor
        per node, 4 cores each on the Blue Gene/P).
    cores_per_executor:
        Concurrent tasks per executor.
    zht_ops_per_task:
        ZHT round trips on a task's critical path (submit + running-state
        update + completion update = 3).
    zht_latency_s:
        Per-ZHT-op latency; defaults to the calibrated model at this
        scale.
    task_overhead_s:
        Fixed executor-side cost per task (fork/exec, logging) — the C
        prototype's measured constant.
    """

    def __init__(
        self,
        num_executors: int,
        *,
        cores_per_executor: int = 4,
        zht_ops_per_task: int = 3,
        zht_latency_s: float | None = None,
        task_overhead_s: float = 0.0,
        steal_victims: int = 2,
        seed: int = 0,
    ):
        if num_executors <= 0:
            raise ValueError("num_executors must be positive")
        self.num_executors = num_executors
        self.cores_per_executor = cores_per_executor
        self.zht_ops_per_task = zht_ops_per_task
        self.zht_latency_s = (
            zht_latency_s
            if zht_latency_s is not None
            else predicted_latency_s(num_executors)
        )
        self.task_overhead_s = task_overhead_s
        self.steal_victims = steal_victims
        self.seed = seed
        self.steals_attempted = 0
        self.steals_successful = 0
        self.tasks_stolen = 0

    def run(
        self,
        num_tasks: int,
        task_duration_s: float = 0.0,
        *,
        submit_to: str = "round-robin",  # or "one" (all tasks on node 0)
    ) -> SchedulerResult:
        env = Environment()
        queues: list[deque] = [deque() for _ in range(self.num_executors)]
        remaining = [num_tasks]

        # Submission: "the client could submit tasks to arbitrary node, or
        # to all the nodes in a balanced distribution".
        if submit_to == "round-robin":
            for i in range(num_tasks):
                queues[i % self.num_executors].append(task_duration_s)
        elif submit_to == "one":
            for _ in range(num_tasks):
                queues[0].append(task_duration_s)
        else:
            raise ValueError(f"unknown submission mode {submit_to!r}")

        def executor(eid: int):
            policy = StealPolicy(
                eid,
                self.num_executors,
                num_victims=self.steal_victims,
                rng=random.Random((self.seed << 16) ^ eid),
            )
            my_queue = queues[eid]
            while remaining[0] > 0:
                if my_queue:
                    batch = []
                    for _ in range(min(self.cores_per_executor, len(my_queue))):
                        batch.append(my_queue.popleft())
                    # ZHT traffic for the batch's tasks is concurrent with
                    # execution on other cores; charge the critical path
                    # of one task's ZHT ops plus the longest task.
                    yield env.timeout(
                        self.zht_ops_per_task * self.zht_latency_s
                        + self.task_overhead_s
                    )
                    yield env.timeout(max(batch))
                    remaining[0] -= len(batch)
                    policy.on_steal_success()
                    continue
                # Idle: try to steal.
                victims = policy.choose_victims()
                self.steals_attempted += 1
                # Probing victims costs one ZHT-scale round trip each.
                yield env.timeout(self.zht_latency_s * max(1, len(victims)))
                lengths = {v: len(queues[v]) for v in victims}
                victim = pick_most_loaded(lengths)
                if victim is None:
                    backoff = policy.on_steal_failure()
                    yield env.timeout(backoff)
                    continue
                moved = execute_steal(queues[victim], my_queue)
                if moved:
                    self.steals_successful += 1
                    self.tasks_stolen += moved
                    policy.on_steal_success()

        for eid in range(self.num_executors):
            env.process(executor(eid))
        env.run()
        return SchedulerResult(
            system="matrix",
            num_workers=self.num_executors * self.cores_per_executor,
            tasks=num_tasks,
            task_duration_s=task_duration_s,
            makespan_s=env.now,
        )


class MatrixOnZHT:
    """Real MATRIX: callables executed on threads, state kept in ZHT.

    Built on a :class:`~repro.api.LocalCluster` (or any object exposing
    ``client() -> ZHT``); every task's lifecycle is recorded under
    ``task:<id>`` with :meth:`~repro.matrix.task.Task.status_record`, so
    any client can monitor progress with plain lookups.
    """

    def __init__(self, cluster: LocalCluster, num_executors: int = 4, *, seed: int = 0):
        if num_executors <= 0:
            raise ValueError("num_executors must be positive")
        self.cluster = cluster
        self.num_executors = num_executors
        self.queues: list[deque[Task]] = [deque() for _ in range(num_executors)]
        self._locks = [threading.Lock() for _ in range(num_executors)]
        self._submit_client = cluster.client(seed=seed)
        self._rr = 0
        self.completed: list[Task] = []
        self._completed_lock = threading.Lock()

    # -- client API --------------------------------------------------------

    def submit(self, task: Task) -> None:
        """Submit to the next executor round-robin; record state in ZHT."""
        task.state = TaskState.WAITING
        task.submitted_at = time.time()
        self._submit_client.insert(f"task:{task.task_id}", task.status_record())
        eid = self._rr % self.num_executors
        self._rr += 1
        with self._locks[eid]:
            self.queues[eid].append(task)

    def status(self, task_id: str) -> dict:
        """Look the task's state up in ZHT (the monitoring path)."""
        return Task.parse_status(self._submit_client.lookup(f"task:{task_id}"))

    # -- execution ------------------------------------------------------------

    def run_to_completion(self, total_tasks: int) -> list[Task]:
        """Run executor threads until *total_tasks* tasks have finished."""
        threads = [
            threading.Thread(target=self._executor_loop, args=(eid, total_tasks))
            for eid in range(self.num_executors)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return self.completed

    def _executor_loop(self, eid: int, total_tasks: int) -> None:
        zht = self.cluster.client(seed=1000 + eid)
        policy = StealPolicy(
            eid, self.num_executors, rng=random.Random(eid * 7919)
        )
        while True:
            with self._completed_lock:
                if len(self.completed) >= total_tasks:
                    return
            task = self._pop_local(eid)
            if task is None:
                if not self._try_steal(eid, policy):
                    time.sleep(policy.on_steal_failure())
                continue
            self._execute(task, eid, zht)

    def _pop_local(self, eid: int) -> Task | None:
        with self._locks[eid]:
            if self.queues[eid]:
                return self.queues[eid].popleft()
        return None

    def _try_steal(self, eid: int, policy: StealPolicy) -> bool:
        victims = policy.choose_victims()
        lengths = {}
        for v in victims:
            with self._locks[v]:
                lengths[v] = len(self.queues[v])
        victim = pick_most_loaded(lengths)
        if victim is None:
            return False
        first, second = sorted((eid, victim))
        # The lint conflates the per-executor lock family into one id.
        # zht-lint: ignore[LOCK004] distinct _locks[i] members, ordered by executor id
        with self._locks[first], self._locks[second]:
            moved = execute_steal(self.queues[victim], self.queues[eid])
        if moved:
            policy.on_steal_success()
            return True
        return False

    def _execute(self, task: Task, eid: int, zht: ZHT) -> None:
        task.state = TaskState.RUNNING
        task.worker = eid
        task.started_at = time.time()
        zht.insert(f"task:{task.task_id}", task.status_record())
        try:
            if callable(task.payload):
                task.result = task.payload()
            elif task.duration_s > 0:
                time.sleep(task.duration_s)
            task.state = TaskState.FINISHED
        except Exception as exc:  # task failure is a result, not a crash
            task.result = exc
            task.state = TaskState.FAILED
        task.finished_at = time.time()
        zht.insert(f"task:{task.task_id}", task.status_record())
        with self._completed_lock:
            self.completed.append(task)
