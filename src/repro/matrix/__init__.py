"""MATRIX: distributed many-task execution built on ZHT (§V.C)."""

from .scheduler import MatrixOnZHT, MatrixSimulation
from .task import Task, TaskState
from .work_stealing import (
    StealPolicy,
    execute_steal,
    pick_most_loaded,
    steal_count,
)

__all__ = [
    "MatrixOnZHT",
    "MatrixSimulation",
    "StealPolicy",
    "Task",
    "TaskState",
    "execute_steal",
    "pick_most_loaded",
    "steal_count",
]
