"""Lint engine: interprocedural core, suppression policy, reports.

The engine owns everything the checkers share, computed **once** per
lint run (DESIGN.md §17):

* file walking + a per-file AST cache (:class:`Project` — every source
  file is parsed exactly once, all checkers reuse the same
  :class:`~.astutil.ModuleInfo` objects);
* per-function lock/call facts (:func:`collect_lock_facts`, cached on
  the Project) — one body walk records attribute accesses, call sites,
  and lock acquisitions with the held-lock set at each point;
* the project-wide :class:`CallGraph` — call edges resolved through
  class hierarchies and ``self.``-attribute dispatch, with source
  provenance on every edge — plus the generic fixpoints every
  interprocedural checker needs: :meth:`CallGraph.propagate` (taint a
  summary up the graph with a human-readable "via" chain),
  :meth:`CallGraph.propagate_sets` (set union, e.g. transitively
  acquired locks), and :meth:`CallGraph.reachable_from` (forward
  reachability with witness paths, e.g. "what runs on the event
  loop");
* the blocking-call vocabulary (:func:`blocking_call_description`)
  shared by the BLOCK and LOOP checkers;
* the reporting pipeline: suppressions, fingerprints, baseline
  diffing, JSON and SARIF output, per-checker timings.

Suppression policy (DESIGN.md §11): every finding on the tree is either
**fixed** or **suppressed with a one-line justification**.  Two ways to
suppress, both requiring a reason:

* inline, at the offending line::

      self._value += 1  # zht-lint: ignore[LOCK001] atomic int read

* in the committed baseline file ``.zhtlint.toml``::

      [[suppress]]
      code = "BLOCK001"
      path = "src/repro/novoht/novoht.py"
      symbol = "NoVoHT.*"            # fnmatch over the enclosing scope
      reason = "WAL fsync must stay inside the store lock (group commit)"

``.zhtlint.toml`` may also carry a ``[guarded]`` registry mapping
``"Class.attr"`` to its lock for code that cannot take an inline
``# guarded-by:`` annotation, and ``[options] roots = [...]``.

A suppression without a reason is a configuration error (exit 2), and
suppressions that matched nothing are reported so the baseline cannot
silently rot.

Distinct from suppressions, a **baseline** file (``--baseline``) holds
line-independent fingerprints of known findings: a baselined finding is
reported but does not fail the run, so CI can gate on *new* findings
only.  ``--update-baseline`` rewrites the file from the current tree.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import json
import re
import time
import tomllib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from .astutil import (
    FunctionInfo,
    LockId,
    ModuleInfo,
    ProjectIndex,
    TypeResolver,
    _called_name,
    iter_functions,
    parse_module,
)

#: Default directories (relative to the repo root) the engine scans.
DEFAULT_ROOTS = ("src/repro",)

_INLINE_RE = re.compile(r"zht-lint:\s*ignore\[([A-Z0-9,\s]+)\]\s*(.*)")

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


# ---------------------------------------------------------------------------
# Blocking-call vocabulary (shared by blocking-under-lock and event-loop)
# ---------------------------------------------------------------------------

#: Methods that are blocking wherever they appear.
SOCKET_METHODS = frozenset(
    {
        "sendall",
        "sendto",
        "recv",
        "recvfrom",
        "recv_into",
        "accept",
        "connect",
        "create_connection",
    }
)

_SUBPROCESS_CALLS = frozenset({"run", "call", "check_call", "check_output"})


def blocking_call_description(call: ast.Call) -> str | None:
    """A description when *call* is intrinsically blocking, else None.

    ``.wait()`` is handled separately (held-condition exemption).

    Deliberately name-based on *distinctive* methods only: bare ``send``
    / ``get`` / ``put`` / ``join`` are not matched (generator
    ``.send()``, ``dict.get()``, ``str.join()`` would drown the signal);
    socket traffic in this tree goes through
    ``sendall``/``sendto``/``recv``/``recvfrom``.

    File I/O is covered by ``.flush()``, ``os.replace``/``os.rename``
    and ``shutil.copyfileobj`` — the moves where buffered writes hit the
    OS.  Bare ``.write()`` is deliberately not matched (too generic to
    stay name-based), but any full-file writer worth flagging flushes or
    renames before it matters, and the transitive pass then carries the
    taint to whoever calls it under a lock (``checkpoint`` →
    ``write_checkpoint`` → ``f.flush()``).
    """
    chain = _called_name(call)
    if not chain:
        return None
    last = chain[-1]
    if last in SOCKET_METHODS:
        return f"socket .{last}()"
    if last == "fsync" and (len(chain) == 1 or chain[-2] == "os"):
        return "os.fsync()"
    if last == "sleep" and len(chain) >= 2 and chain[-2] == "time":
        return "time.sleep()"
    if last == "flush":
        return "file .flush()"
    if last in ("replace", "rename") and len(chain) >= 2 and chain[-2] == "os":
        return f"os.{last}()"
    if last == "copyfileobj" and len(chain) >= 2 and chain[-2] == "shutil":
        return "shutil.copyfileobj()"
    if last in _SUBPROCESS_CALLS and len(chain) >= 2 and chain[-2] == "subprocess":
        return f"subprocess.{last}()"
    if last == "communicate":
        return ".communicate()"
    return None


def is_wait_call(call: ast.Call) -> bool:
    chain = _called_name(call)
    return bool(chain) and chain[-1] == "wait"


# ---------------------------------------------------------------------------
# Per-function facts (one body walk, cached project-wide)
# ---------------------------------------------------------------------------


@dataclass
class FunctionLockFacts:
    """What one function does with locks and calls, from a single walk."""

    fn: FunctionInfo
    resolver: TypeResolver
    #: attribute accesses: (node, held-locks-at-that-point).
    accesses: list[tuple[ast.Attribute, tuple[LockId, ...]]] = field(
        default_factory=list
    )
    #: every call expression with the locks held at the call site.
    calls: list[tuple[ast.Call, tuple[LockId, ...]]] = field(
        default_factory=list
    )
    #: lock acquisitions: (lock, held-before, with-item expression).
    acquisitions: list[tuple[LockId, tuple[LockId, ...], ast.expr]] = field(
        default_factory=list
    )


def collect_lock_facts(
    index: ProjectIndex, fn: FunctionInfo
) -> FunctionLockFacts:
    """Walk *fn*'s body tracking ``with <lock>:`` scopes.

    Nested function/class definitions are skipped: their bodies run
    later, under whatever locks their eventual caller holds.
    """
    resolver = TypeResolver(index, fn)
    facts = FunctionLockFacts(fn=fn, resolver=resolver)
    base: list[LockId] = []
    if fn.cls is not None:
        for name in fn.holds_locks:
            lock = fn.cls.lock_id(name)
            if lock is not None:
                base.append(lock)

    def walk_expr(expr: ast.AST, held: tuple[LockId, ...]) -> None:
        if isinstance(expr, ast.Lambda):
            return  # runs later, under the caller's locks
        if isinstance(expr, ast.Attribute):
            facts.accesses.append((expr, held))
        elif isinstance(expr, ast.Call):
            facts.calls.append((expr, held))
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                walk_expr(child, held)
            else:  # keyword / comprehension / slice wrappers
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        walk_expr(sub, held)

    def walk_stmt(stmt: ast.stmt, held: tuple[LockId, ...]) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in stmt.items:
                walk_expr(item.context_expr, tuple(inner))
                lock = resolver.lock_identity(item.context_expr)
                if lock is not None:
                    facts.acquisitions.append(
                        (lock, tuple(inner), item.context_expr)
                    )
                    inner.append(lock)
            walk_body(stmt.body, tuple(inner))
            return
        for _name, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for entry in value:
                    if isinstance(entry, ast.stmt):
                        walk_stmt(entry, held)
                    elif isinstance(entry, ast.expr):
                        walk_expr(entry, held)
                    elif isinstance(entry, ast.excepthandler):
                        walk_body(entry.body, held)
            elif isinstance(value, ast.expr):
                walk_expr(value, held)

    def walk_body(stmts: list[ast.stmt], held: tuple[LockId, ...]) -> None:
        for stmt in stmts:
            walk_stmt(stmt, held)

    walk_body(fn.node.body, tuple(base))
    return facts


# ---------------------------------------------------------------------------
# Call graph with provenance + generic interprocedural fixpoints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with where it happens."""

    caller: str  #: qualname
    callee: str  #: qualname
    path: str  #: repo-relative path of the call site
    line: int


class CallGraph:
    """Project-wide call graph over resolvable calls.

    Edges carry :class:`CallSite` provenance so findings can point at
    the exact call that creates a reachability or taint edge.  The graph
    is deliberately *under*-approximate — unresolvable calls (dynamic
    dispatch through untyped values, callables passed as arguments,
    e.g. ``pool.submit(fn)``) simply have no edge.  That is what makes
    a ``ThreadPoolExecutor.submit`` hand-off a natural boundary for the
    event-loop checker.
    """

    def __init__(self) -> None:
        #: caller qualname -> outgoing call sites (in body order).
        self.edges: dict[str, list[CallSite]] = {}
        #: callee qualname -> incoming call sites.
        self.callers: dict[str, list[CallSite]] = {}

    @classmethod
    def build(cls, all_facts: dict[str, FunctionLockFacts]) -> "CallGraph":
        graph = cls()
        for name, facts in all_facts.items():
            sites = graph.edges.setdefault(name, [])
            for call, _held in facts.calls:
                for callee in facts.resolver.resolve_call(call):
                    site = CallSite(
                        caller=name,
                        callee=callee.qualname,
                        path=facts.fn.module.relpath,
                        line=call.lineno,
                    )
                    sites.append(site)
                    graph.callers.setdefault(callee.qualname, []).append(site)
        return graph

    def callees(self, name: str) -> list[CallSite]:
        return self.edges.get(name, [])

    def propagate(
        self, seeds: dict[str, str], stop: frozenset[str] = frozenset()
    ) -> dict[str, str]:
        """Taint-summary fixpoint with human-readable "via" chains.

        *seeds* maps functions with a direct property (e.g. "calls
        os.fsync()") to its description.  The result maps every function
        that can reach a seeded one to ``"<desc> via <callee>"`` chains.
        Functions in *stop* neither gain nor forward summaries (escape
        hatches like ``# holds-executor:``).
        """
        summary = {
            name: desc for name, desc in seeds.items() if name not in stop
        }
        changed = True
        while changed:
            changed = False
            for caller, sites in self.edges.items():
                if caller in summary or caller in stop:
                    continue
                for site in sites:
                    inner = summary.get(site.callee)
                    if inner is not None:
                        summary[caller] = f"{inner} via {site.callee}"
                        changed = True
                        break
        return summary

    def propagate_sets(
        self, seeds: dict[str, set], stop: frozenset[str] = frozenset()
    ) -> dict[str, set]:
        """Set-union fixpoint: everything each function may do, through
        resolvable calls (e.g. the set of locks it may acquire)."""
        result: dict[str, set] = {
            name: set(values)
            for name, values in seeds.items()
            if name not in stop
        }
        changed = True
        while changed:
            changed = False
            for caller, sites in self.edges.items():
                if caller in stop:
                    continue
                mine = result.setdefault(caller, set())
                before = len(mine)
                for site in sites:
                    if site.callee in stop:
                        continue
                    mine |= result.get(site.callee, set())
                if len(mine) != before:
                    changed = True
        return result

    def reachable_from(
        self,
        entries: Iterable[str],
        stop: frozenset[str] = frozenset(),
    ) -> dict[str, tuple[str, ...]]:
        """Forward reachability with witness paths.

        Returns ``{qualname: (entry, ..., qualname)}`` for every
        function reachable from *entries* (including the entries
        themselves), following resolvable call edges but never entering
        functions in *stop*.  BFS, so witness paths are shortest.
        """
        paths: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for entry in entries:
            if entry in stop or entry in paths:
                continue
            paths[entry] = (entry,)
            queue.append(entry)
        while queue:
            current = queue.popleft()
            for site in self.edges.get(current, []):
                if site.callee in stop or site.callee in paths:
                    continue
                paths[site.callee] = paths[current] + (site.callee,)
                queue.append(site.callee)
        return paths


def render_witness(path: tuple[str, ...]) -> str:
    """``(a, b, c)`` → ``"a -> b -> c"`` for finding messages."""
    return " -> ".join(path)


# ---------------------------------------------------------------------------
# Findings, suppressions, config
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    """One checker hit."""

    checker: str
    code: str
    path: str  #: repo-relative path
    line: int
    symbol: str  #: enclosing "Class.method" / "function" / ""
    message: str
    suppressed_by: str | None = None  #: reason, when suppressed
    baselined: bool = False  #: known finding per the baseline file

    @property
    def fingerprint(self) -> str:
        """Line-independent identity, stable across unrelated edits.

        Hashes code, path, enclosing symbol, and message — but not the
        line number, so findings don't churn when code above them moves.
        """
        text = f"{self.code}|{self.path}|{self.symbol}|{self.message}"
        return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict:
        return {
            "checker": self.checker,
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "suppressed_by": self.suppressed_by,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.code} {self.message}{where}"


@dataclass
class Suppression:
    code: str
    reason: str
    path: str | None = None
    symbol: str | None = None
    line: int | None = None
    used: int = 0

    def matches(self, finding: Finding) -> bool:
        if self.code not in (finding.code, "*"):
            return False
        if self.path is not None and not (
            finding.path == self.path or finding.path.endswith("/" + self.path)
        ):
            return False
        if self.line is not None and finding.line != self.line:
            return False
        if self.symbol is not None and not fnmatch.fnmatch(
            finding.symbol, self.symbol
        ):
            return False
        return True

    def describe(self) -> str:
        scope = self.path or "*"
        if self.symbol:
            scope += f"::{self.symbol}"
        if self.line:
            scope += f":{self.line}"
        return f"{self.code} @ {scope}"


class LintConfigError(Exception):
    """Malformed .zhtlint.toml (missing reasons, unknown keys)."""


@dataclass
class LintConfig:
    roots: list[str] = field(default_factory=lambda: list(DEFAULT_ROOTS))
    suppressions: list[Suppression] = field(default_factory=list)
    #: "Class.attr" -> lock attribute (the GUARDED_BY registry).
    guarded: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, root: Path) -> "LintConfig":
        config = cls()
        path = root / ".zhtlint.toml"
        if not path.exists():
            return config
        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError) as exc:
            raise LintConfigError(f"{path}: {exc}") from exc
        options = data.get("options", {})
        if "roots" in options:
            config.roots = list(options["roots"])
        for raw in data.get("suppress", []):
            reason = str(raw.get("reason", "")).strip()
            code = str(raw.get("code", "")).strip()
            if not code:
                raise LintConfigError(f"{path}: suppression without a code")
            if not reason:
                raise LintConfigError(
                    f"{path}: suppression for {code} has no reason — every "
                    "suppression must carry a one-line justification"
                )
            config.suppressions.append(
                Suppression(
                    code=code,
                    reason=reason,
                    path=raw.get("path"),
                    symbol=raw.get("symbol"),
                    line=raw.get("line"),
                )
            )
        for key, lock in data.get("guarded", {}).items():
            config.guarded[str(key)] = str(lock)
        return config


# ---------------------------------------------------------------------------
# Project: parsed once, interprocedural facts cached
# ---------------------------------------------------------------------------


@dataclass
class Project:
    """Everything a checker may need, parsed once.

    The expensive interprocedural structures — per-function lock/call
    facts and the call graph — are computed lazily on first use and
    cached, so all checkers in one ``run_lint`` share a single AST
    parse, a single facts walk, and a single graph build.
    """

    root: Path
    config: LintConfig
    modules: list[ModuleInfo]
    index: ProjectIndex
    #: config-error strings (unknown guarded classes etc.).
    errors: list[str] = field(default_factory=list)
    _lock_facts: dict[str, FunctionLockFacts] | None = field(
        default=None, repr=False
    )
    _call_graph: CallGraph | None = field(default=None, repr=False)

    @classmethod
    def load(cls, root: Path, config: LintConfig | None = None) -> "Project":
        root = root.resolve()
        config = config or LintConfig.load(root)
        modules: list[ModuleInfo] = []
        for rel in config.roots:
            base = root / rel
            if base.is_file():
                candidates = [base]
            else:
                candidates = sorted(base.rglob("*.py"))
            for path in candidates:
                module = parse_module(path, str(path.relative_to(root)))
                if module is not None:
                    modules.append(module)
        index = ProjectIndex.build(modules)
        errors = index.apply_guarded_registry(config.guarded)
        return cls(
            root=root, config=config, modules=modules, index=index, errors=errors
        )

    def lock_facts(self) -> dict[str, FunctionLockFacts]:
        """qualname -> facts for every function, computed once."""
        if self._lock_facts is None:
            self._lock_facts = {
                fn.qualname: collect_lock_facts(self.index, fn)
                for fn in iter_functions(self.index)
            }
        return self._lock_facts

    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            self._call_graph = CallGraph.build(self.lock_facts())
        return self._call_graph


# ---------------------------------------------------------------------------
# Report, baseline, SARIF
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    unused_suppressions: list[Suppression] = field(default_factory=list)
    #: checker name -> wall seconds (only checkers that ran).
    timings: dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0

    @property
    def active(self) -> list[Finding]:
        """Findings that fail the run: not suppressed, not baselined."""
        return [
            f
            for f in self.findings
            if f.suppressed_by is None and not f.baselined
        ]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by is not None]

    @property
    def baselined_findings(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def ok(self) -> bool:
        return not self.active and not self.errors

    def apply_baseline(self, fingerprints: set[str]) -> None:
        """Mark unsuppressed findings present in *fingerprints* as known."""
        for finding in self.findings:
            if (
                finding.suppressed_by is None
                and finding.fingerprint in fingerprints
            ):
                finding.baselined = True

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "counts": {
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined_findings),
            },
            "findings": [f.as_dict() for f in self.findings],
            "errors": self.errors,
            "unused_suppressions": [
                s.describe() for s in self.unused_suppressions
            ],
            "timings": {
                name: round(seconds, 4)
                for name, seconds in sorted(self.timings.items())
            },
            "total_seconds": round(self.total_seconds, 4),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def to_sarif(self) -> str:
        """SARIF 2.1.0 for GitHub code-scanning annotations.

        Every finding becomes a result; suppressed and baselined ones
        carry a ``suppressions`` entry so code scanning shows them as
        resolved rather than re-announcing them on every PR.
        """
        rules = [
            {
                "id": code,
                "shortDescription": {"text": RULE_DOCS[code]},
                "defaultConfiguration": {"level": "error"},
            }
            for code in sorted(RULE_DOCS)
        ]
        results = []
        for finding in self.findings:
            quiet = finding.suppressed_by is not None or finding.baselined
            result: dict = {
                "ruleId": finding.code,
                "level": "note" if quiet else "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {"startLine": max(finding.line, 1)},
                        },
                        "logicalLocations": (
                            [{"fullyQualifiedName": finding.symbol}]
                            if finding.symbol
                            else []
                        ),
                    }
                ],
                "partialFingerprints": {
                    "zhtLintFingerprint/v1": finding.fingerprint
                },
            }
            if finding.suppressed_by is not None:
                result["suppressions"] = [
                    {
                        "kind": "inSource",
                        "justification": finding.suppressed_by,
                    }
                ]
            elif finding.baselined:
                result["suppressions"] = [
                    {
                        "kind": "external",
                        "justification": "baselined pre-existing finding",
                    }
                ]
            results.append(result)
        sarif = {
            "$schema": _SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "zht-lint",
                            "informationUri": (
                                "https://example.invalid/zht-lint"
                            ),
                            "rules": rules,
                        }
                    },
                    "originalUriBaseIds": {
                        "SRCROOT": {"uri": "file:///"}
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(sarif, indent=2, sort_keys=True)


def load_baseline(path: Path) -> set[str]:
    """Fingerprints from a baseline file written by :func:`write_baseline`."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintConfigError(f"{path}: {exc}") from exc
    fingerprints = data.get("fingerprints", {})
    return set(fingerprints)


def write_baseline(report: LintReport, path: Path) -> int:
    """Record every unsuppressed finding as known; returns the count.

    The value of each entry is a human-readable hint only — matching
    uses the fingerprint key.
    """
    entries = {
        f.fingerprint: f"{f.code} {f.path} [{f.symbol}]"
        for f in report.findings
        if f.suppressed_by is None
    }
    payload = {"version": 1, "fingerprints": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def _apply_inline_suppressions(
    finding: Finding, module_by_relpath: dict[str, ModuleInfo]
) -> None:
    module = module_by_relpath.get(finding.path)
    if module is None:
        return
    # Same line, or a standalone comment on the line directly above.
    for line in (finding.line, finding.line - 1):
        match = _INLINE_RE.search(module.comment_on(line))
        if match is None:
            continue
        codes = {c.strip() for c in match.group(1).split(",")}
        reason = match.group(2).strip()
        if finding.code in codes and reason:
            finding.suppressed_by = f"inline: {reason}"
            return


def run_lint(
    root: Path | str,
    checkers: list[str] | None = None,
    config: LintConfig | None = None,
    baseline: set[str] | None = None,
) -> LintReport:
    """Run the checkers over *root*; returns the full report."""
    # The package __init__ imports the checker modules, which register
    # themselves in CHECKERS; guard against direct-module use in tests.
    from . import (  # noqa: F401
        blocking,
        configdrift,
        eventloop,
        forksafety,
        locks,
        protocol_check,
        resourcecheck,
    )

    started = time.perf_counter()
    root = Path(root)
    report = LintReport()
    try:
        project = Project.load(root, config)
    except LintConfigError as exc:
        report.errors.append(str(exc))
        return report
    report.errors.extend(project.errors)

    module_by_relpath = {m.relpath: m for m in project.modules}
    selected = checkers or list(CHECKERS)
    for name in selected:
        checker = CHECKERS.get(name)
        if checker is None:
            report.errors.append(f"unknown checker {name!r}")
            continue
        checker_started = time.perf_counter()
        for finding in checker(project):
            _apply_inline_suppressions(finding, module_by_relpath)
            if finding.suppressed_by is None:
                for supp in project.config.suppressions:
                    if supp.matches(finding):
                        supp.used += 1
                        finding.suppressed_by = supp.reason
                        break
            report.findings.append(finding)
        report.timings[name] = time.perf_counter() - checker_started
    report.findings.sort(key=lambda f: (f.path, f.line, f.code))
    if checkers is None:
        # Staleness is only meaningful when every checker ran — a
        # subset run would flag other checkers' suppressions.
        report.unused_suppressions = [
            s for s in project.config.suppressions if not s.used
        ]
    if baseline:
        report.apply_baseline(baseline)
    report.total_seconds = time.perf_counter() - started
    return report


#: name -> checker callable ``(Project) -> list[Finding]``.  Populated by
#: the checker modules at import time via :func:`register`.
CHECKERS: dict[str, Callable[[Project], list[Finding]]] = {}

#: finding code -> one-line description (feeds the SARIF rules array).
RULE_DOCS: dict[str, str] = {}


def register(name: str, codes: dict[str, str] | None = None):
    """Register a checker; *codes* documents its finding codes."""
    if codes:
        RULE_DOCS.update(codes)

    def wrap(fn):
        CHECKERS[name] = fn
        return fn

    return wrap
