"""Lint engine: file walking, suppression policy, JSON report.

Suppression policy (DESIGN.md §11): every finding on the tree is either
**fixed** or **suppressed with a one-line justification**.  Two ways to
suppress, both requiring a reason:

* inline, at the offending line::

      self._value += 1  # zht-lint: ignore[LOCK001] atomic int read

* in the committed baseline file ``.zhtlint.toml``::

      [[suppress]]
      code = "BLOCK001"
      path = "src/repro/novoht/novoht.py"
      symbol = "NoVoHT.*"            # fnmatch over the enclosing scope
      reason = "WAL fsync must stay inside the store lock (group commit)"

``.zhtlint.toml`` may also carry a ``[guarded]`` registry mapping
``"Class.attr"`` to its lock for code that cannot take an inline
``# guarded-by:`` annotation, and ``[options] roots = [...]``.

A suppression without a reason is a configuration error (exit 2), and
suppressions that matched nothing are reported so the baseline cannot
silently rot.
"""

from __future__ import annotations

import fnmatch
import json
import re
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from .astutil import ModuleInfo, ProjectIndex, parse_module

#: Default directories (relative to the repo root) the engine scans.
DEFAULT_ROOTS = ("src/repro",)

_INLINE_RE = re.compile(r"zht-lint:\s*ignore\[([A-Z0-9,\s]+)\]\s*(.*)")


@dataclass
class Finding:
    """One checker hit."""

    checker: str
    code: str
    path: str  #: repo-relative path
    line: int
    symbol: str  #: enclosing "Class.method" / "function" / ""
    message: str
    suppressed_by: str | None = None  #: reason, when suppressed

    def as_dict(self) -> dict:
        return {
            "checker": self.checker,
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "suppressed_by": self.suppressed_by,
        }

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.code} {self.message}{where}"


@dataclass
class Suppression:
    code: str
    reason: str
    path: str | None = None
    symbol: str | None = None
    line: int | None = None
    used: int = 0

    def matches(self, finding: Finding) -> bool:
        if self.code not in (finding.code, "*"):
            return False
        if self.path is not None and not (
            finding.path == self.path or finding.path.endswith("/" + self.path)
        ):
            return False
        if self.line is not None and finding.line != self.line:
            return False
        if self.symbol is not None and not fnmatch.fnmatch(
            finding.symbol, self.symbol
        ):
            return False
        return True

    def describe(self) -> str:
        scope = self.path or "*"
        if self.symbol:
            scope += f"::{self.symbol}"
        if self.line:
            scope += f":{self.line}"
        return f"{self.code} @ {scope}"


class LintConfigError(Exception):
    """Malformed .zhtlint.toml (missing reasons, unknown keys)."""


@dataclass
class LintConfig:
    roots: list[str] = field(default_factory=lambda: list(DEFAULT_ROOTS))
    suppressions: list[Suppression] = field(default_factory=list)
    #: "Class.attr" -> lock attribute (the GUARDED_BY registry).
    guarded: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, root: Path) -> "LintConfig":
        config = cls()
        path = root / ".zhtlint.toml"
        if not path.exists():
            return config
        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError) as exc:
            raise LintConfigError(f"{path}: {exc}") from exc
        options = data.get("options", {})
        if "roots" in options:
            config.roots = list(options["roots"])
        for raw in data.get("suppress", []):
            reason = str(raw.get("reason", "")).strip()
            code = str(raw.get("code", "")).strip()
            if not code:
                raise LintConfigError(f"{path}: suppression without a code")
            if not reason:
                raise LintConfigError(
                    f"{path}: suppression for {code} has no reason — every "
                    "suppression must carry a one-line justification"
                )
            config.suppressions.append(
                Suppression(
                    code=code,
                    reason=reason,
                    path=raw.get("path"),
                    symbol=raw.get("symbol"),
                    line=raw.get("line"),
                )
            )
        for key, lock in data.get("guarded", {}).items():
            config.guarded[str(key)] = str(lock)
        return config


@dataclass
class Project:
    """Everything a checker may need, parsed once."""

    root: Path
    config: LintConfig
    modules: list[ModuleInfo]
    index: ProjectIndex
    #: config-error strings (unknown guarded classes etc.).
    errors: list[str] = field(default_factory=list)

    @classmethod
    def load(cls, root: Path, config: LintConfig | None = None) -> "Project":
        root = root.resolve()
        config = config or LintConfig.load(root)
        modules: list[ModuleInfo] = []
        for rel in config.roots:
            base = root / rel
            if base.is_file():
                candidates = [base]
            else:
                candidates = sorted(base.rglob("*.py"))
            for path in candidates:
                module = parse_module(path, str(path.relative_to(root)))
                if module is not None:
                    modules.append(module)
        index = ProjectIndex.build(modules)
        errors = index.apply_guarded_registry(config.guarded)
        return cls(
            root=root, config=config, modules=modules, index=index, errors=errors
        )


@dataclass
class LintReport:
    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    unused_suppressions: list[Suppression] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by is None]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed_by is not None]

    @property
    def ok(self) -> bool:
        return not self.active and not self.errors

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "counts": {
                "active": len(self.active),
                "suppressed": len(self.suppressed),
            },
            "findings": [f.as_dict() for f in self.findings],
            "errors": self.errors,
            "unused_suppressions": [
                s.describe() for s in self.unused_suppressions
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def _apply_inline_suppressions(
    finding: Finding, module_by_relpath: dict[str, ModuleInfo]
) -> None:
    module = module_by_relpath.get(finding.path)
    if module is None:
        return
    # Same line, or a standalone comment on the line directly above.
    for line in (finding.line, finding.line - 1):
        match = _INLINE_RE.search(module.comment_on(line))
        if match is None:
            continue
        codes = {c.strip() for c in match.group(1).split(",")}
        reason = match.group(2).strip()
        if finding.code in codes and reason:
            finding.suppressed_by = f"inline: {reason}"
            return


def run_lint(
    root: Path | str,
    checkers: list[str] | None = None,
    config: LintConfig | None = None,
) -> LintReport:
    """Run the checkers over *root*; returns the full report."""
    # The package __init__ imports the checker modules, which register
    # themselves in CHECKERS; guard against direct-module use in tests.
    from . import blocking, configdrift, locks, protocol_check  # noqa: F401

    root = Path(root)
    report = LintReport()
    try:
        project = Project.load(root, config)
    except LintConfigError as exc:
        report.errors.append(str(exc))
        return report
    report.errors.extend(project.errors)

    module_by_relpath = {m.relpath: m for m in project.modules}
    selected = checkers or list(CHECKERS)
    for name in selected:
        checker = CHECKERS.get(name)
        if checker is None:
            report.errors.append(f"unknown checker {name!r}")
            continue
        for finding in checker(project):
            _apply_inline_suppressions(finding, module_by_relpath)
            if finding.suppressed_by is None:
                for supp in project.config.suppressions:
                    if supp.matches(finding):
                        supp.used += 1
                        finding.suppressed_by = supp.reason
                        break
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.code))
    if checkers is None:
        # Staleness is only meaningful when every checker ran — a
        # subset run would flag other checkers' suppressions.
        report.unused_suppressions = [
            s for s in project.config.suppressions if not s.used
        ]
    return report


#: name -> checker callable ``(Project) -> list[Finding]``.  Populated by
#: the checker modules at import time via :func:`register`.
CHECKERS: dict[str, object] = {}


def register(name: str):
    def wrap(fn):
        CHECKERS[name] = fn
        return fn

    return wrap
