"""Blocking-under-lock checker (**BLOCK001**).

Flags calls that can block indefinitely — socket I/O, ``os.fsync``,
``time.sleep``, ``.wait()`` on events/conditions — made while a lock is
held, directly or through a resolvable call chain (``NoVoHT.put`` →
``WriteAheadLog.append`` → ``os.fsync``).

Deliberately name-based on *distinctive* methods only: bare ``send`` /
``get`` / ``put`` / ``join`` are not matched (generator ``.send()``,
``dict.get()``, ``str.join()`` would drown the signal); socket traffic
in this tree goes through ``sendall``/``sendto``/``recv``/``recvfrom``.

``cond.wait()`` while *that same condition* is held is the normal
condition-variable idiom and is allowed; waiting on anything else while
holding a lock is flagged.

Intentional cases (the WAL fsync-under-lock group commit) are suppressed
in ``.zhtlint.toml`` with a justification rather than silently skipped.
"""

from __future__ import annotations

import ast

from .astutil import _called_name, iter_functions
from .engine import Finding, Project, register
from .locks import FunctionLockFacts, collect_lock_facts


#: Methods that are blocking wherever they appear.
_SOCKET_METHODS = frozenset(
    {
        "sendall",
        "sendto",
        "recv",
        "recvfrom",
        "recv_into",
        "accept",
        "connect",
        "create_connection",
    }
)


def _direct_blocking(call: ast.Call) -> str | None:
    """A description when *call* is intrinsically blocking, else None.

    ``.wait()`` is handled separately (held-condition exemption).

    File I/O is covered by ``.flush()``, ``os.replace``/``os.rename``
    and ``shutil.copyfileobj`` — the moves where buffered writes hit the
    OS.  Bare ``.write()`` is deliberately not matched (too generic to
    stay name-based), but any full-file writer worth flagging flushes or
    renames before it matters, and the transitive pass then carries the
    taint to whoever calls it under a lock (``checkpoint`` →
    ``write_checkpoint`` → ``f.flush()``).
    """
    chain = _called_name(call)
    if not chain:
        return None
    last = chain[-1]
    if last in _SOCKET_METHODS:
        return f"socket .{last}()"
    if last == "fsync" and (len(chain) == 1 or chain[-2] == "os"):
        return "os.fsync()"
    if last == "sleep" and len(chain) >= 2 and chain[-2] == "time":
        return "time.sleep()"
    if last == "flush":
        return "file .flush()"
    if last in ("replace", "rename") and len(chain) >= 2 and chain[-2] == "os":
        return f"os.{last}()"
    if last == "copyfileobj" and len(chain) >= 2 and chain[-2] == "shutil":
        return "shutil.copyfileobj()"
    return None


def _is_wait(call: ast.Call) -> bool:
    chain = _called_name(call)
    return bool(chain) and chain[-1] == "wait"


def _held_str(held) -> str:
    return ", ".join(str(lock) for lock in held)


@register("blocking-under-lock")
def check(project: Project) -> list[Finding]:
    index = project.index
    all_facts: dict[str, FunctionLockFacts] = {}
    for fn in iter_functions(index):
        all_facts[fn.qualname] = collect_lock_facts(index, fn)

    # Summary fixpoint: does a function block at all (anywhere in its
    # body, any lock state), and through which call chain?
    blocks: dict[str, str] = {}
    for name, facts in all_facts.items():
        for call, _held in facts.calls:
            desc = _direct_blocking(call)
            if desc is None and _is_wait(call):
                desc = ".wait()"
            if desc is not None:
                blocks.setdefault(name, desc)
                break
    changed = True
    while changed:
        changed = False
        for name, facts in all_facts.items():
            if name in blocks:
                continue
            for call, _held in facts.calls:
                for callee in facts.resolver.resolve_call(call):
                    inner = blocks.get(callee.qualname)
                    if inner is not None:
                        blocks[name] = f"{inner} via {callee.qualname}"
                        changed = True
                        break
                if name in blocks:
                    break

    findings: list[Finding] = []
    for facts in all_facts.values():
        fn = facts.fn
        if fn.single_threaded:
            continue
        for call, held in facts.calls:
            if not held:
                continue
            desc = _direct_blocking(call)
            if desc is not None:
                findings.append(
                    Finding(
                        checker="blocking-under-lock",
                        code="BLOCK001",
                        path=fn.module.relpath,
                        line=call.lineno,
                        symbol=fn.qualname,
                        message=(
                            f"blocking call {desc} while holding "
                            f"{_held_str(held)}"
                        ),
                    )
                )
                continue
            if _is_wait(call) and isinstance(call.func, ast.Attribute):
                receiver = facts.resolver.lock_identity(call.func.value)
                if receiver is not None and receiver in held:
                    continue  # cond.wait() on the held condition: idiom
                findings.append(
                    Finding(
                        checker="blocking-under-lock",
                        code="BLOCK001",
                        path=fn.module.relpath,
                        line=call.lineno,
                        symbol=fn.qualname,
                        message=(
                            ".wait() on an object other than the held "
                            f"lock while holding {_held_str(held)}"
                        ),
                    )
                )
                continue
            for callee in facts.resolver.resolve_call(call):
                desc = blocks.get(callee.qualname)
                if desc is not None:
                    findings.append(
                        Finding(
                            checker="blocking-under-lock",
                            code="BLOCK001",
                            path=fn.module.relpath,
                            line=call.lineno,
                            symbol=fn.qualname,
                            message=(
                                f"call to {callee.qualname} may block "
                                f"({desc}) while holding {_held_str(held)}"
                            ),
                        )
                    )
                    break
    return findings
