"""Blocking-under-lock checker (**BLOCK001**).

Flags calls that can block indefinitely — socket I/O, ``os.fsync``,
``time.sleep``, ``.wait()`` on events/conditions — made while a lock is
held, directly or through a resolvable call chain (``NoVoHT.put`` →
``WriteAheadLog.append`` → ``os.fsync``).

The blocking-call vocabulary (:func:`~.engine.blocking_call_description`)
and the transitive "may block, via ..." fixpoint
(:meth:`~.engine.CallGraph.propagate`) live on the shared engine; the
event-loop checker reuses both with a different notion of context
("runs on the loop" instead of "holds a lock").

``cond.wait()`` while *that same condition* is held is the normal
condition-variable idiom and is allowed; waiting on anything else while
holding a lock is flagged.

Intentional cases (the WAL fsync-under-lock group commit) are suppressed
in ``.zhtlint.toml`` with a justification rather than silently skipped.
"""

from __future__ import annotations

import ast

from .engine import (
    Finding,
    Project,
    blocking_call_description,
    is_wait_call,
    register,
)

_CODES = {
    "BLOCK001": "blocking call while holding a lock",
}


def _held_str(held) -> str:
    return ", ".join(str(lock) for lock in held)


def blocking_summaries(project: Project) -> dict[str, str]:
    """qualname -> "what blocks, via whom" for every function that can
    block at all (any lock state).  Shared with the event-loop checker."""
    seeds: dict[str, str] = {}
    for name, facts in project.lock_facts().items():
        for call, _held in facts.calls:
            desc = blocking_call_description(call)
            if desc is None and is_wait_call(call):
                desc = ".wait()"
            if desc is not None:
                seeds.setdefault(name, desc)
                break
    return project.call_graph().propagate(seeds)


@register("blocking-under-lock", codes=_CODES)
def check(project: Project) -> list[Finding]:
    all_facts = project.lock_facts()
    blocks = blocking_summaries(project)

    findings: list[Finding] = []
    for facts in all_facts.values():
        fn = facts.fn
        if fn.single_threaded:
            continue
        for call, held in facts.calls:
            if not held:
                continue
            desc = blocking_call_description(call)
            if desc is not None:
                findings.append(
                    Finding(
                        checker="blocking-under-lock",
                        code="BLOCK001",
                        path=fn.module.relpath,
                        line=call.lineno,
                        symbol=fn.qualname,
                        message=(
                            f"blocking call {desc} while holding "
                            f"{_held_str(held)}"
                        ),
                    )
                )
                continue
            if is_wait_call(call) and isinstance(call.func, ast.Attribute):
                receiver = facts.resolver.lock_identity(call.func.value)
                if receiver is not None and receiver in held:
                    continue  # cond.wait() on the held condition: idiom
                findings.append(
                    Finding(
                        checker="blocking-under-lock",
                        code="BLOCK001",
                        path=fn.module.relpath,
                        line=call.lineno,
                        symbol=fn.qualname,
                        message=(
                            ".wait() on an object other than the held "
                            f"lock while holding {_held_str(held)}"
                        ),
                    )
                )
                continue
            for callee in facts.resolver.resolve_call(call):
                desc = blocks.get(callee.qualname)
                if desc is not None:
                    findings.append(
                        Finding(
                            checker="blocking-under-lock",
                            code="BLOCK001",
                            path=fn.module.relpath,
                            line=call.lineno,
                            symbol=fn.qualname,
                            message=(
                                f"call to {callee.qualname} may block "
                                f"({desc}) while holding {_held_str(held)}"
                            ),
                        )
                    )
                    break
    return findings
