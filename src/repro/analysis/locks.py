"""Lock-discipline checker.

* **LOCK001** — read/write of an attribute declared guarded (via a
  ``# guarded-by: <lock>`` annotation on its ``__init__`` assignment or
  the ``[guarded]`` registry) outside a ``with <lock>:`` scope.  A
  ``# holds-lock: <lock>`` annotation on a ``def`` line declares that
  callers hold the lock for the whole body.
* **LOCK002** — potential deadlock: a cycle in the cross-module
  lock-acquisition graph (edge A→B whenever B is acquired — directly or
  through a resolvable call chain — while A is held).
* **LOCK003** — a ``guarded-by`` declaration naming an attribute that is
  not a known lock of the class.
* **LOCK004** — re-acquisition of a non-reentrant ``threading.Lock``
  that is already held (directly nested, or through a call chain).

Lock identity is class-wide: every instance of ``NoVoHT._lock`` is one
node.  That conflation is deliberate — it is what lets the graph span
modules — and is why RLock/Condition self-edges are not reported.

The per-function facts and the call graph live on the shared engine
(:meth:`Project.lock_facts` / :meth:`Project.call_graph`) so the other
interprocedural checkers reuse the same single pass.
"""

from __future__ import annotations

from .astutil import LockId
from .engine import Finding, Project, register

_CODES = {
    "LOCK001": "guarded attribute accessed without holding its lock",
    "LOCK002": "potential deadlock cycle in the lock-acquisition graph",
    "LOCK003": "guarded-by declaration names an unknown lock",
    "LOCK004": "non-reentrant lock re-acquired while already held",
}


def _held_str(held: tuple[LockId, ...]) -> str:
    return ", ".join(str(lock) for lock in held)


@register("lock-discipline", codes=_CODES)
def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    index = project.index

    # LOCK003: guarded-by declarations naming unknown locks.
    for cinfo in index.classes.values():
        for attr, guard in sorted(cinfo.guarded.items()):
            if cinfo.lock_id(guard) is None:
                findings.append(
                    Finding(
                        checker="lock-discipline",
                        code="LOCK003",
                        path=cinfo.module.relpath,
                        line=cinfo.node.lineno,
                        symbol=cinfo.name,
                        message=(
                            f"attribute {attr!r} declared guarded-by "
                            f"{guard!r}, which is not a lock of {cinfo.name}"
                        ),
                    )
                )

    all_facts = project.lock_facts()

    # LOCK001: guarded attribute touched without its lock.
    for facts in all_facts.values():
        fn = facts.fn
        if fn.single_threaded or fn.node.name == "__init__":
            continue
        for node, held in facts.accesses:
            for owner in facts.resolver.resolve(node.value):
                guard = owner.guarded.get(node.attr)
                if guard is None:
                    continue
                lock = owner.lock_id(guard)
                if lock is None or lock in held:
                    continue
                findings.append(
                    Finding(
                        checker="lock-discipline",
                        code="LOCK001",
                        path=fn.module.relpath,
                        line=node.lineno,
                        symbol=fn.qualname,
                        message=(
                            f"access to {owner.name}.{node.attr} "
                            f"(guarded by {lock}) without holding it"
                            + (
                                f" (held: {_held_str(held)})"
                                if held
                                else ""
                            )
                        ),
                    )
                )

    # LOCK004 + acquisition-graph edges.
    acquires = project.call_graph().propagate_sets(
        {
            name: {lock for lock, _held, _node in facts.acquisitions}
            for name, facts in all_facts.items()
        }
    )
    # edge (A, B) -> provenance (path, line, symbol); first wins.
    edges: dict[tuple[LockId, LockId], tuple[str, int, str]] = {}
    for facts in all_facts.values():
        fn = facts.fn
        if fn.single_threaded:
            continue
        for lock, held, node in facts.acquisitions:
            if lock in held and lock.kind == "lock":
                findings.append(
                    Finding(
                        checker="lock-discipline",
                        code="LOCK004",
                        path=fn.module.relpath,
                        line=node.lineno,
                        symbol=fn.qualname,
                        message=(
                            f"non-reentrant lock {lock} acquired while "
                            "already held (self-deadlock)"
                        ),
                    )
                )
            for prior in held:
                if prior != lock:
                    edges.setdefault(
                        (prior, lock),
                        (fn.module.relpath, node.lineno, fn.qualname),
                    )
        for call, held in facts.calls:
            if not held:
                continue
            for callee in facts.resolver.resolve_call(call):
                for lock in acquires.get(callee.qualname, set()):
                    if lock in held:
                        if lock.kind == "lock":
                            findings.append(
                                Finding(
                                    checker="lock-discipline",
                                    code="LOCK004",
                                    path=fn.module.relpath,
                                    line=call.lineno,
                                    symbol=fn.qualname,
                                    message=(
                                        f"call to {callee.qualname} may "
                                        f"re-acquire non-reentrant {lock} "
                                        "already held here"
                                    ),
                                )
                            )
                        continue
                    for prior in held:
                        if prior != lock:
                            edges.setdefault(
                                (prior, lock),
                                (
                                    fn.module.relpath,
                                    call.lineno,
                                    fn.qualname,
                                ),
                            )

    findings.extend(_deadlock_cycles(edges))
    return findings


def _deadlock_cycles(
    edges: dict[tuple[LockId, LockId], tuple[str, int, str]],
) -> list[Finding]:
    """LOCK002: strongly connected components of size ≥ 2 in the
    acquisition graph are potential lock-order inversions."""
    graph: dict[LockId, set[LockId]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    # Tarjan's SCC, iterative.
    indexes: dict[LockId, int] = {}
    lowlinks: dict[LockId, int] = {}
    on_stack: set[LockId] = set()
    stack: list[LockId] = []
    sccs: list[list[LockId]] = []
    counter = [0]

    def strongconnect(root: LockId) -> None:
        work = [(root, iter(sorted(graph[root], key=str)))]
        indexes[root] = lowlinks[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in indexes:
                    indexes[succ] = lowlinks[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ], key=str))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: list[LockId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(component)

    for node in sorted(graph, key=str):
        if node not in indexes:
            strongconnect(node)

    findings: list[Finding] = []
    for component in sccs:
        members = sorted(component, key=str)
        involved = sorted(
            (
                (pair, where)
                for pair, where in edges.items()
                if pair[0] in component and pair[1] in component
            ),
            key=lambda item: (item[1][0], item[1][1]),
        )
        detail = "; ".join(
            f"{a} -> {b} at {path}:{line}"
            for (a, b), (path, line, _sym) in involved
        )
        path, line, symbol = involved[0][1]
        findings.append(
            Finding(
                checker="lock-discipline",
                code="LOCK002",
                path=path,
                line=line,
                symbol=symbol,
                message=(
                    "potential deadlock cycle between "
                    + ", ".join(str(m) for m in members)
                    + f" ({detail})"
                ),
            )
        )
    return findings
