"""Lock-discipline checker.

* **LOCK001** — read/write of an attribute declared guarded (via a
  ``# guarded-by: <lock>`` annotation on its ``__init__`` assignment or
  the ``[guarded]`` registry) outside a ``with <lock>:`` scope.  A
  ``# holds-lock: <lock>`` annotation on a ``def`` line declares that
  callers hold the lock for the whole body.
* **LOCK002** — potential deadlock: a cycle in the cross-module
  lock-acquisition graph (edge A→B whenever B is acquired — directly or
  through a resolvable call chain — while A is held).
* **LOCK003** — a ``guarded-by`` declaration naming an attribute that is
  not a known lock of the class.
* **LOCK004** — re-acquisition of a non-reentrant ``threading.Lock``
  that is already held (directly nested, or through a call chain).

Lock identity is class-wide: every instance of ``NoVoHT._lock`` is one
node.  That conflation is deliberate — it is what lets the graph span
modules — and is why RLock/Condition self-edges are not reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .astutil import (
    FunctionInfo,
    LockId,
    ProjectIndex,
    TypeResolver,
    iter_functions,
)
from .engine import Finding, Project, register


@dataclass
class FunctionLockFacts:
    """What one function does with locks, from a single body walk."""

    fn: FunctionInfo
    resolver: TypeResolver
    #: attribute accesses: (node, held-locks-at-that-point).
    accesses: list[tuple[ast.Attribute, tuple[LockId, ...]]] = field(
        default_factory=list
    )
    #: every call expression with the locks held at the call site.
    calls: list[tuple[ast.Call, tuple[LockId, ...]]] = field(
        default_factory=list
    )
    #: lock acquisitions: (lock, held-before, with-item expression).
    acquisitions: list[tuple[LockId, tuple[LockId, ...], ast.expr]] = field(
        default_factory=list
    )


def collect_lock_facts(
    index: ProjectIndex, fn: FunctionInfo
) -> FunctionLockFacts:
    """Walk *fn*'s body tracking ``with <lock>:`` scopes.

    Nested function/class definitions are skipped: their bodies run
    later, under whatever locks their eventual caller holds.
    """
    resolver = TypeResolver(index, fn)
    facts = FunctionLockFacts(fn=fn, resolver=resolver)
    base: list[LockId] = []
    if fn.cls is not None:
        for name in fn.holds_locks:
            lock = fn.cls.lock_id(name)
            if lock is not None:
                base.append(lock)

    def walk_expr(expr: ast.AST, held: tuple[LockId, ...]) -> None:
        if isinstance(expr, ast.Lambda):
            return  # runs later, under the caller's locks
        if isinstance(expr, ast.Attribute):
            facts.accesses.append((expr, held))
        elif isinstance(expr, ast.Call):
            facts.calls.append((expr, held))
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                walk_expr(child, held)
            else:  # keyword / comprehension / slice wrappers
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        walk_expr(sub, held)

    def walk_stmt(stmt: ast.stmt, held: tuple[LockId, ...]) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in stmt.items:
                walk_expr(item.context_expr, tuple(inner))
                lock = resolver.lock_identity(item.context_expr)
                if lock is not None:
                    facts.acquisitions.append(
                        (lock, tuple(inner), item.context_expr)
                    )
                    inner.append(lock)
            walk_body(stmt.body, tuple(inner))
            return
        for _name, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for entry in value:
                    if isinstance(entry, ast.stmt):
                        walk_stmt(entry, held)
                    elif isinstance(entry, ast.expr):
                        walk_expr(entry, held)
                    elif isinstance(entry, ast.excepthandler):
                        walk_body(entry.body, held)
            elif isinstance(value, ast.expr):
                walk_expr(value, held)

    def walk_body(stmts: list[ast.stmt], held: tuple[LockId, ...]) -> None:
        for stmt in stmts:
            walk_stmt(stmt, held)

    walk_body(fn.node.body, tuple(base))
    return facts


def transitive_acquires(
    all_facts: dict[str, FunctionLockFacts],
) -> dict[str, set[LockId]]:
    """Fixpoint: locks each function may acquire, through resolvable calls."""
    acquires: dict[str, set[LockId]] = {
        name: {lock for lock, _held, _node in facts.acquisitions}
        for name, facts in all_facts.items()
    }
    callees: dict[str, set[str]] = {}
    for name, facts in all_facts.items():
        targets: set[str] = set()
        for call, _held in facts.calls:
            for callee in facts.resolver.resolve_call(call):
                targets.add(callee.qualname)
        callees[name] = targets
    changed = True
    while changed:
        changed = False
        for name, targets in callees.items():
            mine = acquires[name]
            before = len(mine)
            for target in targets:
                mine |= acquires.get(target, set())
            if len(mine) != before:
                changed = True
    return acquires


def _held_str(held: tuple[LockId, ...]) -> str:
    return ", ".join(str(lock) for lock in held)


@register("lock-discipline")
def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    index = project.index

    # LOCK003: guarded-by declarations naming unknown locks.
    for cinfo in index.classes.values():
        for attr, guard in sorted(cinfo.guarded.items()):
            if cinfo.lock_id(guard) is None:
                findings.append(
                    Finding(
                        checker="lock-discipline",
                        code="LOCK003",
                        path=cinfo.module.relpath,
                        line=cinfo.node.lineno,
                        symbol=cinfo.name,
                        message=(
                            f"attribute {attr!r} declared guarded-by "
                            f"{guard!r}, which is not a lock of {cinfo.name}"
                        ),
                    )
                )

    all_facts: dict[str, FunctionLockFacts] = {}
    for fn in iter_functions(index):
        all_facts[fn.qualname] = collect_lock_facts(index, fn)

    # LOCK001: guarded attribute touched without its lock.
    for facts in all_facts.values():
        fn = facts.fn
        if fn.single_threaded or fn.node.name == "__init__":
            continue
        for node, held in facts.accesses:
            for owner in facts.resolver.resolve(node.value):
                guard = owner.guarded.get(node.attr)
                if guard is None:
                    continue
                lock = owner.lock_id(guard)
                if lock is None or lock in held:
                    continue
                findings.append(
                    Finding(
                        checker="lock-discipline",
                        code="LOCK001",
                        path=fn.module.relpath,
                        line=node.lineno,
                        symbol=fn.qualname,
                        message=(
                            f"access to {owner.name}.{node.attr} "
                            f"(guarded by {lock}) without holding it"
                            + (
                                f" (held: {_held_str(held)})"
                                if held
                                else ""
                            )
                        ),
                    )
                )

    # LOCK004 + acquisition-graph edges.
    acquires = transitive_acquires(all_facts)
    # edge (A, B) -> provenance (path, line, symbol); first wins.
    edges: dict[tuple[LockId, LockId], tuple[str, int, str]] = {}
    for facts in all_facts.values():
        fn = facts.fn
        if fn.single_threaded:
            continue
        for lock, held, node in facts.acquisitions:
            if lock in held and lock.kind == "lock":
                findings.append(
                    Finding(
                        checker="lock-discipline",
                        code="LOCK004",
                        path=fn.module.relpath,
                        line=node.lineno,
                        symbol=fn.qualname,
                        message=(
                            f"non-reentrant lock {lock} acquired while "
                            "already held (self-deadlock)"
                        ),
                    )
                )
            for prior in held:
                if prior != lock:
                    edges.setdefault(
                        (prior, lock),
                        (fn.module.relpath, node.lineno, fn.qualname),
                    )
        for call, held in facts.calls:
            if not held:
                continue
            for callee in facts.resolver.resolve_call(call):
                for lock in acquires.get(callee.qualname, set()):
                    if lock in held:
                        if lock.kind == "lock":
                            findings.append(
                                Finding(
                                    checker="lock-discipline",
                                    code="LOCK004",
                                    path=fn.module.relpath,
                                    line=call.lineno,
                                    symbol=fn.qualname,
                                    message=(
                                        f"call to {callee.qualname} may "
                                        f"re-acquire non-reentrant {lock} "
                                        "already held here"
                                    ),
                                )
                            )
                        continue
                    for prior in held:
                        if prior != lock:
                            edges.setdefault(
                                (prior, lock),
                                (
                                    fn.module.relpath,
                                    call.lineno,
                                    fn.qualname,
                                ),
                            )

    findings.extend(_deadlock_cycles(edges))
    return findings


def _deadlock_cycles(
    edges: dict[tuple[LockId, LockId], tuple[str, int, str]],
) -> list[Finding]:
    """LOCK002: strongly connected components of size ≥ 2 in the
    acquisition graph are potential lock-order inversions."""
    graph: dict[LockId, set[LockId]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    # Tarjan's SCC, iterative.
    indexes: dict[LockId, int] = {}
    lowlinks: dict[LockId, int] = {}
    on_stack: set[LockId] = set()
    stack: list[LockId] = []
    sccs: list[list[LockId]] = []
    counter = [0]

    def strongconnect(root: LockId) -> None:
        work = [(root, iter(sorted(graph[root], key=str)))]
        indexes[root] = lowlinks[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in indexes:
                    indexes[succ] = lowlinks[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ], key=str))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: list[LockId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(component)

    for node in sorted(graph, key=str):
        if node not in indexes:
            strongconnect(node)

    findings: list[Finding] = []
    for component in sccs:
        members = sorted(component, key=str)
        involved = sorted(
            (
                (pair, where)
                for pair, where in edges.items()
                if pair[0] in component and pair[1] in component
            ),
            key=lambda item: (item[1][0], item[1][1]),
        )
        detail = "; ".join(
            f"{a} -> {b} at {path}:{line}"
            for (a, b), (path, line, _sym) in involved
        )
        path, line, symbol = involved[0][1]
        findings.append(
            Finding(
                checker="lock-discipline",
                code="LOCK002",
                path=path,
                line=line,
                symbol=symbol,
                message=(
                    "potential deadlock cycle between "
                    + ", ".join(str(m) for m in members)
                    + f" ({detail})"
                ),
            )
        )
    return findings
