"""repro.analysis — repo-aware static analysis for the ZHT reproduction.

The dynamic verifier (:mod:`repro.verify`) can only *sample* schedules;
this package proves whole classes of bugs absent before runtime with
repo-aware checkers built on a shared interprocedural engine (per-file
AST cache, project-wide call graph with provenance, reusable taint /
reachability fixpoints — DESIGN.md §17):

* **lock-discipline** (``LOCK00x``) — attributes declared guarded (via a
  ``# guarded-by: <lock>`` annotation on their ``__init__`` assignment,
  or the ``[guarded]`` registry in ``.zhtlint.toml``) must only be
  touched inside a ``with self.<lock>:`` scope; plus a cross-module
  lock-acquisition graph with potential-deadlock-cycle detection.
* **blocking-under-lock** (``BLOCK001``) — socket I/O, ``os.fsync``,
  ``time.sleep`` and friends reached (transitively, through resolvable
  calls) while a lock is held.
* **protocol-exhaustiveness** (``PROTO00x``) — every :class:`OpCode`
  member has a construction site, a server dispatch handler, and an
  explicit MUTATING/NON_MUTATING membership decision.
* **config-drift** (``CFG00x``) — every :class:`ZHTConfig` field is read
  somewhere, and every config attribute access / constructor keyword
  names a real field.
* **event-loop** (``LOOP00x``) — blocking calls transitively reachable
  from event-loop entry points (``# lint: event-loop`` / ``async def``),
  with a ``# holds-executor:`` escape hatch, plus loop-acquired locks
  that other code holds across blocking calls.
* **fork-safety** (``FORK00x``) — processes spawned under locks or next
  to live threads, fork children acquiring inherited module-level
  locks, and fork children that never close inherited sockets.
* **resource-lifetime** (``RES00x``) — must-close analysis: resources
  that are never closed, exception paths that escape before close, and
  temp files left behind on error paths.

Run with ``python -m repro lint``; see DESIGN.md §11 for the annotation
conventions and the suppression policy.
"""

from __future__ import annotations

from .engine import (
    CHECKERS,
    Finding,
    LintConfig,
    LintReport,
    Project,
    run_lint,
)

# Importing the checker modules registers them in CHECKERS.
from . import (  # noqa: E402,F401
    blocking,
    configdrift,
    eventloop,
    forksafety,
    locks,
    protocol_check,
    resourcecheck,
)

__all__ = [
    "CHECKERS",
    "Finding",
    "LintConfig",
    "LintReport",
    "Project",
    "run_lint",
]
