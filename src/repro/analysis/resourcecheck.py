"""Resource-lifetime checker (**RES001**–**RES003**): must-close analysis.

A ZHT node is a long-lived server: a socket or file handle leaked once
per reconnect/checkpoint is a fd-exhaustion outage, not a nuisance.
This checker tracks **fresh resources** — ``open()``, ``socket()``,
``create_connection()``, tempfiles, and any project helper that
*returns* one (computed as an interprocedural summary over the shared
call graph, so ``sock = self._tcp_listener(port)`` is a creation site
in the caller) — from creation to release:

* **RES001** — a resource bound to a local that is never closed and
  never handed off (returned, stored on an object/container, passed to
  a call, entered as a context manager, yielded).  Nothing can ever
  close it.
* **RES002** — a resource with a close/hand-off, but a call that can
  raise sits between creation and release with no ``try/finally`` (or
  except-handler) closing it: the exception path leaks the handle.
  The classic shape is ``sock = create_connection(...)`` followed by a
  ``setsockopt`` inside a ``try`` whose ``except OSError: return None``
  swallows the error without closing.
* **RES003** — a temp file written and promoted via
  ``os.replace``/``os.rename`` where an ``except`` handler re-raises or
  returns without unlinking it: every failed checkpoint/GC leaves a
  ``*.tmp`` corpse on disk.

Ownership transfer deliberately ends tracking (precision over recall):
a resource stored on ``self`` is the object's lifetime problem, already
covered by close()/stop() discipline, and a resource passed to a call
is presumed adopted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .astutil import _called_name
from .engine import Finding, FunctionLockFacts, Project, register

_CODES = {
    "RES001": "resource opened but never closed or handed off",
    "RES002": "exception path leaks a resource before close/hand-off",
    "RES003": "error path leaves a temp file on disk",
}

_CLOSE_METHODS = frozenset({"close", "cleanup"})
_TEMP_SUFFIXES = (".tmp", ".gc", ".part", ".new")
_RELEASE_FUNCS = frozenset({"replace", "rename", "remove", "unlink", "move"})


def _resource_ctor(call: ast.Call) -> str | None:
    """Kind when *call* directly creates a closeable resource."""
    chain = _called_name(call)
    if not chain:
        return None
    last = chain[-1]
    if last == "open" and (len(chain) == 1 or chain[-2] in ("io", "gzip")):
        return "file handle"
    if last == "socket" and (len(chain) == 1 or chain[-2] == "socket"):
        return "socket"
    if last == "create_connection":
        return "socket"
    if last in ("NamedTemporaryFile", "TemporaryFile"):
        return "temp file handle"
    if last == "TemporaryDirectory":
        return "temp dir"
    return None


def returns_resource_summary(project: Project) -> dict[str, str]:
    """qualname -> resource kind, for every function that returns a
    fresh resource it created (directly or via another such helper)."""
    all_facts = project.lock_facts()
    known: dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for name, facts in all_facts.items():
            if name in known:
                continue
            kind = _direct_return_kind(facts, known)
            if kind is not None:
                known[name] = kind
                changed = True
    return known


def _call_kind(
    call: ast.Call, facts: FunctionLockFacts, known: dict[str, str]
) -> str | None:
    kind = _resource_ctor(call)
    if kind is not None:
        return kind
    for callee in facts.resolver.resolve_call(call):
        kind = known.get(callee.qualname)
        if kind is not None:
            return kind
    return None


def _direct_return_kind(
    facts: FunctionLockFacts, known: dict[str, str]
) -> str | None:
    assigned: dict[str, str] = {}
    for stmt in ast.walk(facts.fn.node):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            kind = _call_kind(stmt.value, facts, known)
            if kind is not None:
                assigned.setdefault(stmt.targets[0].id, kind)
    for stmt in ast.walk(facts.fn.node):
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            if isinstance(stmt.value, ast.Call):
                kind = _call_kind(stmt.value, facts, known)
                if kind is not None:
                    return kind
            if (
                isinstance(stmt.value, ast.Name)
                and stmt.value.id in assigned
            ):
                return assigned[stmt.value.id]
    return None


def _contains_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )


def _is_close_call(node: ast.Call, name: str) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _CLOSE_METHODS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == name
    )


@dataclass
class _Tracked:
    name: str
    kind: str
    line: int
    value: ast.Call  #: the creating call


def _body_range(stmts: list[ast.stmt]) -> tuple[int, int]:
    return stmts[0].lineno, stmts[-1].end_lineno or stmts[-1].lineno


@register("resource-lifetime", codes=_CODES)
def check(project: Project) -> list[Finding]:
    known = returns_resource_summary(project)
    findings: list[Finding] = []
    for name, facts in sorted(project.lock_facts().items()):
        findings.extend(_check_handles(facts, known))
        findings.extend(_check_temp_paths(facts))
    return findings


def _check_handles(
    facts: FunctionLockFacts, known: dict[str, str]
) -> list[Finding]:
    fn = facts.fn
    tracked: list[_Tracked] = []
    seen_names: set[str] = set()
    for stmt in ast.walk(fn.node):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            target = stmt.targets[0].id
            if target in seen_names:
                continue
            kind = _call_kind(stmt.value, facts, known)
            if kind is not None:
                seen_names.add(target)
                tracked.append(
                    _Tracked(
                        name=target,
                        kind=kind,
                        line=stmt.lineno,
                        value=stmt.value,
                    )
                )

    if not tracked:
        return []

    tries = [t for t in ast.walk(fn.node) if isinstance(t, ast.Try)]
    calls = [
        node for node in ast.walk(fn.node) if isinstance(node, ast.Call)
    ]

    findings: list[Finding] = []
    for res in tracked:
        close_lines: list[int] = []
        transfer_lines: list[int] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                if _is_close_call(node, res.name):
                    close_lines.append(node.lineno)
                    continue
                if node is res.value:
                    continue
                # The name escaping as an argument is a hand-off; the
                # name as the *receiver* (sock.bind(...)) is a use.
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    if _contains_name(arg, res.name):
                        transfer_lines.append(node.lineno)
                        break
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and _contains_name(
                    node.value, res.name
                ):
                    transfer_lines.append(node.lineno)
            elif isinstance(node, ast.withitem):
                if _contains_name(node.context_expr, res.name):
                    transfer_lines.append(node.context_expr.lineno)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if (
                    value is not None
                    and value is not res.value
                    and _contains_name(value, res.name)
                ):
                    transfer_lines.append(node.lineno)

        if not close_lines and not transfer_lines:
            findings.append(
                Finding(
                    checker="resource-lifetime",
                    code="RES001",
                    path=fn.module.relpath,
                    line=res.line,
                    symbol=fn.qualname,
                    message=(
                        f"{res.kind} {res.name!r} is never closed or "
                        "handed off on any path"
                    ),
                )
            )
            continue

        release = min(close_lines + transfer_lines)

        # Regions where an exception cannot leak the resource: the body
        # of any try whose finally (or every except handler) closes it.
        safe_regions: list[tuple[int, int]] = []
        for t in tries:
            closes_in_final = any(
                isinstance(node, ast.Call) and _is_close_call(node, res.name)
                for stmt in t.finalbody
                for node in ast.walk(stmt)
            )
            closes_in_handlers = bool(t.handlers) and all(
                any(
                    isinstance(node, ast.Call)
                    and _is_close_call(node, res.name)
                    for stmt in handler.body
                    for node in ast.walk(stmt)
                )
                for handler in t.handlers
            )
            if closes_in_final or closes_in_handlers:
                safe_regions.append(_body_range(t.body))

        def protected(line: int) -> bool:
            return any(lo <= line <= hi for lo, hi in safe_regions)

        exposed = [
            node
            for node in calls
            if res.line < node.lineno < release
            and node is not res.value
            and not _is_close_call(node, res.name)
            and not protected(node.lineno)
        ]
        if not exposed:
            continue
        first = min(exposed, key=lambda node: node.lineno)
        chain = _called_name(first) or ["<call>"]
        findings.append(
            Finding(
                checker="resource-lifetime",
                code="RES002",
                path=fn.module.relpath,
                line=res.line,
                symbol=fn.qualname,
                message=(
                    f"{res.kind} {res.name!r} leaks if "
                    f"{'.'.join(chain)}() at line {first.lineno} raises "
                    "before the close/hand-off at line "
                    f"{release} — close it in a finally or an except"
                ),
            )
        )
    return findings


def _check_temp_paths(facts: FunctionLockFacts) -> list[Finding]:
    fn = facts.fn
    tmp_names: set[str] = set()
    for stmt in ast.walk(fn.node):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _is_temp_path_expr(stmt.value)
        ):
            tmp_names.add(stmt.targets[0].id)
    if not tmp_names:
        return []

    def _writes(name: str) -> list[int]:
        lines = []
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call) and _called_name(node)):
                continue
            chain = _called_name(node)
            if chain[-1] != "open" or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Name) and first.id == name):
                continue
            mode = None
            if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                mode = node.args[1].value
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = kw.value.value
            if isinstance(mode, str) and any(c in mode for c in "wxa"):
                lines.append(node.lineno)
        return lines

    def _releases(stmts: list[ast.stmt], name: str) -> bool:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                chain = _called_name(node)
                if not chain or chain[-1] not in _RELEASE_FUNCS:
                    continue
                if any(_contains_name(arg, name) for arg in node.args):
                    return True
        return False

    findings: list[Finding] = []
    reported: set[tuple[str, int]] = set()
    for name in sorted(tmp_names):
        write_lines = _writes(name)
        if not write_lines:
            continue
        for t in (n for n in ast.walk(fn.node) if isinstance(n, ast.Try)):
            lo, hi = _body_range(t.body)
            if not any(lo <= line <= hi for line in write_lines):
                continue
            if _releases(t.finalbody, name):
                continue
            for handler in t.handlers:
                escapes = any(
                    isinstance(node, (ast.Raise, ast.Return))
                    for stmt in handler.body
                    for node in ast.walk(stmt)
                )
                if not escapes or _releases(handler.body, name):
                    continue
                key = (name, handler.lineno)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        checker="resource-lifetime",
                        code="RES003",
                        path=fn.module.relpath,
                        line=handler.lineno,
                        symbol=fn.qualname,
                        message=(
                            f"error path leaves temp file {name!r} on "
                            "disk — remove it before raising/returning"
                        ),
                    )
                )
    return findings


def _is_temp_path_expr(expr: ast.expr | None) -> bool:
    if expr is None:
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        right = expr.right
        return (
            isinstance(right, ast.Constant)
            and isinstance(right.value, str)
            and right.value.endswith(_TEMP_SUFFIXES)
        )
    if isinstance(expr, ast.JoinedStr) and expr.values:
        last = expr.values[-1]
        return (
            isinstance(last, ast.Constant)
            and isinstance(last.value, str)
            and last.value.endswith(_TEMP_SUFFIXES)
        )
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value.endswith(_TEMP_SUFFIXES)
    return False
