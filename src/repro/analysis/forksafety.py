"""Fork-safety checker (**FORK001**–**FORK004**).

``ShardedNodeServer`` (PR 8) forks one worker process per shard.  A
``fork()`` duplicates the parent wholesale: every held lock stays held
in the child forever (its owner thread does not exist there), every
open fd is inherited, and none of the parent's other threads come
along.  PR 8 fixed one inherited-listener bug by hand; this checker
closes the class.

* **FORK001** — a process spawned (``os.fork``, ``multiprocessing``
  ``Process(...)``) while a lock is held, directly or through a
  resolvable call chain.  If any other thread is between acquire and
  release at fork time, the child's copy of the lock is locked forever.
* **FORK002** — a class that both starts threads and forks processes:
  a fork while those threads run duplicates their locks and in-flight
  state mid-operation (respawn paths are the classic offender).
* **FORK003** — a fork child entry (the ``target=`` of a ``Process``)
  that acquires a *module-level* lock also used by parent code: the
  child inherits the parent's lock object, so a parent thread holding
  it at fork time deadlocks the child at first acquire.
* **FORK004** — a fork in a module that owns sockets, whose child entry
  never closes *any* inherited fd: the child keeps every parent
  listener alive (ports never close, peers hang on half-open
  connections).  A child entry that closes foreign sockets at startup
  — the PR 8 fix — satisfies the check.

Spawn sites are the ``Process(...)`` construction (the ``start()`` that
actually forks is normally adjacent); ``os.fork``/``os.forkpty`` are
matched directly.
"""

from __future__ import annotations

import ast

from .astutil import _called_name
from .engine import Finding, FunctionLockFacts, Project, register

_CODES = {
    "FORK001": "process spawned while holding a lock",
    "FORK002": "process forked in a class that also starts threads",
    "FORK003": (
        "fork child entry acquires a module-level lock shared with the "
        "parent"
    ),
    "FORK004": "fork child never closes inherited parent sockets",
}


def _spawn_desc(call: ast.Call) -> str | None:
    chain = _called_name(call)
    if not chain:
        return None
    last = chain[-1]
    if last in ("fork", "forkpty") and len(chain) >= 2 and chain[-2] == "os":
        return f"os.{last}()"
    if last == "Process":
        return "Process(...)"
    return None


def _is_thread_ctor(call: ast.Call) -> bool:
    chain = _called_name(call)
    return bool(chain) and chain[-1] == "Thread"


def _is_socket_ctor(call: ast.Call) -> bool:
    chain = _called_name(call)
    if not chain:
        return False
    last = chain[-1]
    if last == "socket" and (len(chain) == 1 or chain[-2] == "socket"):
        return True
    return last in ("create_connection", "socketpair")


def _held_str(held) -> str:
    return ", ".join(str(lock) for lock in held)


def _child_entries(
    project: Project, facts: FunctionLockFacts, call: ast.Call
) -> list:
    """FunctionInfo candidates for the ``target=`` of a Process call."""
    for kw in call.keywords:
        if kw.arg != "target":
            continue
        target = kw.value
        if isinstance(target, ast.Name):
            fn = project.index.module_functions.get(target.id)
            return [fn] if fn is not None else []
        if isinstance(target, ast.Attribute):
            entries = []
            for owner in facts.resolver.resolve(target.value):
                method = owner.methods.get(target.attr)
                if method is not None:
                    entries.append(method)
            return entries
    return []


@register("fork-safety", codes=_CODES)
def check(project: Project) -> list[Finding]:
    all_facts = project.lock_facts()
    graph = project.call_graph()
    findings: list[Finding] = []

    # Seed: functions that spawn directly.
    spawn_seeds: dict[str, str] = {}
    for name, facts in all_facts.items():
        for call, _held in facts.calls:
            desc = _spawn_desc(call)
            if desc is not None:
                spawn_seeds.setdefault(name, desc)
                break
    spawns = graph.propagate(spawn_seeds)

    # FORK001: spawn while holding a lock (direct or via a call chain).
    for name, facts in sorted(all_facts.items()):
        fn = facts.fn
        if fn.single_threaded:
            continue
        for call, held in facts.calls:
            if not held:
                continue
            desc = _spawn_desc(call)
            if desc is not None:
                findings.append(
                    Finding(
                        checker="fork-safety",
                        code="FORK001",
                        path=fn.module.relpath,
                        line=call.lineno,
                        symbol=fn.qualname,
                        message=(
                            f"{desc} while holding {_held_str(held)} — "
                            "the child inherits the lock in its held "
                            "state if any other thread owns it at fork"
                        ),
                    )
                )
                continue
            for callee in facts.resolver.resolve_call(call):
                inner = spawns.get(callee.qualname)
                if inner is not None:
                    findings.append(
                        Finding(
                            checker="fork-safety",
                            code="FORK001",
                            path=fn.module.relpath,
                            line=call.lineno,
                            symbol=fn.qualname,
                            message=(
                                f"call to {callee.qualname} may spawn a "
                                f"process ({inner}) while holding "
                                f"{_held_str(held)}"
                            ),
                        )
                    )
                    break

    # FORK002: same class starts threads and forks processes.
    scope_threads: dict[str, tuple[str, int]] = {}
    scope_spawns: dict[str, list[tuple[FunctionLockFacts, ast.Call, str]]] = {}
    for name, facts in all_facts.items():
        scope = (
            facts.fn.cls.name
            if facts.fn.cls is not None
            else f"<{facts.fn.module.relpath}>"
        )
        for call, _held in facts.calls:
            if _is_thread_ctor(call):
                scope_threads.setdefault(
                    scope, (facts.fn.module.relpath, call.lineno)
                )
            desc = _spawn_desc(call)
            if desc is not None:
                scope_spawns.setdefault(scope, []).append(
                    (facts, call, desc)
                )
    for scope in sorted(scope_spawns):
        thread_site = scope_threads.get(scope)
        if thread_site is None:
            continue
        facts, call, desc = scope_spawns[scope][0]
        findings.append(
            Finding(
                checker="fork-safety",
                code="FORK002",
                path=facts.fn.module.relpath,
                line=call.lineno,
                symbol=facts.fn.qualname,
                message=(
                    f"{scope} forks processes ({desc}) and also starts "
                    f"threads (Thread at {thread_site[0]}:{thread_site[1]})"
                    " — a fork while those threads run duplicates their "
                    "locks and in-flight state"
                ),
            )
        )

    # FORK003 / FORK004 need the resolved child entry per spawn site.
    closes = graph.propagate_sets(
        {
            name: {"close"}
            for name, facts in all_facts.items()
            if any(
                (chain := _called_name(call)) and chain[-1] == "close"
                for call, _held in facts.calls
            )
        }
    )
    socket_modules = {
        facts.fn.module.relpath
        for facts in all_facts.values()
        if any(_is_socket_ctor(call) for call, _held in facts.calls)
    }
    reported3: set[tuple[str, str]] = set()
    reported4: set[str] = set()
    for name, facts in sorted(all_facts.items()):
        for call, _held in facts.calls:
            chain = _called_name(call)
            if not chain or chain[-1] != "Process":
                continue
            for entry in _child_entries(project, facts, call):
                child_reach = graph.reachable_from([entry.qualname])
                # FORK003: module-level locks acquired in the child.
                for child_name in child_reach:
                    child_facts = all_facts.get(child_name)
                    if child_facts is None:
                        continue
                    module_owner = f"<{child_facts.fn.module.relpath}>"
                    for lock, _h, node in child_facts.acquisitions:
                        if lock.owner != module_owner:
                            continue
                        shared = any(
                            lock in {a for a, _h2, _n in other.acquisitions}
                            for other_name, other in all_facts.items()
                            if other_name not in child_reach
                        )
                        if not shared:
                            continue
                        key = (entry.qualname, str(lock))
                        if key in reported3:
                            continue
                        reported3.add(key)
                        findings.append(
                            Finding(
                                checker="fork-safety",
                                code="FORK003",
                                path=child_facts.fn.module.relpath,
                                line=node.lineno,
                                symbol=child_facts.fn.qualname,
                                message=(
                                    f"fork child entry {entry.qualname} "
                                    f"acquires module-level lock {lock}, "
                                    "which parent code also uses — a "
                                    "parent thread holding it at fork "
                                    "deadlocks the child; reinitialize "
                                    "it post-fork"
                                ),
                            )
                        )
                # FORK004: socket-owning module, child closes nothing.
                if facts.fn.module.relpath in socket_modules:
                    if not closes.get(entry.qualname):
                        if entry.qualname not in reported4:
                            reported4.add(entry.qualname)
                            findings.append(
                                Finding(
                                    checker="fork-safety",
                                    code="FORK004",
                                    path=facts.fn.module.relpath,
                                    line=call.lineno,
                                    symbol=facts.fn.qualname,
                                    message=(
                                        "forked child entry "
                                        f"{entry.qualname} inherits the "
                                        "parent's open sockets but never "
                                        "closes any fd — close foreign "
                                        "listeners at child startup"
                                    ),
                                )
                            )
    return findings
