"""Shared AST infrastructure for the repo-aware checkers.

Everything the checkers need to reason about the tree is computed once
per lint run and shared:

* :class:`ModuleInfo` — parsed AST + per-line comment map (comments are
  where the annotation conventions live: ``# guarded-by: <lock>``,
  ``# holds-lock: <lock>``, ``# zht-lint: ignore[CODE] reason``).
* :class:`ClassInfo` — per-class lock attributes (with their kind:
  ``Lock`` / ``RLock`` / ``Condition``), attribute types inferred from
  ``__init__`` assignments and annotations, lock-aliasing properties
  (``NoVoHT.lock`` → ``NoVoHT._lock``), and guarded-attribute
  declarations.
* type-inference-lite (:func:`TypeResolver.resolve`) — just enough
  static typing to resolve ``part.store.apply_batch`` to
  ``NoVoHT.apply_batch``: parameter annotations, ``self`` attributes,
  locals assigned from constructors or annotated methods.  Anything
  unresolvable returns ``None`` and the checkers stay silent about it —
  precision over recall, so findings stay actionable.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

# Lock constructor names in the threading module, with their kind.
_LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
}


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; ``None`` for non-trivial exprs."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _called_name(call: ast.Call) -> list[str] | None:
    return _attr_chain(call.func)


def _annotation_class_names(node: ast.expr | None) -> list[str]:
    """Class names referenced by an annotation expression.

    Handles ``Foo``, ``"Foo"``, ``Foo | None``, ``Optional[Foo]``,
    ``Foo[...]`` — returns the candidate concrete class names.
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_class_names(node.left) + _annotation_class_names(
            node.right
        )
    if isinstance(node, ast.Subscript):
        base = _annotation_class_names(node.value)
        inner = node.slice
        elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        if base and base[0] in ("Optional", "Union"):
            names: list[str] = []
            for elt in elts:
                names.extend(_annotation_class_names(elt))
            return names
        if base and base[0] in _SEQUENCE_GENERICS:
            # Conflate container with element: ``list[Partition]`` resolves
            # to Partition so ``parts[i].store`` keeps resolving.
            names = []
            for elt in elts:
                names.extend(_annotation_class_names(elt))
            return names
        if base and base[0] in _MAPPING_GENERICS and len(elts) == 2:
            return _annotation_class_names(elts[1])
        return base
    return []


_SEQUENCE_GENERICS = frozenset(
    {"list", "List", "set", "Set", "frozenset", "FrozenSet", "tuple",
     "Tuple", "Sequence", "Iterable", "Iterator", "deque"}
)
_MAPPING_GENERICS = frozenset(
    {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict",
     "OrderedDict"}
)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path  #: absolute path
    relpath: str  #: path relative to the lint root (findings use this)
    tree: ast.Module
    source: str
    #: line number -> full comment text (without the leading ``#``).
    comments: dict[int, str] = field(default_factory=dict)
    #: module-level lock globals: name -> kind ("lock"/"rlock"/"condition").
    module_locks: dict[str, str] = field(default_factory=dict)

    def comment_on(self, lineno: int) -> str:
        return self.comments.get(lineno, "")

    def comment_in_range(self, first: int, last: int, tag: str) -> str | None:
        """First ``<tag>: value`` comment on lines ``first..last``."""
        for line in range(first, last + 1):
            comment = self.comments.get(line, "")
            if tag in comment:
                return comment.split(tag, 1)[1].strip().split()[0]
        return None


def parse_module(path: Path, relpath: str) -> ModuleInfo | None:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, UnicodeDecodeError):
        return None
    comments: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string.lstrip("#").strip()
    except (tokenize.TokenError, IndentationError):
        pass
    info = ModuleInfo(
        path=path, relpath=relpath, tree=tree, source=source, comments=comments
    )
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            kind = _is_lock_ctor(node.value)
            if kind is not None:
                info.module_locks[node.targets[0].id] = kind
    return info


@dataclass(frozen=True)
class LockId:
    """Identity of one lock *class-wide* (all instances conflated)."""

    owner: str  #: "Class" or "<module>" for function-local locks
    attr: str
    kind: str  #: "lock" | "rlock" | "condition"

    def __str__(self) -> str:
        return f"{self.owner}.{self.attr}"


@dataclass
class FunctionInfo:
    """One function or method."""

    module: ModuleInfo
    cls: "ClassInfo | None"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str  #: "Class.method" or "function"

    #: Locks named by ``# holds-lock: <attr>`` annotations on the def
    #: signature lines: the body runs with these already held by callers.
    holds_locks: set[str] = field(default_factory=set)
    #: ``# lint: single-threaded`` marker — body never runs concurrently
    #: (construction-time helpers, test-only paths).
    single_threaded: bool = False
    #: ``# lint: event-loop`` marker — the body runs ON an event-loop
    #: thread (selector callbacks, inline fast-path dispatch); everything
    #: transitively reachable from it is event-loop context for the LOOP
    #: checker.  ``async def`` coroutines are event-loop entries
    #: automatically.
    event_loop: bool = False
    #: ``# holds-executor: <reason>`` marker — although this function is
    #: *called* from event-loop code, its body actually executes on a
    #: worker-pool thread (the call edge hands off, it does not run
    #: inline).  The LOOP checker's reachability stops here.
    holds_executor: bool = False


@dataclass
class ClassInfo:
    """Facts about one class needed by the lock/blocking checkers."""

    module: ModuleInfo
    node: ast.ClassDef
    name: str

    #: lock attribute -> kind ("lock"/"rlock"/"condition").
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: property name -> lock attribute it aliases (``lock`` -> ``_lock``).
    lock_aliases: dict[str, str] = field(default_factory=dict)
    #: attribute -> candidate class names (from __init__ / annotations).
    attr_types: dict[str, list[str]] = field(default_factory=dict)
    #: guarded attribute -> lock attribute (from ``# guarded-by:``).
    guarded: dict[str, str] = field(default_factory=dict)
    #: method name -> FunctionInfo.
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    def lock_id(self, attr: str) -> LockId | None:
        attr = self.lock_aliases.get(attr, attr)
        kind = self.lock_attrs.get(attr)
        if kind is None:
            return None
        return LockId(self.name, attr, kind)


def _is_lock_ctor(value: ast.expr) -> str | None:
    """``threading.Lock()`` / ``Lock()`` → its kind, else ``None``."""
    if isinstance(value, ast.ListComp) or isinstance(value, ast.List):
        # [threading.Lock() for ...] — a family of locks; treat as one id.
        elt = value.elt if isinstance(value, ast.ListComp) else (
            value.elts[0] if value.elts else None
        )
        if elt is not None and isinstance(elt, ast.Call):
            return _is_lock_ctor_call(elt)
        return None
    if isinstance(value, ast.Call):
        return _is_lock_ctor_call(value)
    return None


def _is_lock_ctor_call(call: ast.Call) -> str | None:
    chain = _called_name(call)
    if not chain:
        return None
    return _LOCK_CTORS.get(chain[-1]) if chain[-1] in _LOCK_CTORS and (
        len(chain) == 1 or chain[-2] == "threading"
    ) else None


def _function_info(
    module: ModuleInfo,
    cls: ClassInfo | None,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> FunctionInfo:
    qual = f"{cls.name}.{node.name}" if cls is not None else node.name
    info = FunctionInfo(module=module, cls=cls, node=node, qualname=qual)
    first_body_line = node.body[0].lineno if node.body else node.lineno
    held = module.comment_in_range(node.lineno, first_body_line, "holds-lock:")
    if held:
        info.holds_locks.add(held)
    if isinstance(node, ast.AsyncFunctionDef):
        info.event_loop = True
    # Markers are honored on the def line, inside the signature, or in
    # the contiguous comment block immediately above the def (mirrors
    # the line-above rule for inline suppressions).
    start = node.lineno
    while module.comments.get(start - 1, "").strip():
        start -= 1
    for line in range(start, first_body_line + 1):
        comment = module.comments.get(line, "")
        if "lint: single-threaded" in comment:
            info.single_threaded = True
        if "lint: event-loop" in comment:
            info.event_loop = True
        if "holds-executor:" in comment:
            info.holds_executor = True
    return info


def _collect_class(module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(module=module, node=node, name=node.name)
    # Class-level annotated attributes contribute types.
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names = _annotation_class_names(stmt.annotation)
            if names:
                info.attr_types.setdefault(stmt.target.id, []).extend(names)
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        info.methods[stmt.name] = _function_info(module, info, stmt)
        decorators = {
            d.id for d in stmt.decorator_list if isinstance(d, ast.Name)
        }
        # Attribute types/locks/guards come from ``self.X = ...``
        # assignments in EVERY method, not just __init__ — late-binding
        # setters (``attach_core(self, core: ZHTServerCore)``) are how
        # cluster builders wire servers, and missing them would sever
        # the call graph right at the dispatch boundary.
        _collect_self_assigns(module, info, stmt)
        if "property" in decorators:
            # A property whose body is ``return self._X`` where _X is a
            # lock (or will be discovered as one) aliases that lock.
            for sub in stmt.body:
                if (
                    isinstance(sub, ast.Return)
                    and isinstance(sub.value, ast.Attribute)
                    and isinstance(sub.value.value, ast.Name)
                    and sub.value.value.id == "self"
                ):
                    info.lock_aliases[stmt.name] = sub.value.attr
            # Property return annotations contribute attribute types.
            names = _annotation_class_names(stmt.returns)
            if names:
                info.attr_types.setdefault(stmt.name, []).extend(names)
    # Aliases only count when the target really is a lock attribute.
    info.lock_aliases = {
        prop: target
        for prop, target in info.lock_aliases.items()
        if target in info.lock_attrs
    }
    return info


def _collect_self_assigns(
    module: ModuleInfo,
    info: ClassInfo,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> None:
    params: dict[str, list[str]] = {}
    args = method.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names = _annotation_class_names(arg.annotation)
        if names:
            params[arg.arg] = names
    for stmt in ast.walk(method):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        annotation: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            value, annotation = stmt.value, stmt.annotation
        else:
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            kind = _is_lock_ctor(value) if value is not None else None
            if kind is not None:
                info.lock_attrs[attr] = kind
            names = _annotation_class_names(annotation)
            if not names and isinstance(value, ast.Call):
                chain = _called_name(value)
                if chain:
                    names = [chain[-1]]
            if not names and isinstance(value, ast.Name):
                # ``self.core = core`` where ``core`` is an annotated
                # parameter of this method (setter-injection idiom).
                names = params.get(value.id, [])
            if names:
                known = info.attr_types.setdefault(attr, [])
                known.extend(n for n in names if n not in known)
            guard = module.comment_in_range(stmt.lineno, stmt.lineno, "guarded-by:")
            if guard:
                info.guarded[attr] = guard


@dataclass
class ProjectIndex:
    """Cross-module indexes shared by every checker."""

    modules: list[ModuleInfo]
    #: simple class name -> ClassInfo (first definition wins; this repo
    #: has no duplicate class names across modules).
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: "Class.method" -> FunctionInfo, plus "function" for module level.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level function name -> FunctionInfo (cross-module by name).
    module_functions: dict[str, FunctionInfo] = field(default_factory=dict)

    @classmethod
    def build(cls, modules: list[ModuleInfo]) -> "ProjectIndex":
        index = cls(modules=modules)
        for module in modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    cinfo = _collect_class(module, node)
                    index.classes.setdefault(node.name, cinfo)
                    for minfo in cinfo.methods.values():
                        index.functions.setdefault(minfo.qualname, minfo)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    finfo = _function_info(module, None, node)
                    index.functions.setdefault(node.name, finfo)
                    index.module_functions.setdefault(node.name, finfo)
        index._flatten_inheritance()
        return index

    def _flatten_inheritance(self) -> None:
        """Copy lock/guard/type declarations from base classes into
        subclasses: a ``guarded-by`` annotation in a subclass may name a
        lock its base declares (e.g. a connection subclass guarding new
        state with the base's ``write_lock``)."""
        flattened: set[str] = set()

        def flatten(name: str) -> None:
            if name in flattened:
                return
            flattened.add(name)
            cinfo = self.classes[name]
            for base in cinfo.node.bases:
                if not isinstance(base, ast.Name) or base.id not in self.classes:
                    continue
                flatten(base.id)
                binfo = self.classes[base.id]
                for attr, kind in binfo.lock_attrs.items():
                    cinfo.lock_attrs.setdefault(attr, kind)
                for alias, attr in binfo.lock_aliases.items():
                    cinfo.lock_aliases.setdefault(alias, attr)
                for attr, guard in binfo.guarded.items():
                    cinfo.guarded.setdefault(attr, guard)
                for attr, types in binfo.attr_types.items():
                    cinfo.attr_types.setdefault(attr, list(types))

        for name in list(self.classes):
            flatten(name)

    def apply_guarded_registry(self, registry: dict[str, str]) -> list[str]:
        """Apply ``[guarded]`` entries ("Class.attr" -> lock); returns
        error strings for entries naming unknown classes/locks."""
        errors: list[str] = []
        for key, lock in registry.items():
            cls_name, _, attr = key.partition(".")
            cinfo = self.classes.get(cls_name)
            if cinfo is None or not attr:
                errors.append(f"[guarded] {key!r}: unknown class")
                continue
            cinfo.guarded[attr] = lock
        return errors


class TypeResolver:
    """Best-effort static type resolution inside one function."""

    def __init__(self, index: ProjectIndex, fn: FunctionInfo):
        self.index = index
        self.fn = fn
        self.locals: dict[str, list[str]] = {}
        self._seed_params()
        self._seed_locals()

    def _seed_params(self) -> None:
        args = self.fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names = _annotation_class_names(arg.annotation)
            if names:
                self.locals[arg.arg] = names

    def _seed_locals(self) -> None:
        for stmt in ast.walk(self.fn.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if not isinstance(target, ast.Name):
                continue
            names = _annotation_class_names(annotation)
            if not names and value is not None:
                names = self._value_types(value)
            if names:
                self.locals.setdefault(target.id, []).extend(names)

    def _value_types(self, value: ast.expr) -> list[str]:
        if isinstance(value, ast.Call):
            chain = _called_name(value)
            if chain == ["cls"] and self.fn.cls is not None:
                return [self.fn.cls.name]
            if chain is not None and chain[-1] in self.index.classes:
                return [chain[-1]]
            # x = <expr>.method(...): return annotation of the resolved
            # method, or — for ``.get()`` on a container attribute whose
            # element type we conflated — the receiver's classes.
            if isinstance(value.func, ast.Attribute):
                owners = self.resolve(value.func.value)
                names: list[str] = []
                for owner in owners:
                    method = owner.methods.get(value.func.attr)
                    if method is not None:
                        names.extend(
                            _annotation_class_names(method.node.returns)
                        )
                if not names and value.func.attr == "get":
                    names = [o.name for o in owners]
                return names
        elif isinstance(value, (ast.Attribute, ast.Name, ast.Subscript)):
            return [c.name for c in self.resolve(value)]
        elif isinstance(value, ast.BoolOp):
            names = []
            for operand in value.values:
                names.extend(self._value_types(operand))
            return names
        return []

    def resolve(self, expr: ast.expr) -> list[ClassInfo]:
        """Candidate classes for *expr*; empty when unresolvable."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and self.fn.cls is not None:
                return [self.fn.cls]
            local = self._classes_for(self.locals.get(expr.id, []))
            if local:
                return local
            # The class object itself (Project.load(...)): conflate the
            # class with its instances — fine for method lookup.
            cinfo = self.index.classes.get(expr.id)
            return [cinfo] if cinfo is not None else []
        if isinstance(expr, ast.Attribute):
            result: list[ClassInfo] = []
            for owner in self.resolve(expr.value):
                result.extend(
                    self._classes_for(owner.attr_types.get(expr.attr, []))
                )
            return result
        if isinstance(expr, ast.Subscript):
            # Container element conflation: parts[i] has parts' classes.
            return self.resolve(expr.value)
        if isinstance(expr, ast.Call):
            return self._classes_for(self._value_types(expr))
        return []

    def _classes_for(self, names: list[str]) -> list[ClassInfo]:
        seen: list[ClassInfo] = []
        for name in names:
            cinfo = self.index.classes.get(name)
            if cinfo is not None and cinfo not in seen:
                seen.append(cinfo)
        return seen

    # -- call resolution -------------------------------------------------

    def resolve_call(self, call: ast.Call) -> list[FunctionInfo]:
        """Candidate callee functions for *call* (resolvable only)."""
        func = call.func
        if isinstance(func, ast.Name):
            fn = self.index.module_functions.get(func.id)
            return [fn] if fn is not None else []
        if isinstance(func, ast.Attribute):
            callees: list[FunctionInfo] = []
            for owner in self.resolve(func.value):
                method = owner.methods.get(func.attr)
                if method is not None and method not in callees:
                    callees.append(method)
            return callees
        return []

    # -- lock identity ---------------------------------------------------

    def lock_identity(self, expr: ast.expr) -> LockId | None:
        """The lock acquired by ``with <expr>:``, if it is one."""
        if isinstance(expr, ast.Subscript):
            # with self._locks[i]: — a lock family declared in __init__.
            return self.lock_identity(expr.value)
        if isinstance(expr, ast.Attribute):
            for owner in self.resolve(expr.value):
                lock = owner.lock_id(expr.attr)
                if lock is not None:
                    return lock
            return None
        if isinstance(expr, ast.Name):
            # Function-local lock: x = threading.Lock().
            for stmt in ast.walk(self.fn.node):
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == expr.id
                ):
                    kind = _is_lock_ctor(stmt.value)
                    if kind is not None:
                        return LockId(f"<{self.fn.qualname}>", expr.id, kind)
            # Module-level lock global: _LOCK = threading.Lock() at top level.
            kind = self.fn.module.module_locks.get(expr.id)
            if kind is not None:
                return LockId(f"<{self.fn.module.relpath}>", expr.id, kind)
        return None


def iter_functions(index: ProjectIndex):
    """Every FunctionInfo in the project, classes and module level."""
    seen: set[int] = set()
    for fn in index.functions.values():
        if id(fn) not in seen:
            seen.add(id(fn))
            yield fn


def iter_nodes_with_scope(tree: ast.Module):
    """Yield ``(node, scope)`` for every node, where *scope* is the
    dotted Class.method path of the innermost enclosing definition."""

    def visit(node: ast.AST, scope: str):
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_scope = f"{scope}.{child.name}" if scope else child.name
            yield child, child_scope
            yield from visit(child, child_scope)

    yield from visit(tree, "")
