"""Event-loop stall checker (**LOOP001**, **LOOP002**).

ZHT's throughput claim rests on the event-driven server: the selector
loop must never block, because every connection multiplexes onto it and
the inline fast path (PR 8) runs whole ops on the loop thread.  This
checker walks the shared call graph forward from every **event-loop
entry point** and flags anything that can stall the loop:

* **LOOP001** — a blocking call (socket I/O, ``os.fsync``,
  ``time.sleep``, file flush/rename, subprocess, ``.wait()``, bare
  ``lock.acquire()``) transitively reachable from an event-loop entry.
  The finding lands on the blocking call site itself, with the witness
  chain from the entry in the message, so the fix (or the justified
  suppression) sits next to the offending call.
* **LOOP002** — a lock acquired on the loop (``with lock:``) that some
  *non-loop* code path holds across a blocking call: the loop convoys
  behind a stalled holder even though the loop-side critical section is
  short.

Entry points are declared, not guessed:

* any function carrying a ``# lint: event-loop`` comment on (or in the
  comment block directly above) its ``def`` line
  (``EventDrivenTCPServer._loop`` is the canonical one — the
  selector callbacks and the inline fast path are then *found* by
  reachability, not annotated one by one);
* every ``async def`` coroutine, automatically.

The escape hatch is ``# holds-executor: <reason>`` at a ``def`` line:
the body is only ever *scheduled* from loop code (``pool.submit``) and
runs on a worker thread, so reachability stops there.  Callables passed
as arguments (``pool.submit(self._finish, ...)``) never produce a call
edge in the first place, so the usual hand-off idiom needs no
annotation at all.
"""

from __future__ import annotations

import ast

from .astutil import LockId, _called_name
from .engine import (
    Finding,
    Project,
    blocking_call_description,
    is_wait_call,
    register,
    render_witness,
)

_CODES = {
    "LOOP001": "blocking call reachable on the event-loop thread",
    "LOOP002": (
        "lock acquired on the event loop is held across a blocking call "
        "elsewhere"
    ),
}


def _lock_acquire_desc(facts, call: ast.Call) -> str | None:
    """``lock.acquire()`` with no bound — an unbounded lock wait."""
    chain = _called_name(call)
    if not chain or chain[-1] != "acquire":
        return None
    if call.args or call.keywords:
        return None  # acquire(False) / acquire(timeout=...) are bounded
    if not isinstance(call.func, ast.Attribute):
        return None
    lock = facts.resolver.lock_identity(call.func.value)
    if lock is None:
        return None
    return f"{lock}.acquire()"


@register("event-loop", codes=_CODES)
def check(project: Project) -> list[Finding]:
    all_facts = project.lock_facts()
    graph = project.call_graph()
    entries = sorted(
        name for name, facts in all_facts.items() if facts.fn.event_loop
    )
    stop = frozenset(
        name for name, facts in all_facts.items() if facts.fn.holds_executor
    )
    reach = graph.reachable_from(entries, stop=stop)

    findings: list[Finding] = []

    # LOOP001: blocking call sites in loop-reachable functions.
    for name in sorted(reach):
        facts = all_facts.get(name)
        if facts is None:
            continue
        fn = facts.fn
        witness = render_witness(reach[name])
        for call, _held in facts.calls:
            desc = blocking_call_description(call)
            if desc is None and is_wait_call(call):
                desc = ".wait()"
            if desc is None:
                desc = _lock_acquire_desc(facts, call)
            if desc is None:
                continue
            if facts.resolver.resolve_call(call):
                # The name matched the blocking vocabulary, but the call
                # resolves to a project function (e.g. a connection's
                # non-blocking ``flush()``); its body is walked by
                # reachability, so judge that, not the name.
                continue
            findings.append(
                Finding(
                    checker="event-loop",
                    code="LOOP001",
                    path=fn.module.relpath,
                    line=call.lineno,
                    symbol=fn.qualname,
                    message=(
                        f"blocking call {desc} runs on the event-loop "
                        f"thread (reachable: {witness})"
                    ),
                )
            )

    # LOOP002: loop-acquired locks held across blocking calls elsewhere.
    loop_locks: dict[LockId, tuple] = {}
    for name, path in reach.items():
        facts = all_facts.get(name)
        if facts is None:
            continue
        for lock, _held, node in facts.acquisitions:
            loop_locks.setdefault(lock, (facts.fn, node, path))
    reported: set[tuple[LockId, int]] = set()
    for name, facts in sorted(all_facts.items()):
        if name in reach or facts.fn.single_threaded:
            continue
        for call, held in facts.calls:
            if not held:
                continue
            desc = blocking_call_description(call)
            if desc is None:
                continue
            for lock in held:
                entry = loop_locks.get(lock)
                if entry is None:
                    continue
                loop_fn, node, path = entry
                key = (lock, node.lineno)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        checker="event-loop",
                        code="LOOP002",
                        path=loop_fn.module.relpath,
                        line=node.lineno,
                        symbol=loop_fn.qualname,
                        message=(
                            f"lock {lock} is acquired on the event loop "
                            f"({render_witness(path)}) but "
                            f"{facts.fn.qualname} holds it across {desc} "
                            f"at {facts.fn.module.relpath}:{call.lineno} — "
                            "a stalled holder convoys the loop"
                        ),
                    )
                )
    return findings
