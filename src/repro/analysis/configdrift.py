"""Config-drift checker (**CFG00x**).

* **CFG001** — a :class:`ZHTConfig` field that no code ever reads: dead
  configuration drifting away from the implementation.
* **CFG002** — an access naming a field that does not exist: a config
  attribute read (``config.reqest_timeout``), a ``ZHTConfig(...)`` /
  ``.replace(...)`` keyword, or a literal ``getattr(config, "...")``.

Receivers are recognised either structurally (an expression that
resolves to ``ZHTConfig`` via the type resolver) or by the repo's naming
convention: a bare ``config`` / ``cfg`` local, or any ``*.config``
attribute — validated to always be a ``ZHTConfig`` in this tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .astutil import TypeResolver, _called_name, iter_functions
from .engine import Finding, Project, register

_CONFIG_CLASS = "ZHTConfig"
_RECEIVER_NAMES = frozenset({"config", "cfg"})
#: Non-field attributes legitimately accessed on a config object.
_ALLOWED_ATTRS = frozenset({"replace"})


@dataclass
class _Access:
    module_relpath: str
    line: int
    symbol: str
    attr: str
    is_read: bool  #: attribute read vs. constructor/replace keyword


def _config_fields(project: Project) -> dict[str, int]:
    """Field name -> definition line, from the class-body annotations."""
    cinfo = project.index.classes.get(_CONFIG_CLASS)
    if cinfo is None:
        return {}
    fields: dict[str, int] = {}
    for stmt in cinfo.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields[stmt.target.id] = stmt.lineno
    return fields


def _is_config_receiver(expr: ast.expr, resolver: TypeResolver) -> bool:
    # When the resolver knows the type, trust it outright — a local
    # named ``config`` holding some other class is not a ZHTConfig.
    resolved = resolver.resolve(expr)
    if resolved:
        return any(c.name == _CONFIG_CLASS for c in resolved)
    if isinstance(expr, ast.Name) and expr.id in _RECEIVER_NAMES:
        return True
    return isinstance(expr, ast.Attribute) and expr.attr == "config"


def _collect_accesses(project: Project) -> list[_Access]:
    accesses: list[_Access] = []
    config_module = None
    cinfo = project.index.classes.get(_CONFIG_CLASS)
    if cinfo is not None:
        config_module = cinfo.module

    for fn in iter_functions(project.index):
        if fn.module is config_module and fn.cls is cinfo:
            continue  # the dataclass's own methods touch fields freely
        resolver = TypeResolver(project.index, fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute) and _is_config_receiver(
                node.value, resolver
            ):
                accesses.append(
                    _Access(
                        module_relpath=fn.module.relpath,
                        line=node.lineno,
                        symbol=fn.qualname,
                        attr=node.attr,
                        is_read=True,
                    )
                )
            elif isinstance(node, ast.Call):
                chain = _called_name(node)
                is_ctor = bool(chain) and chain[-1] == _CONFIG_CLASS
                is_replace = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "replace"
                    and _is_config_receiver(node.func.value, resolver)
                )
                if is_ctor or is_replace:
                    for kw in node.keywords:
                        if kw.arg is None:
                            continue  # **kwargs: not statically checkable
                        accesses.append(
                            _Access(
                                module_relpath=fn.module.relpath,
                                line=kw.value.lineno,
                                symbol=fn.qualname,
                                attr=kw.arg,
                                is_read=False,
                            )
                        )
                elif (
                    chain == ["getattr"]
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)
                    and _is_config_receiver(node.args[0], resolver)
                ):
                    accesses.append(
                        _Access(
                            module_relpath=fn.module.relpath,
                            line=node.lineno,
                            symbol=fn.qualname,
                            attr=node.args[1].value,
                            is_read=True,
                        )
                    )
    return accesses


@register("config-drift")
def check(project: Project) -> list[Finding]:
    fields = _config_fields(project)
    if not fields:
        return []
    cinfo = project.index.classes[_CONFIG_CLASS]
    accesses = _collect_accesses(project)

    findings: list[Finding] = []
    read_fields = {a.attr for a in accesses if a.is_read and a.attr in fields}
    for name, line in sorted(fields.items(), key=lambda kv: kv[1]):
        if name not in read_fields:
            findings.append(
                Finding(
                    checker="config-drift",
                    code="CFG001",
                    path=cinfo.module.relpath,
                    line=line,
                    symbol=f"{_CONFIG_CLASS}.{name}",
                    message=(
                        f"config field {name!r} is never read anywhere "
                        "in the tree"
                    ),
                )
            )

    method_names = set(cinfo.methods)
    for access in accesses:
        if access.attr in fields:
            continue
        if access.is_read and (
            access.attr in _ALLOWED_ATTRS
            or access.attr in method_names
            or access.attr.startswith("__")
        ):
            continue
        findings.append(
            Finding(
                checker="config-drift",
                code="CFG002",
                path=access.module_relpath,
                line=access.line,
                symbol=access.symbol,
                message=(
                    f"config access names unknown field {access.attr!r}"
                ),
            )
        )
    return findings
