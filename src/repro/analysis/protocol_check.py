"""Protocol-exhaustiveness checker (**PROTO00x**).

Every :class:`OpCode` member must have:

* a construction site (``Request(op=OpCode.X, ...)`` or equivalent) —
  otherwise the op is dead wire-format (**PROTO002**);
* a server dispatch handler — a reference inside a ``_dispatch`` /
  ``dispatch`` function, so new opcodes can never silently fall through
  to BAD_REQUEST again (**PROTO001**);
* an explicit mutating/read-only decision: membership in exactly one of
  ``MUTATING_OPS`` / ``NON_MUTATING_OPS`` (**PROTO003** missing,
  **PROTO004** in both).

Every :class:`Status` member must likewise have:

* a reference outside the enum body — otherwise the status is dead
  wire-format that no code path ever produces or inspects (**PROTO005**);
* a client-side handling decision: either an entry in
  ``STATUS_TO_EXCEPTION`` (it raises) or an explicit comparison site
  (a retry-loop/control-flow branch) — without either, a server can send
  it and every client falls through to the generic ProtocolError
  (**PROTO006**).

The *decode* path is structural (``OpCode(value)`` in ``decode``) and is
enforced at test time by the generated roundtrip test
(``tests/test_protocol_exhaustive.py``), which is parametrized over all
members via this module's helpers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .astutil import ModuleInfo, _attr_chain, iter_nodes_with_scope
from .engine import Finding, Project, register

_SET_NAMES = ("MUTATING_OPS", "NON_MUTATING_OPS")
_DISPATCH_NAMES = ("_dispatch", "dispatch")
_EXCEPTION_MAP_NAME = "STATUS_TO_EXCEPTION"


@dataclass
class OpCodeUsage:
    """Everything the checker (and the generated test) needs to know."""

    module: ModuleInfo | None = None
    #: member name -> line of its definition in the OpCode class body.
    members: dict[str, int] = field(default_factory=dict)
    #: members listed in MUTATING_OPS / NON_MUTATING_OPS.
    mutating: set[str] = field(default_factory=set)
    non_mutating: set[str] = field(default_factory=set)
    #: members referenced inside a dispatch function.
    dispatched: set[str] = field(default_factory=set)
    #: members with a construction site (not a compare, not a set def,
    #: not inside dispatch).
    constructed: set[str] = field(default_factory=set)


@dataclass
class StatusUsage:
    """Status-code coverage facts for PROTO005/PROTO006."""

    module: ModuleInfo | None = None
    #: member name -> line of its definition in the Status class body.
    members: dict[str, int] = field(default_factory=dict)
    #: members referenced anywhere outside the enum body.
    referenced: set[str] = field(default_factory=set)
    #: members keyed in STATUS_TO_EXCEPTION (raise on receipt).
    mapped: set[str] = field(default_factory=set)
    #: members appearing inside a comparison (explicit handling branch).
    compared: set[str] = field(default_factory=set)


def collect_status_usage(project: Project) -> StatusUsage:
    usage = StatusUsage()
    status_cls = project.index.classes.get("Status")
    if status_cls is None:
        return usage
    usage.module = status_cls.module
    for stmt in status_cls.node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    usage.members[target.id] = stmt.lineno

    for module in project.modules:
        map_range: tuple[int, int] | None = None
        for stmt in module.tree.body:
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
                if isinstance(stmt, ast.AnnAssign)
                else []
            )
            if any(
                isinstance(t, ast.Name) and t.id == _EXCEPTION_MAP_NAME
                for t in targets
            ):
                map_range = (stmt.lineno, stmt.end_lineno or stmt.lineno)

        compare_attr_ids: set[int] = set()
        for node, _scope in iter_nodes_with_scope(module.tree):
            if isinstance(node, ast.Compare):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Attribute):
                        compare_attr_ids.add(id(sub))
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attr_chain(node)
            if not chain or len(chain) != 2 or chain[0] != "Status":
                continue
            member = chain[1]
            usage.referenced.add(member)
            if map_range and map_range[0] <= node.lineno <= map_range[1]:
                usage.mapped.add(member)
            if id(node) in compare_attr_ids:
                usage.compared.add(member)
    return usage


def collect_usage(project: Project) -> OpCodeUsage:
    usage = OpCodeUsage()
    opcode_cls = project.index.classes.get("OpCode")
    if opcode_cls is None:
        return usage
    usage.module = opcode_cls.module
    for stmt in opcode_cls.node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    usage.members[target.id] = stmt.lineno

    for module in project.modules:
        set_ranges: dict[str, tuple[int, int]] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id in _SET_NAMES
                for t in stmt.targets
            ):
                name = next(
                    t.id
                    for t in stmt.targets
                    if isinstance(t, ast.Name) and t.id in _SET_NAMES
                )
                set_ranges[name] = (stmt.lineno, stmt.end_lineno or stmt.lineno)
                for sub in ast.walk(stmt.value):
                    chain = (
                        _attr_chain(sub)
                        if isinstance(sub, ast.Attribute)
                        else None
                    )
                    if chain and len(chain) == 2 and chain[0] == "OpCode":
                        target_set = (
                            usage.mutating
                            if name == "MUTATING_OPS"
                            else usage.non_mutating
                        )
                        target_set.add(chain[1])

        # ids of Attribute nodes that sit inside a comparison (parents
        # are yielded before descendants, so this fills in time).
        compare_attr_ids: set[int] = set()
        for node, scope in iter_nodes_with_scope(module.tree):
            if isinstance(node, ast.Compare):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Attribute):
                        compare_attr_ids.add(id(sub))
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attr_chain(node)
            if not chain or len(chain) != 2 or chain[0] != "OpCode":
                continue
            member = chain[1]
            in_dispatch = scope.rpartition(".")[2] in _DISPATCH_NAMES
            in_set = any(
                first <= node.lineno <= last
                for first, last in set_ranges.values()
            )
            in_compare = id(node) in compare_attr_ids
            if in_dispatch:
                usage.dispatched.add(member)
            elif not in_set and not in_compare:
                usage.constructed.add(member)
    return usage


@register("protocol-exhaustiveness")
def check(project: Project) -> list[Finding]:
    usage = collect_usage(project)
    if usage.module is None or not usage.members:
        return []
    relpath = usage.module.relpath
    findings: list[Finding] = []
    for member, line in sorted(usage.members.items(), key=lambda kv: kv[1]):
        if member not in usage.dispatched:
            findings.append(
                Finding(
                    checker="protocol-exhaustiveness",
                    code="PROTO001",
                    path=relpath,
                    line=line,
                    symbol=f"OpCode.{member}",
                    message=(
                        f"OpCode.{member} has no server dispatch handler "
                        "(would fall through to BAD_REQUEST)"
                    ),
                )
            )
        if member not in usage.constructed:
            findings.append(
                Finding(
                    checker="protocol-exhaustiveness",
                    code="PROTO002",
                    path=relpath,
                    line=line,
                    symbol=f"OpCode.{member}",
                    message=(
                        f"OpCode.{member} is never constructed — dead "
                        "wire-format (no encode path)"
                    ),
                )
            )
        in_mut = member in usage.mutating
        in_non = member in usage.non_mutating
        if not in_mut and not in_non:
            findings.append(
                Finding(
                    checker="protocol-exhaustiveness",
                    code="PROTO003",
                    path=relpath,
                    line=line,
                    symbol=f"OpCode.{member}",
                    message=(
                        f"OpCode.{member} has no replication decision: "
                        "not in MUTATING_OPS or NON_MUTATING_OPS"
                    ),
                )
            )
        elif in_mut and in_non:
            findings.append(
                Finding(
                    checker="protocol-exhaustiveness",
                    code="PROTO004",
                    path=relpath,
                    line=line,
                    symbol=f"OpCode.{member}",
                    message=(
                        f"OpCode.{member} is in both MUTATING_OPS and "
                        "NON_MUTATING_OPS"
                    ),
                )
            )

    status = collect_status_usage(project)
    if status.module is None:
        return findings
    relpath = status.module.relpath
    for member, line in sorted(status.members.items(), key=lambda kv: kv[1]):
        if member not in status.referenced:
            findings.append(
                Finding(
                    checker="protocol-exhaustiveness",
                    code="PROTO005",
                    path=relpath,
                    line=line,
                    symbol=f"Status.{member}",
                    message=(
                        f"Status.{member} is never referenced outside the "
                        "enum body — dead wire-format"
                    ),
                )
            )
        elif member not in status.mapped and member not in status.compared:
            findings.append(
                Finding(
                    checker="protocol-exhaustiveness",
                    code="PROTO006",
                    path=relpath,
                    line=line,
                    symbol=f"Status.{member}",
                    message=(
                        f"Status.{member} is neither in STATUS_TO_EXCEPTION "
                        "nor explicitly compared anywhere — clients would "
                        "fall through to a generic protocol error"
                    ),
                )
            )
    return findings
