"""Declarative scenario engine: one validated config → cluster +
traffic + faults + verdict.

A :class:`~repro.scenario.schema.Scenario` is a single, self-contained,
validated contract describing an adverse-conditions experiment:

* **topology** — node/replica/shard/partition counts plus raw
  :class:`~repro.core.config.ZHTConfig` overrides;
* **workload** — a traffic profile (uniform / zipf / append /
  mixed-tenant) built on :mod:`repro.workload`'s generators;
* **faults**  — node-level events (kill / repair / kill-shard at
  workload-progress fractions) and message-level fault rules compiled
  into a deterministic :class:`~repro.faults.plan.FaultPlan`;
* **checks**  — which of the invariant checkers from
  :mod:`repro.faults.invariants` must hold afterwards;
* **gates**   — numeric thresholds over run metrics and the
  :mod:`repro.obs` registry.

:func:`~repro.scenario.runner.run_scenario` executes any scenario
against any backend (local / tcp / udp / sim / sharded) and returns a
machine-readable :class:`~repro.scenario.runner.Verdict`.  The named
scenarios under :mod:`repro.scenario.library` are the repo's growing,
CI-enforced regression asset (``python -m repro scenario list``).
"""

from __future__ import annotations

__all__ = [
    "Scenario",
    "ScenarioError",
    "Verdict",
    "run_scenario",
    "load_library",
    "load_scenario",
]

_LAZY = {
    "Scenario": ("repro.scenario.schema", "Scenario"),
    "ScenarioError": ("repro.scenario.schema", "ScenarioError"),
    "Verdict": ("repro.scenario.runner", "Verdict"),
    "run_scenario": ("repro.scenario.runner", "run_scenario"),
    "load_library": ("repro.scenario.library", "load_library"),
    "load_scenario": ("repro.scenario.library", "load_scenario"),
}


def __getattr__(name: str) -> object:
    # Lazy re-exports keep package import light and cycle-free: the
    # runner imports repro.faults, whose __init__ imports the chaos
    # harness, which imports repro.scenario.cluster.
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
