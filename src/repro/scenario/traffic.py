"""Compile a :class:`~repro.scenario.schema.WorkloadSpec` into concrete
per-client op streams.

Reuses :mod:`repro.workload`'s generators (the Zipf sampler, the
append-fragment pattern) but with two properties the scenario verdict
depends on:

* **Determinism** — the op list for ``(scenario seed, client index)``
  is a pure function, so a failing verdict replays exactly.
* **Ledger-soundness** — concurrent writers to a shared key universe
  must not confuse the :class:`~repro.faults.invariants.AckLedger`:
  INSERT values are a pure function of the *key* (two racing inserts
  write identical bytes, so ack order cannot disagree with store
  state), and APPEND fragments are globally unique fixed-width chunks
  checked as a multiset rather than a concatenation order.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..core.protocol import OpCode
from ..workload import ZipfWorkload
from .schema import TenantSpec, WorkloadSpec

#: Fixed fragment width for append-shape tenants: final values split
#: back into the exact multiset of applied fragments.
FRAGMENT_BYTES = 32


def value_for_key(key: bytes, value_bytes: int) -> bytes:
    """The deterministic INSERT payload for *key* (same for every
    writer, so concurrent inserts to one key are value-identical)."""
    out = bytearray()
    counter = 0
    while len(out) < value_bytes:
        out += hashlib.sha256(key + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bytes(out[:value_bytes])


def fragment_for(client_index: int, op_index: int) -> bytes:
    """A globally unique fixed-width APPEND fragment."""
    return f"[c{client_index:03d}:{op_index:05d}]".encode().ljust(
        FRAGMENT_BYTES, b"."
    )


@dataclass(frozen=True)
class ClientStream:
    """One client's compiled op list."""

    client_index: int
    tenant: str
    #: ``(op, key, value)`` triples.
    ops: tuple


def _tenant_ops(
    tenant: TenantSpec,
    seed: int,
    client_index: int,
    ops_per_client: int,
) -> tuple:
    rng = random.Random((seed << 20) ^ (0xE5C0 + client_index))
    ops = []
    if tenant.shape == "append":
        for i in range(ops_per_client):
            key = f"{tenant.name}-hot-{rng.randrange(tenant.hot_keys):04d}".encode()
            ops.append((OpCode.APPEND, key, fragment_for(client_index, i)))
        return tuple(ops)

    zipf = (
        ZipfWorkload(
            ops_per_client=ops_per_client,
            universe=tenant.universe,
            alpha=tenant.zipf_alpha,
            seed=seed,
        )
        if tenant.shape == "zipf"
        else None
    )
    for _ in range(ops_per_client):
        if zipf is not None:
            index = zipf._sample(rng)
        else:
            index = rng.randrange(tenant.universe)
        key = f"{tenant.name}-{index:06d}".encode()
        if rng.random() < tenant.write_ratio:
            ops.append((OpCode.INSERT, key, value_for_key(key, tenant.value_bytes)))
        else:
            ops.append((OpCode.LOOKUP, key, b""))
    return tuple(ops)


def build_streams(workload: WorkloadSpec, seed: int) -> list[ClientStream]:
    """Compile the workload into one deterministic stream per client."""
    streams: list[ClientStream] = []
    client_index = 0
    for tenant in workload.tenants:
        for _ in range(tenant.clients):
            streams.append(
                ClientStream(
                    client_index=client_index,
                    tenant=tenant.name,
                    ops=_tenant_ops(
                        tenant, seed, client_index, workload.ops_per_client
                    ),
                )
            )
            client_index += 1
    return streams
