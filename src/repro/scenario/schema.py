"""The validated scenario schema.

One :class:`Scenario` is the single, self-contained contract for an
entire adverse-conditions run — topology, traffic, fault plan,
invariant checks, and metric gates — validated **before** anything
starts, so a malformed config is rejected with an actionable,
path-qualified error instead of a traceback halfway through a cluster
run (the validation-first design of AsyncFlow's ``SimulationPayload``).

Everything is plain stdlib dataclasses + explicit validation: the
schema must load in the bare container.  ``from_dict`` is strict
(unknown fields are rejected, with a did-you-mean suggestion);
``to_dict`` emits the full canonical form, so
``Scenario.from_dict(s.to_dict()).to_dict() == s.to_dict()`` — the
round-trip property the library tests enforce on every shipped
scenario file.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field, fields as dc_fields
from typing import Any, Iterable, Sequence

#: Backends a scenario may declare; the first entry of
#: ``Scenario.backends`` is its default.
BACKENDS = ("local", "tcp", "udp", "sim", "sharded")
#: Per-tenant traffic shapes (built on :mod:`repro.workload`).
SHAPES = ("uniform", "zipf", "append")
#: Node-level fault actions, fired at workload-progress fractions.
FAULT_ACTIONS = ("kill", "repair", "kill_shard")
#: Message-level fault kinds (mirror of FaultKind.MESSAGE_KINDS).
MESSAGE_KINDS = ("drop", "delay", "duplicate", "reset", "stall")
#: Named FaultPlan presets layered under the per-rule messages.
NAMED_PLANS = ("overload", "flapping")
#: Gate comparison operators.
GATE_OPS = ("<", "<=", ">", ">=", "==")
#: Run-report metrics a gate may reference directly.
REPORT_METRICS = (
    "ops.attempted",
    "ops.acked",
    "ops.failed",
    "ops.acked_ratio",
    "ops.throughput_per_s",
    "faults.injected",
    "client.retries",
    "client.failovers",
    "client.nodes_marked_dead",
)
#: Stats a ``latency:<histogram>:<stat>`` gate may reference.
LATENCY_STATS = ("count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "min_ms", "max_ms")


class ScenarioError(ValueError):
    """A scenario failed validation.  ``path`` locates the offending
    field (e.g. ``faults.messages[2].delay_s``); the message says what
    was wrong and what would be accepted."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


def _suggest(name: str, candidates: Iterable[str]) -> str:
    close = difflib.get_close_matches(name, list(candidates), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


def _check_keys(data: dict, cls: type, path: str) -> None:
    allowed = {f.name for f in dc_fields(cls)}
    for key in data:
        if key not in allowed:
            raise ScenarioError(
                path,
                f"unknown field {key!r}{_suggest(key, allowed)}; "
                f"expected one of: {', '.join(sorted(allowed))}",
            )


def _as_dict(data: Any, path: str) -> dict:
    if not isinstance(data, dict):
        raise ScenarioError(path, f"expected an object, got {type(data).__name__}")
    return data


def _number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(path, f"expected a number, got {value!r}")
    return float(value)


def _integer(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(path, f"expected an integer, got {value!r}")
    return value


def _boolean(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(path, f"expected true/false, got {value!r}")
    return value


def _string(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioError(path, f"expected a string, got {value!r}")
    return value


def _choice(value: Any, allowed: Sequence[str], path: str) -> str:
    value = _string(value, path)
    if value not in allowed:
        raise ScenarioError(
            path,
            f"unknown value {value!r}{_suggest(value, allowed)}; "
            f"must be one of: {', '.join(allowed)}",
        )
    return value


# ---------------------------------------------------------------------------
# Components
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """Cluster shape plus raw :class:`~repro.core.config.ZHTConfig`
    overrides (validated against the real config fields)."""

    nodes: int = 4
    replicas: int = 1
    #: Worker processes per node — applied on the ``sharded`` backend,
    #: ignored (single-process nodes) elsewhere.
    shards: int = 2
    partitions: int = 64
    #: ZHTConfig field overrides.  ``persistence_dir: "auto"`` asks the
    #: runner for a run-scoped temporary directory.
    config: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Any, path: str = "topology") -> "TopologySpec":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        spec = cls(
            nodes=_integer(data.get("nodes", cls.nodes), f"{path}.nodes"),
            replicas=_integer(data.get("replicas", cls.replicas), f"{path}.replicas"),
            shards=_integer(data.get("shards", cls.shards), f"{path}.shards"),
            partitions=_integer(
                data.get("partitions", cls.partitions), f"{path}.partitions"
            ),
            config=dict(_as_dict(data.get("config", {}), f"{path}.config")),
        )
        spec.validate(path)
        return spec

    def validate(self, path: str = "topology") -> None:
        if self.nodes < 1:
            raise ScenarioError(f"{path}.nodes", f"must be >= 1, got {self.nodes}")
        if self.replicas < 0:
            raise ScenarioError(
                f"{path}.replicas", f"must be >= 0, got {self.replicas}"
            )
        if self.replicas >= self.nodes:
            raise ScenarioError(
                f"{path}.replicas",
                f"{self.replicas} replica(s) need at least "
                f"{self.replicas + 1} nodes, got {self.nodes}",
            )
        if self.shards < 1:
            raise ScenarioError(f"{path}.shards", f"must be >= 1, got {self.shards}")
        if self.partitions < 1:
            raise ScenarioError(
                f"{path}.partitions", f"must be >= 1, got {self.partitions}"
            )
        from ..core.config import ZHTConfig

        known = {f.name for f in dc_fields(ZHTConfig)}
        reserved = {
            "num_partitions": "topology.partitions",
            "num_shards": "topology.shards",
            "num_replicas": "topology.replicas",
            "transport": "the backend",
        }
        overrides = self.config  # zht-lint: ignore[CFG002] TopologySpec.config is a plain dict of overrides, not a ZHTConfig
        for key, value in overrides.items():
            if key in reserved:
                raise ScenarioError(
                    f"{path}.config.{key}",
                    f"is owned by {reserved[key]}; set it there instead",
                )
            if key not in known:
                raise ScenarioError(
                    f"{path}.config.{key}",
                    f"not a ZHTConfig field{_suggest(key, known)}",
                )
            if value is not None and not isinstance(value, (bool, int, float, str)):
                raise ScenarioError(
                    f"{path}.config.{key}",
                    f"override must be a JSON scalar, got {type(value).__name__}",
                )

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "replicas": self.replicas,
            "shards": self.shards,
            "partitions": self.partitions,
            "config": dict(self.config),
        }


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class.  A single-tenant workload is the common case;
    several tenants make a mixed multi-tenant profile (each tenant's
    keys live under its own ``name-`` prefix)."""

    name: str
    shape: str = "uniform"
    clients: int = 2
    #: INSERT fraction for uniform/zipf (the rest are LOOKUPs).
    write_ratio: float = 0.5
    zipf_alpha: float = 0.99
    #: Key-universe size for uniform/zipf.
    universe: int = 256
    #: Hot-key count for the append shape.
    hot_keys: int = 2
    value_bytes: int = 64

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "TenantSpec":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        if "name" not in data:
            raise ScenarioError(f"{path}.name", "tenant name is required")
        spec = cls(
            name=_string(data["name"], f"{path}.name"),
            shape=_choice(data.get("shape", cls.shape), SHAPES, f"{path}.shape"),
            clients=_integer(data.get("clients", cls.clients), f"{path}.clients"),
            write_ratio=_number(
                data.get("write_ratio", cls.write_ratio), f"{path}.write_ratio"
            ),
            zipf_alpha=_number(
                data.get("zipf_alpha", cls.zipf_alpha), f"{path}.zipf_alpha"
            ),
            universe=_integer(data.get("universe", cls.universe), f"{path}.universe"),
            hot_keys=_integer(data.get("hot_keys", cls.hot_keys), f"{path}.hot_keys"),
            value_bytes=_integer(
                data.get("value_bytes", cls.value_bytes), f"{path}.value_bytes"
            ),
        )
        spec.validate(path)
        return spec

    def validate(self, path: str) -> None:
        if not self.name or not self.name.replace("-", "").isalnum():
            raise ScenarioError(
                f"{path}.name",
                f"must be a non-empty alphanumeric/dash identifier, got {self.name!r}",
            )
        if self.shape not in SHAPES:
            raise ScenarioError(
                f"{path}.shape",
                f"unknown shape {self.shape!r}; must be one of: {', '.join(SHAPES)}",
            )
        if self.clients < 1:
            raise ScenarioError(f"{path}.clients", f"must be >= 1, got {self.clients}")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ScenarioError(
                f"{path}.write_ratio", f"must be in [0, 1], got {self.write_ratio}"
            )
        if self.zipf_alpha <= 0:
            raise ScenarioError(
                f"{path}.zipf_alpha", f"must be > 0, got {self.zipf_alpha}"
            )
        if self.universe < 1:
            raise ScenarioError(
                f"{path}.universe", f"must be >= 1, got {self.universe}"
            )
        if self.hot_keys < 1:
            raise ScenarioError(
                f"{path}.hot_keys", f"must be >= 1, got {self.hot_keys}"
            )
        if not 1 <= self.value_bytes <= 65536:
            raise ScenarioError(
                f"{path}.value_bytes",
                f"must be in [1, 65536], got {self.value_bytes}",
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "shape": self.shape,
            "clients": self.clients,
            "write_ratio": self.write_ratio,
            "zipf_alpha": self.zipf_alpha,
            "universe": self.universe,
            "hot_keys": self.hot_keys,
            "value_bytes": self.value_bytes,
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """The traffic profile: how many ops each client issues, and which
    tenant classes the clients belong to."""

    ops_per_client: int = 60
    tenants: tuple = (TenantSpec(name="default"),)

    @classmethod
    def from_dict(cls, data: Any, path: str = "workload") -> "WorkloadSpec":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        raw_tenants = data.get("tenants", [t.to_dict() for t in cls.tenants])
        if not isinstance(raw_tenants, list):
            raise ScenarioError(f"{path}.tenants", "expected a list of tenants")
        tenants = tuple(
            TenantSpec.from_dict(t, f"{path}.tenants[{i}]")
            for i, t in enumerate(raw_tenants)
        )
        spec = cls(
            ops_per_client=_integer(
                data.get("ops_per_client", cls.ops_per_client),
                f"{path}.ops_per_client",
            ),
            tenants=tenants,
        )
        spec.validate(path)
        return spec

    def validate(self, path: str = "workload") -> None:
        if self.ops_per_client < 1:
            raise ScenarioError(
                f"{path}.ops_per_client", f"must be >= 1, got {self.ops_per_client}"
            )
        if not self.tenants:
            raise ScenarioError(f"{path}.tenants", "at least one tenant is required")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ScenarioError(
                f"{path}.tenants", f"tenant names must be unique, got {names}"
            )
        for i, tenant in enumerate(self.tenants):
            tenant.validate(f"{path}.tenants[{i}]")

    @property
    def total_clients(self) -> int:
        return sum(t.clients for t in self.tenants)

    @property
    def total_ops(self) -> int:
        return self.ops_per_client * self.total_clients

    def to_dict(self) -> dict:
        return {
            "ops_per_client": self.ops_per_client,
            "tenants": [t.to_dict() for t in self.tenants],
        }


@dataclass(frozen=True)
class FaultEvent:
    """A node-level fault action fired when workload progress crosses
    ``at`` (a fraction of total ops, like the chaos harness's
    kill/repair indices)."""

    action: str
    at: float
    #: Victim selector: ``-1`` = automatic (next victim in deterministic
    #: order for ``kill``, most recent unrepaired victim for ``repair``);
    #: otherwise an index into the sorted node list (``kill``/``repair``)
    #: or a shard index (``kill_shard``).
    target: int = -1

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "FaultEvent":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        if "action" not in data or "at" not in data:
            raise ScenarioError(path, "fault events require 'action' and 'at'")
        event = cls(
            action=_choice(data["action"], FAULT_ACTIONS, f"{path}.action"),
            at=_number(data["at"], f"{path}.at"),
            target=_integer(data.get("target", cls.target), f"{path}.target"),
        )
        event.validate(path)
        return event

    def validate(self, path: str) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ScenarioError(
                f"{path}.action",
                f"unknown action {self.action!r}; must be one of: "
                f"{', '.join(FAULT_ACTIONS)}",
            )
        if not 0.0 <= self.at <= 1.0:
            raise ScenarioError(
                f"{path}.at",
                f"progress fraction must be in [0, 1], got {self.at}",
            )
        if self.target < -1:
            raise ScenarioError(
                f"{path}.target", f"must be -1 (auto) or >= 0, got {self.target}"
            )

    def to_dict(self) -> dict:
        return {"action": self.action, "at": self.at, "target": self.target}


@dataclass(frozen=True)
class MessageFault:
    """A declarative message-level fault rule, compiled to a
    :class:`~repro.faults.plan.FaultRule` (same matching semantics)."""

    kind: str
    probability: float = 1.0
    #: ``"any"`` message, or ``"victim"`` — the designated problem node
    #: (the first kill target, or the deterministic victim when the
    #: scenario kills nothing).
    target: str = "any"
    #: OpCode name filter (e.g. ``"INSERT"``) or null for any op.
    op: str | None = None
    #: Skip the first N matching messages before the rule is eligible.
    after: int = 0
    #: Max firings (null = unlimited).
    count: int | None = None
    #: Injected latency for delay/stall kinds (seconds).
    delay_s: float = 0.0

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "MessageFault":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        if "kind" not in data:
            raise ScenarioError(f"{path}.kind", "message faults require 'kind'")
        op = data.get("op", cls.op)
        count = data.get("count", cls.count)
        rule = cls(
            kind=_choice(data["kind"], MESSAGE_KINDS, f"{path}.kind"),
            probability=_number(
                data.get("probability", cls.probability), f"{path}.probability"
            ),
            target=_choice(
                data.get("target", cls.target), ("any", "victim"), f"{path}.target"
            ),
            op=None if op is None else _string(op, f"{path}.op"),
            after=_integer(data.get("after", cls.after), f"{path}.after"),
            count=None if count is None else _integer(count, f"{path}.count"),
            delay_s=_number(data.get("delay_s", cls.delay_s), f"{path}.delay_s"),
        )
        rule.validate(path)
        return rule

    def validate(self, path: str) -> None:
        if self.kind not in MESSAGE_KINDS:
            raise ScenarioError(
                f"{path}.kind",
                f"unknown kind {self.kind!r}{_suggest(self.kind, MESSAGE_KINDS)}; "
                f"must be one of: {', '.join(MESSAGE_KINDS)}",
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ScenarioError(
                f"{path}.probability", f"must be in [0, 1], got {self.probability}"
            )
        if self.op is not None:
            from ..core.protocol import OpCode

            names = [o.name for o in OpCode]
            if self.op not in names:
                raise ScenarioError(
                    f"{path}.op",
                    f"unknown opcode {self.op!r}{_suggest(self.op, names)}",
                )
        if self.after < 0:
            raise ScenarioError(f"{path}.after", f"must be >= 0, got {self.after}")
        if self.count is not None and self.count < 1:
            raise ScenarioError(
                f"{path}.count", f"must be >= 1 or null, got {self.count}"
            )
        if self.delay_s < 0:
            raise ScenarioError(
                f"{path}.delay_s",
                f"durations must be >= 0, got {self.delay_s}",
            )
        if self.kind in ("delay", "stall") and self.delay_s == 0:
            raise ScenarioError(
                f"{path}.delay_s",
                f"{self.kind} faults need delay_s > 0",
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "probability": self.probability,
            "target": self.target,
            "op": self.op,
            "after": self.after,
            "count": self.count,
            "delay_s": self.delay_s,
        }


@dataclass(frozen=True)
class FaultsSpec:
    """The complete fault plan: an optional named preset, scheduled
    node-level events, and message-level rules."""

    #: Named :class:`~repro.faults.plan.FaultPlan` preset layered under
    #: the explicit message rules (``overload`` / ``flapping``).
    plan: str | None = None
    events: tuple = ()
    messages: tuple = ()

    @classmethod
    def from_dict(cls, data: Any, path: str = "faults") -> "FaultsSpec":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        plan = data.get("plan", cls.plan)
        raw_events = data.get("events", [])
        raw_messages = data.get("messages", [])
        if not isinstance(raw_events, list):
            raise ScenarioError(f"{path}.events", "expected a list of fault events")
        if not isinstance(raw_messages, list):
            raise ScenarioError(
                f"{path}.messages", "expected a list of message faults"
            )
        spec = cls(
            plan=(
                None
                if plan is None
                else _choice(plan, NAMED_PLANS, f"{path}.plan")
            ),
            events=tuple(
                FaultEvent.from_dict(e, f"{path}.events[{i}]")
                for i, e in enumerate(raw_events)
            ),
            messages=tuple(
                MessageFault.from_dict(m, f"{path}.messages[{i}]")
                for i, m in enumerate(raw_messages)
            ),
        )
        spec.validate(path)
        return spec

    def validate(self, path: str = "faults") -> None:
        if self.plan is not None and self.plan not in NAMED_PLANS:
            raise ScenarioError(
                f"{path}.plan",
                f"unknown plan {self.plan!r}; must be one of: "
                f"{', '.join(NAMED_PLANS)}",
            )
        last_at = 0.0
        pending_kills = 0
        for i, event in enumerate(self.events):
            event.validate(f"{path}.events[{i}]")
            if event.at < last_at:
                raise ScenarioError(
                    f"{path}.events[{i}].at",
                    f"events must be ordered by progress; {event.at} "
                    f"follows {last_at}",
                )
            last_at = event.at
            if event.action == "kill":
                pending_kills += 1
            elif event.action == "repair":
                if pending_kills == 0:
                    raise ScenarioError(
                        f"{path}.events[{i}]",
                        "repair without a preceding kill",
                    )
                pending_kills -= 1
        for i, message in enumerate(self.messages):
            message.validate(f"{path}.messages[{i}]")

    @property
    def kills(self) -> int:
        return sum(1 for e in self.events if e.action == "kill")

    @property
    def lossy(self) -> bool:
        """True when the plan can lose or duplicate acked messages (which
        makes mutations at-least-once, like ``chaos --durability-only``)."""
        if self.plan is not None:
            return True
        return any(
            m.kind in ("drop", "duplicate", "reset") for m in self.messages
        )

    def to_dict(self) -> dict:
        return {
            "plan": self.plan,
            "events": [e.to_dict() for e in self.events],
            "messages": [m.to_dict() for m in self.messages],
        }


@dataclass(frozen=True)
class ChecksSpec:
    """Which post-run invariants must hold for the verdict to pass.

    ``durability`` is the paper's acked-durability guarantee and is
    checkable on every backend.  The other three introspect server
    stores and are auto-skipped (reported, not failed) on the sharded
    backend, whose workers live in child processes.
    """

    #: No acknowledged write may be lost (readable via a fresh client).
    durability: bool = True
    #: The owner must agree with the ack ledger (off under lossy plans:
    #: retries make mutations at-least-once).
    divergence: bool = False
    #: Every key on >= min(replicas+1, alive) instances after the run.
    replication: bool = False
    #: Replica chains converge to the expected value after quiesce.
    convergence: bool = False

    @classmethod
    def from_dict(cls, data: Any, path: str = "checks") -> "ChecksSpec":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        return cls(
            **{
                f.name: _boolean(data.get(f.name, getattr(cls, f.name)),
                                 f"{path}.{f.name}")
                for f in dc_fields(cls)
            }
        )

    def validate(self, path: str = "checks") -> None:
        pass  # booleans; nothing further to constrain

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in dc_fields(self)}


@dataclass(frozen=True)
class GateSpec:
    """A numeric threshold over run metrics: a report metric by name
    (see :data:`REPORT_METRICS`), a registry counter
    (``counter:<name>``), or a latency stat
    (``latency:<histogram>:<stat>``)."""

    metric: str
    op: str
    value: float

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "GateSpec":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        for required in ("metric", "op", "value"):
            if required not in data:
                raise ScenarioError(path, f"gates require {required!r}")
        gate = cls(
            metric=_string(data["metric"], f"{path}.metric"),
            op=_choice(data["op"], GATE_OPS, f"{path}.op"),
            value=_number(data["value"], f"{path}.value"),
        )
        gate.validate(path)
        return gate

    def validate(self, path: str) -> None:
        if self.op not in GATE_OPS:
            raise ScenarioError(
                f"{path}.op",
                f"unknown operator {self.op!r}; must be one of: "
                f"{', '.join(GATE_OPS)}",
            )
        metric = self.metric
        if ":" in metric:
            parts = metric.split(":")
            if parts[0] == "counter" and len(parts) == 2 and parts[1]:
                return
            if parts[0] == "latency":
                if len(parts) == 3 and parts[1] and parts[2] in LATENCY_STATS:
                    return
                raise ScenarioError(
                    f"{path}.metric",
                    f"latency gates are 'latency:<histogram>:<stat>' with "
                    f"stat one of: {', '.join(LATENCY_STATS)}; got {metric!r}",
                )
            raise ScenarioError(
                f"{path}.metric",
                f"unknown metric namespace {parts[0]!r}; registry gates "
                f"use 'counter:<name>' or 'latency:<histogram>:<stat>'",
            )
        if metric not in REPORT_METRICS:
            raise ScenarioError(
                f"{path}.metric",
                f"unknown metric {metric!r}{_suggest(metric, REPORT_METRICS)}; "
                f"report metrics: {', '.join(REPORT_METRICS)} — or use "
                f"'counter:<name>' / 'latency:<histogram>:<stat>'",
            )

    def to_dict(self) -> dict:
        return {"metric": self.metric, "op": self.op, "value": self.value}

    def describe(self) -> str:
        return f"{self.metric} {self.op} {self.value:g}"


# ---------------------------------------------------------------------------
# The scenario
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One validated, self-contained scenario."""

    name: str
    description: str
    backends: tuple = ("local",)
    seed: int = 0
    tags: tuple = ()
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: FaultsSpec = field(default_factory=FaultsSpec)
    checks: ChecksSpec = field(default_factory=ChecksSpec)
    gates: tuple = ()

    @classmethod
    def from_dict(cls, data: Any, path: str = "scenario") -> "Scenario":
        data = _as_dict(data, path)
        _check_keys(data, cls, path)
        for required in ("name", "description"):
            if required not in data:
                raise ScenarioError(path, f"scenarios require {required!r}")
        raw_backends = data.get("backends", list(cls.backends))
        if not isinstance(raw_backends, list) or not raw_backends:
            raise ScenarioError(
                f"{path}.backends", "expected a non-empty list of backends"
            )
        raw_tags = data.get("tags", [])
        if not isinstance(raw_tags, list):
            raise ScenarioError(f"{path}.tags", "expected a list of strings")
        raw_gates = data.get("gates", [])
        if not isinstance(raw_gates, list):
            raise ScenarioError(f"{path}.gates", "expected a list of gates")
        scenario = cls(
            name=_string(data["name"], f"{path}.name"),
            description=_string(data["description"], f"{path}.description"),
            backends=tuple(
                _choice(b, BACKENDS, f"{path}.backends[{i}]")
                for i, b in enumerate(raw_backends)
            ),
            seed=_integer(data.get("seed", cls.seed), f"{path}.seed"),
            tags=tuple(
                _string(t, f"{path}.tags[{i}]") for i, t in enumerate(raw_tags)
            ),
            topology=TopologySpec.from_dict(
                data.get("topology", {}), f"{path}.topology"
            ),
            workload=WorkloadSpec.from_dict(
                data.get("workload", {}), f"{path}.workload"
            ),
            faults=FaultsSpec.from_dict(data.get("faults", {}), f"{path}.faults"),
            checks=ChecksSpec.from_dict(data.get("checks", {}), f"{path}.checks"),
            gates=tuple(
                GateSpec.from_dict(g, f"{path}.gates[{i}]")
                for i, g in enumerate(raw_gates)
            ),
        )
        scenario.validate(path)
        return scenario

    @classmethod
    def from_json(cls, text: str, path: str = "scenario") -> "Scenario":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ScenarioError(path, f"not valid JSON: {exc}") from None
        return cls.from_dict(data, path)

    def validate(self, path: str = "scenario") -> None:
        if not self.name or not self.name.replace("-", "").isalnum():
            raise ScenarioError(
                f"{path}.name",
                f"must be a non-empty kebab-case identifier, got {self.name!r}",
            )
        for backend in self.backends:
            if backend not in BACKENDS:
                raise ScenarioError(
                    f"{path}.backends",
                    f"unknown backend {backend!r}{_suggest(backend, BACKENDS)}; "
                    f"must be one of: {', '.join(BACKENDS)}",
                )
        self.topology.validate(f"{path}.topology")
        self.workload.validate(f"{path}.workload")
        self.faults.validate(f"{path}.faults")
        self.checks.validate(f"{path}.checks")
        for i, gate in enumerate(self.gates):
            gate.validate(f"{path}.gates[{i}]")

        # -- cross-component consistency ---------------------------------
        kills = self.faults.kills
        if kills and self.topology.nodes < 3:
            raise ScenarioError(
                f"{path}.topology.nodes",
                f"kill events need >= 3 nodes (victim + survivors), "
                f"got {self.topology.nodes}",
            )
        if kills > max(0, self.topology.nodes - 2):
            raise ScenarioError(
                f"{path}.faults.events",
                f"{kills} kill(s) on {self.topology.nodes} nodes would leave "
                f"fewer than 2 survivors",
            )
        if kills and self.checks.durability and self.topology.replicas < 1:
            raise ScenarioError(
                f"{path}.topology.replicas",
                "killing a node while checking durability requires "
                "replicas >= 1 (an unreplicated victim loses acked data "
                "by construction)",
            )
        shard_kills = [e for e in self.faults.events if e.action == "kill_shard"]
        if shard_kills:
            if set(self.backends) != {"sharded"}:
                raise ScenarioError(
                    f"{path}.backends",
                    "kill_shard events only run on the sharded backend; "
                    'set "backends": ["sharded"]',
                )
            if self.topology.shards < 2:
                raise ScenarioError(
                    f"{path}.topology.shards",
                    "kill_shard needs >= 2 shards per node (a sibling must "
                    "keep serving)",
                )
        if self.faults.lossy and (
            self.checks.divergence or self.checks.convergence
        ):
            raise ScenarioError(
                f"{path}.checks",
                "lossy fault plans (drops/duplicates/resets or a named "
                "plan) make mutations at-least-once; divergence and "
                "convergence checks cannot hold — gate on durability "
                "instead (see chaos --durability-only)",
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "backends": list(self.backends),
            "seed": self.seed,
            "tags": list(self.tags),
            "topology": self.topology.to_dict(),
            "workload": self.workload.to_dict(),
            "faults": self.faults.to_dict(),
            "checks": self.checks.to_dict(),
            "gates": [g.to_dict() for g in self.gates],
        }

    def to_json(self) -> str:
        """Canonical serialization (the library's on-disk format)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @property
    def default_backend(self) -> str:
        return self.backends[0]
