"""The named-scenario library.

Each ``.json`` file in this directory is one canonical
:class:`~repro.scenario.schema.Scenario` document — the file on disk is
byte-identical to ``Scenario.to_json()`` (the round-trip test enforces
it), so the schema's serializer is the single source of formatting
truth.  Scenarios tagged ``fast`` are run by tier-1 CI on every PR; the
rest run in the nightly job.
"""

from __future__ import annotations

import difflib
import os
from pathlib import Path

from ..schema import Scenario, ScenarioError

_DIR = Path(__file__).resolve().parent


def library_names() -> list[str]:
    """Sorted names of every scenario shipped in the library."""
    return sorted(p.stem for p in _DIR.glob("*.json"))


def load_library() -> list[Scenario]:
    """Load and validate every library scenario, sorted by name."""
    return [load_scenario(name) for name in library_names()]


def load_scenario(name_or_path: str) -> Scenario:
    """Load one scenario by library name or by path to a JSON file."""
    if name_or_path.endswith(".json") or os.sep in name_or_path:
        path = Path(name_or_path)
        if not path.exists():
            raise ScenarioError("file", f"no such scenario file: {path}")
        return Scenario.from_json(path.read_text())
    path = _DIR / f"{name_or_path}.json"
    if not path.exists():
        names = library_names()
        close = difflib.get_close_matches(name_or_path, names, n=3)
        hint = f" (did you mean {', '.join(map(repr, close))}?)" if close else ""
        raise ScenarioError(
            "name",
            f"unknown scenario {name_or_path!r}{hint}; "
            f"library has: {', '.join(names)}",
        )
    return Scenario.from_json(path.read_text())
