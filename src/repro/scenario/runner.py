"""Execute one validated :class:`~repro.scenario.schema.Scenario`
against any backend and return a machine-readable :class:`Verdict`.

The run has the same phases as the hand-wired chaos/verify harnesses,
but driven entirely from the declarative config:

1. **build** — topology → :func:`~repro.scenario.cluster.default_config`
   + overrides → a live cluster (or the DES);
2. **traffic** — the workload spec compiles to one deterministic op
   stream per client (:mod:`repro.scenario.traffic`), acknowledged
   mutations land in the ledger;
3. **faults** — message rules + a named preset become one seeded
   :class:`~repro.faults.plan.FaultPlan`; node-level events fire when
   global progress crosses their fraction;
4. **verdict** — the configured invariant checks run against the
   stores, metric gates are evaluated, and everything is folded into a
   pass/fail JSON document (``Verdict.to_dict``).
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from collections import Counter as Multiset
from dataclasses import dataclass, field

from typing import Any, Callable, Iterator

from ..core.config import ZHTConfig
from ..core.errors import KeyNotFound, ZHTError
from ..core.membership import MembershipTable
from ..core.protocol import OpCode
from ..faults.invariants import (
    AckLedger,
    check_convergence,
    check_replication_level,
    classify_acked_outcomes,
)
from ..faults.plan import (
    VICTIM_TARGET,
    FaultKind,
    FaultPlan,
    FaultRule,
    resolve_victim_rules,
)
from ..faults.transport import FaultyClientTransport
from .cluster import build_cluster, default_config, kill_node, repair_node, server_cores
from .schema import FaultEvent, Scenario, ScenarioError
from .traffic import FRAGMENT_BYTES, ClientStream, build_streams

#: Max violation strings kept per check in the verdict document.
MAX_VIOLATIONS = 12


# ---------------------------------------------------------------------------
# Verdict document
# ---------------------------------------------------------------------------


@dataclass
class CheckResult:
    name: str
    #: ``pass`` / ``fail`` / ``skipped`` (skipped = not requested, or not
    #: introspectable on this backend; never counts against the verdict).
    status: str
    violations: list = field(default_factory=list)
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "violations": list(self.violations),
            "detail": self.detail,
        }


@dataclass
class GateResult:
    metric: str
    op: str
    value: float
    observed: float | None
    ok: bool

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "op": self.op,
            "value": self.value,
            "observed": self.observed,
            "ok": self.ok,
        }

    def describe(self) -> str:
        observed = "absent" if self.observed is None else f"{self.observed:g}"
        flag = "OK" if self.ok else "FAIL"
        return f"{self.metric} {self.op} {self.value:g} (observed {observed}): {flag}"


@dataclass
class Verdict:
    """The machine-readable outcome of one scenario run."""

    scenario: str
    backend: str
    seed: int
    ok: bool = False
    duration_s: float = 0.0
    clients: int = 0
    ops_attempted: int = 0
    ops_acked: int = 0
    ops_failed: int = 0
    injected_faults: int = 0
    fault_digest: str = ""
    checks: list = field(default_factory=list)
    gates: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "seed": self.seed,
            "ok": self.ok,
            "duration_s": round(self.duration_s, 6),
            "clients": self.clients,
            "ops": {
                "attempted": self.ops_attempted,
                "acked": self.ops_acked,
                "failed": self.ops_failed,
            },
            "faults": {
                "injected": self.injected_faults,
                "digest": self.fault_digest,
            },
            "checks": [c.to_dict() for c in self.checks],
            "gates": [g.to_dict() for g in self.gates],
            "metrics": self.metrics,
            "error": self.error,
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"scenario={self.scenario} backend={self.backend} seed={self.seed}",
            f"ops: {self.ops_acked}/{self.ops_attempted} acked, "
            f"{self.ops_failed} failed across {self.clients} client(s) "
            f"in {self.duration_s:.2f}s",
            f"faults injected: {self.injected_faults} "
            f"(digest {self.fault_digest or '-'})",
        ]
        for check in self.checks:
            line = f"check {check.name}: {check.status.upper()}"
            if check.detail:
                line += f" ({check.detail})"
            lines.append(line)
            for violation in check.violations[:3]:
                lines.append(f"  VIOLATION: {violation}")
        for gate in self.gates:
            lines.append(f"gate {gate.describe()}")
        if self.error:
            lines.append(f"error: {self.error}")
        lines.append(f"verdict: {'PASS' if self.ok else 'FAIL'}")
        return lines


# ---------------------------------------------------------------------------
# Fault-plan compilation
# ---------------------------------------------------------------------------

_KIND_MAP = {
    "drop": FaultKind.DROP,
    "delay": FaultKind.DELAY,
    "duplicate": FaultKind.DUPLICATE,
    "reset": FaultKind.RESET,
    "stall": FaultKind.STALL,
}


def build_plan(scenario: Scenario, seed: int) -> FaultPlan:
    """Compile the declarative fault spec into one seeded FaultPlan."""
    faults = scenario.faults
    if faults.plan == "overload":
        plan = FaultPlan.overload(seed)
    elif faults.plan == "flapping":
        plan = FaultPlan.flapping(seed)
    else:
        plan = FaultPlan(seed)
    for message in faults.messages:
        plan.add(
            FaultRule(
                _KIND_MAP[message.kind],
                target=VICTIM_TARGET if message.target == "victim" else None,
                op=message.op,
                after=message.after,
                count=message.count,
                probability=message.probability,
                delay=message.delay_s,
            )
        )
    return plan


def _truncate(violations: list) -> list:
    if len(violations) <= MAX_VIOLATIONS:
        return violations
    extra = len(violations) - MAX_VIOLATIONS
    return violations[:MAX_VIOLATIONS] + [f"... and {extra} more"]


# ---------------------------------------------------------------------------
# Gate evaluation
# ---------------------------------------------------------------------------

_GATE_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
}


def _evaluate_gates(scenario: Scenario, metrics: dict) -> list:
    results = []
    snapshot = None
    for gate in scenario.gates:
        observed: float | None = None
        if gate.metric.startswith(("counter:", "latency:")):
            if snapshot is None:
                from ..obs import metrics_snapshot

                snapshot = metrics_snapshot()
            parts = gate.metric.split(":")
            if parts[0] == "counter":
                raw = snapshot.get("counters", {}).get(parts[1])
            else:
                raw = snapshot.get("latency", {}).get(parts[1], {}).get(parts[2])
            observed = None if raw is None else float(raw)
        else:
            raw = metrics.get(gate.metric)
            observed = None if raw is None else float(raw)
        ok = observed is not None and _GATE_OPS[gate.op](observed, gate.value)
        results.append(
            GateResult(gate.metric, gate.op, gate.value, observed, ok)
        )
    return results


# ---------------------------------------------------------------------------
# Shared verification (live + sim)
# ---------------------------------------------------------------------------


def _check_append_durability(
    append_acked: dict,
    lookup: Callable[[bytes], bytes],
    *,
    retries: int = 3,
) -> list:
    """Every acked APPEND fragment must appear in the key's final value
    (multiset-subset: concurrent appenders interleave in any order)."""
    violations = []
    for key, fragments in append_acked.items():
        value = None
        for _attempt in range(retries):
            try:
                value = lookup(key)
                break
            except KeyNotFound:
                break
            except ZHTError:
                continue
        if value is None:
            violations.append(
                f"acked appends lost: {key!r} unreadable "
                f"({len(fragments)} fragment(s))"
            )
            continue
        chunks = Multiset(
            bytes(value[i : i + FRAGMENT_BYTES])
            for i in range(0, len(value), FRAGMENT_BYTES)
        )
        missing = Multiset(fragments) - chunks
        for fragment, n in missing.items():
            violations.append(
                f"acked append fragment missing: {key!r} lacks "
                f"{fragment!r} x{n}"
            )
    return violations


def _check_append_convergence(
    append_acked: dict,
    cores: list,
    membership: MembershipTable,
    replicas: int,
    hash_name: str,
) -> list:
    """After quiesce, every alive chain member holds byte-identical
    append values (order may differ from ack order, so chains are
    compared against each other, not the ledger)."""
    by_instance = {s.info.instance_id: s for s in cores}
    violations = []
    for key in append_acked:
        pid = membership.partition_of_key(key, hash_name)
        chain = membership.replicas_for_partition(pid, replicas)
        values = {}
        for inst in chain:
            if not membership.nodes[inst.node_id].alive:
                continue
            server = by_instance.get(inst.instance_id)
            if server is None:
                continue
            part = server.partitions.get(pid)
            if part is None or key not in part.store:
                violations.append(
                    f"append replica missing: {key!r} absent on "
                    f"{inst.instance_id[:8]}"
                )
                continue
            values[inst.instance_id[:8]] = part.store.get(key)
        if len(set(values.values())) > 1:
            violations.append(
                f"append replicas disagree: {key!r} has "
                f"{len(set(values.values()))} distinct values across "
                f"{sorted(values)}"
            )
    return violations


def _run_checks(
    scenario: Scenario,
    *,
    ledger: AckLedger,
    append_acked: dict,
    lookup: Callable[[bytes], bytes],
    cores: list,
    membership: MembershipTable,
    hash_name: str,
) -> list:
    """Run the configured invariant checks; returns CheckResults."""
    checks = scenario.checks
    replicas = scenario.topology.replicas
    results = []
    introspectable = bool(cores)

    # -- durability (every backend) ----------------------------------
    if checks.durability:
        if introspectable:
            lost, diverged = classify_acked_outcomes(
                ledger, lookup, cores, membership
            )
        else:
            lost, diverged = ledger.verify(lookup), []
        lost += _check_append_durability(append_acked, lookup)
        results.append(
            CheckResult(
                "durability",
                "fail" if lost else "pass",
                _truncate(lost),
                f"{ledger.acked_ops + sum(len(v) for v in append_acked.values())}"
                " acked mutation(s) audited",
            )
        )
    else:
        diverged = []
        results.append(CheckResult("durability", "skipped", [], "not requested"))

    # -- divergence (needs store introspection) ----------------------
    if not checks.divergence:
        results.append(CheckResult("divergence", "skipped", [], "not requested"))
    elif not introspectable:
        results.append(
            CheckResult(
                "divergence",
                "skipped",
                [],
                "stores not introspectable on this backend",
            )
        )
    else:
        if not checks.durability:
            _, diverged = classify_acked_outcomes(
                ledger, lookup, cores, membership
            )
        results.append(
            CheckResult(
                "divergence",
                "fail" if diverged else "pass",
                _truncate(diverged),
            )
        )

    # -- replication level -------------------------------------------
    if not checks.replication:
        results.append(CheckResult("replication", "skipped", [], "not requested"))
    elif not introspectable:
        results.append(
            CheckResult(
                "replication",
                "skipped",
                [],
                "stores not introspectable on this backend",
            )
        )
    else:
        alive = sum(1 for n in membership.nodes.values() if n.alive)
        min_copies = min(replicas + 1, alive)
        keys = list(ledger.expected.keys()) + list(append_acked.keys())
        violations = check_replication_level(cores, membership, keys, min_copies)
        results.append(
            CheckResult(
                "replication",
                "fail" if violations else "pass",
                _truncate(violations),
                f"min {min_copies} cop(ies) over {len(keys)} key(s)",
            )
        )

    # -- replica convergence -----------------------------------------
    if not checks.convergence:
        results.append(CheckResult("convergence", "skipped", [], "not requested"))
    elif not introspectable:
        results.append(
            CheckResult(
                "convergence",
                "skipped",
                [],
                "stores not introspectable on this backend",
            )
        )
    else:
        violations = check_convergence(
            cores, membership, ledger.expected, replicas, hash_name
        )
        violations += _check_append_convergence(
            append_acked, cores, membership, replicas, hash_name
        )
        results.append(
            CheckResult(
                "convergence",
                "fail" if violations else "pass",
                _truncate(violations),
            )
        )
    return results


# ---------------------------------------------------------------------------
# Live execution (local / tcp / udp / sharded)
# ---------------------------------------------------------------------------


class _EventDriver:
    """Fires scheduled node-level fault events as progress crosses their
    fractions.  Victim selection is deterministic: automatic kills walk
    ``sorted(nodes)[1:]`` in order, exactly like the chaos harness."""

    def __init__(
        self,
        scenario: Scenario,
        cluster: Any,
        backend: str,
        config: ZHTConfig,
        plan: FaultPlan,
        seed: int,
    ) -> None:
        self.scenario = scenario
        self.cluster = cluster
        self.backend = backend
        self.config = config
        self.plan = plan
        self.seed = seed
        self.total_ops = scenario.workload.total_ops
        self.pending = list(scenario.faults.events)
        self.nodes = sorted(cluster.membership.nodes)
        self.auto_victims = list(self.nodes[1:])
        self.killed: list[str] = []
        self.shard_respawns: list[tuple] = []

    @property
    def designated_victim(self) -> str:
        """The node 'victim'-targeted message rules resolve to."""
        for event in self.scenario.faults.events:
            if event.action == "kill":
                if 0 <= event.target < len(self.nodes):
                    return self.nodes[event.target]
                return self.auto_victims[0]
        return self.nodes[1] if len(self.nodes) > 1 else self.nodes[0]

    def poll(self, done: int) -> None:
        while self.pending and done >= self.pending[0].at * self.total_ops:
            self._fire(self.pending.pop(0))

    def flush(self) -> None:
        while self.pending:
            self._fire(self.pending.pop(0))

    def _fire(self, event: FaultEvent) -> None:
        if event.action == "kill":
            if 0 <= event.target < len(self.nodes):
                victim = self.nodes[event.target]
                if victim in self.auto_victims:
                    self.auto_victims.remove(victim)
            else:
                victim = self.auto_victims.pop(0)
            kill_node(self.cluster, self.backend, victim, self.plan)
            self.killed.append(victim)
        elif event.action == "repair":
            if 0 <= event.target < len(self.nodes):
                victim = self.nodes[event.target]
            else:
                victim = self.killed[-1]
            repair_node(self.cluster, victim, self.config, self.seed)
        elif event.action == "kill_shard":
            server = self.cluster.servers[0]
            shard = event.target if event.target >= 0 else 0
            old_pid = server.shard_pid(shard)
            server.kill_shard(shard)
            self.shard_respawns.append((server, shard, old_pid))
            # Record the kill in the trace, but do NOT mark the target
            # crashed: the supervisor respawns the shard and clients are
            # expected to retry straight through the gap.
            self.plan.record_external(FaultKind.CRASH, f"shard:{shard}")

    def await_respawns(self, timeout: float = 10.0) -> None:
        for server, shard, old_pid in self.shard_respawns:
            server.wait_for_respawn(shard, old_pid, timeout=timeout)


def _run_live(scenario: Scenario, backend: str, seed: int, verdict: Verdict) -> None:
    topo = scenario.topology
    overrides = dict(topo.config)
    tmpdir = None
    if overrides.get("persistence_dir") == "auto":
        tmpdir = tempfile.TemporaryDirectory(prefix=f"scenario-{scenario.name}-")
        overrides["persistence_dir"] = tmpdir.name
    config = default_config(backend, topo.replicas).replace(
        num_partitions=topo.partitions,
        num_shards=topo.shards if backend == "sharded" else 1,
        **overrides,
    )
    plan = build_plan(scenario, seed)
    streams = build_streams(scenario.workload, seed)
    verdict.clients = len(streams)
    total_ops = scenario.workload.total_ops

    ledger = AckLedger()
    append_acked: dict[bytes, list] = {}
    lock = threading.Lock()
    progress = {"done": 0}
    results = [(0, 0, None)] * len(streams)

    try:
        with build_cluster(backend, topo.nodes, config, seed) as cluster:
            driver = _EventDriver(scenario, cluster, backend, config, plan, seed)
            resolve_victim_rules(
                plan, cluster.membership, driver.designated_victim
            )

            def worker(stream: ClientStream) -> None:
                zht = cluster.client(seed=(seed << 8) + stream.client_index)
                zht.transport = FaultyClientTransport(zht.transport, plan)
                acked = failed = 0
                for op, key, value in stream.ops:
                    try:
                        if op == OpCode.INSERT:
                            zht.insert(key, value)
                        elif op == OpCode.APPEND:
                            zht.append(key, value)
                        else:
                            try:
                                zht.lookup(key)
                            except KeyNotFound:
                                pass
                        acked += 1
                        if op != OpCode.LOOKUP:
                            with lock:
                                if op == OpCode.APPEND:
                                    append_acked.setdefault(key, []).append(value)
                                else:
                                    ledger.record(op, key, value)
                    except ZHTError:
                        failed += 1
                    with lock:
                        progress["done"] += 1
                results[stream.client_index] = (acked, failed, zht.stats)

            threads = [
                threading.Thread(
                    target=worker,
                    args=(stream,),
                    name=f"scenario-c{stream.client_index}",
                )
                for stream in streams
            ]
            t_start = time.perf_counter()
            for t in threads:
                t.start()
            while any(t.is_alive() for t in threads):
                with lock:
                    done = progress["done"]
                driver.poll(done)
                if not driver.pending:
                    break
                time.sleep(0.0005)
            for t in threads:
                t.join()
            driver.flush()
            elapsed = time.perf_counter() - t_start

            driver.await_respawns()
            if backend != "local":
                time.sleep(0.2)  # drain in-flight async replica updates

            for acked, failed, _stats in results:
                verdict.ops_acked += acked
                verdict.ops_failed += failed
            verdict.ops_attempted = total_ops

            fresh = cluster.client(seed=seed + 0xF00D)
            cores = server_cores(cluster, backend)

            def lookup(key: bytes) -> bytes:
                return fresh.lookup(key)

            verdict.checks = _run_checks(
                scenario,
                ledger=ledger,
                append_acked=append_acked,
                lookup=lookup,
                cores=cores,
                membership=cluster.membership,
                hash_name=config.hash_name,
            )

            stats = [s for _a, _f, s in results if s is not None]
            verdict.metrics = {
                "ops.attempted": total_ops,
                "ops.acked": verdict.ops_acked,
                "ops.failed": verdict.ops_failed,
                "ops.acked_ratio": verdict.ops_acked / max(total_ops, 1),
                "ops.throughput_per_s": verdict.ops_acked / max(elapsed, 1e-9),
                "faults.injected": len(plan.trace),
                "client.retries": sum(s.retries for s in stats),
                "client.failovers": sum(s.failovers for s in stats),
                "client.nodes_marked_dead": sum(
                    s.nodes_marked_dead for s in stats
                ),
            }
            verdict.gates = _evaluate_gates(scenario, verdict.metrics)
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()

    verdict.injected_faults = len(plan.trace)
    verdict.fault_digest = plan.trace_digest()


# ---------------------------------------------------------------------------
# DES execution
# ---------------------------------------------------------------------------


def _run_sim(scenario: Scenario, seed: int, verdict: Verdict) -> None:
    from ..core.client import ZHTClientCore
    from ..core.config import ReplicationMode, ZHTConfig
    from ..faults.simchaos import _sim_execute, _sim_repair
    from ..sim.cluster import SimSpec, SimulatedCluster

    topo = scenario.topology
    replicas = topo.replicas
    partitions_per_instance = max(1, topo.partitions // max(topo.nodes, 1))
    base = dict(
        transport="local",
        num_partitions=topo.nodes * partitions_per_instance,
        num_replicas=replicas,
        replication_mode=(
            ReplicationMode.ASYNC if replicas > 0 else ReplicationMode.NONE
        ),
        request_timeout=0.005,
        failures_before_dead=2,
        backoff_factor=1.5,
        max_retries=10,
        breaker_cooldown_s=0.02,
        breaker_cooldown_max_s=0.2,
    )
    overrides = topo.config  # zht-lint: ignore[CFG002] TopologySpec.config is a plain dict of overrides, not a ZHTConfig
    base.update(
        (k, v) for k, v in overrides.items() if k != "persistence_dir"
    )
    config = ZHTConfig(**base)
    plan = build_plan(scenario, seed)
    streams = build_streams(scenario.workload, seed)
    verdict.clients = len(streams)
    total_ops = scenario.workload.total_ops

    spec = SimSpec(
        num_nodes=topo.nodes,
        num_replicas=replicas,
        replication_mode=config.replication_mode,
        partitions_per_instance=partitions_per_instance,
        real_core=True,
        seed=seed,
        faults=plan,
        config=config,
    )
    cluster = SimulatedCluster(spec)
    env = cluster.env
    membership = cluster.membership
    nodes = sorted(membership.nodes)
    auto_victims = list(nodes[1:])
    pending = list(scenario.faults.events)
    killed: list[str] = []

    for event in scenario.faults.events:
        if event.action == "kill":
            designated = (
                nodes[event.target]
                if 0 <= event.target < len(nodes)
                else auto_victims[0]
            )
            break
    else:
        designated = nodes[1] if len(nodes) > 1 else nodes[0]
    resolve_victim_rules(plan, membership, designated)

    ledger = AckLedger()
    append_acked: dict[bytes, list] = {}
    state = {"done": 0, "acked": 0, "failed": 0}
    cores: list[ZHTClientCore] = []

    def fire(event: FaultEvent) -> Iterator[Any]:
        if event.action == "kill":
            if 0 <= event.target < len(nodes):
                victim = nodes[event.target]
                if victim in auto_victims:
                    auto_victims.remove(victim)
            else:
                victim = auto_victims.pop(0)
            cluster.kill_node(victim)
            plan.crash_target(
                victim,
                *[
                    str(inst.address)
                    for inst in membership.instances_on_node(victim)
                ],
            )
            killed.append(victim)
        elif event.action == "repair":
            victim = (
                nodes[event.target]
                if 0 <= event.target < len(nodes)
                else killed[-1]
            )
            yield from _sim_repair(cluster, victim, config, seed)
        # kill_shard cannot validate onto the sim backend

    def client_proc(stream: ClientStream) -> Iterator[Any]:
        core = ZHTClientCore(
            membership.copy(),
            config,
            rng=random.Random((seed << 16) ^ (0xE5 + stream.client_index)),
            clock=lambda: env.now,
        )
        cores.append(core)
        for op, key, value in stream.ops:
            # Cooperative fault injection: whichever client crosses the
            # scheduled progress point performs the event (deterministic
            # under the DES's total event order).
            while pending and state["done"] >= pending[0].at * total_ops:
                yield from fire(pending.pop(0))
            driver = core.driver(op, key, value)
            try:
                yield from _sim_execute(cluster, core, driver)
                state["acked"] += 1
                if op == OpCode.APPEND:
                    append_acked.setdefault(key, []).append(value)
                elif op != OpCode.LOOKUP:
                    ledger.record(op, key, value)
            except KeyNotFound:
                state["acked"] += 1
            except ZHTError:
                state["failed"] += 1
            state["done"] += 1

    def main_proc() -> Iterator[Any]:
        procs = [
            env.process(client_proc(stream), name=f"scenario-c{stream.client_index}")
            for stream in streams
        ]
        for proc in procs:
            yield proc
        while pending:
            yield from fire(pending.pop(0))

    proc = env.process(main_proc(), name="scenario-main")
    env.run()
    if not proc.done:
        raise RuntimeError("sim scenario workload deadlocked")
    elapsed = max(env.now, 1e-9)

    verdict.ops_attempted = total_ops
    verdict.ops_acked = state["acked"]
    verdict.ops_failed = state["failed"]

    def lookup(key: bytes) -> bytes:
        pid = membership.partition_of_key(key, config.hash_name)
        inst = membership.owner_of_partition(pid)
        server = cluster.handlers[cluster._addr_to_index[inst.address]]
        part = server.partitions.get(pid)
        if part is None or key not in part.store:
            raise KeyNotFound(f"{key!r} not on owner {inst.instance_id[:8]}")
        return part.store.get(key)

    verdict.checks = _run_checks(
        scenario,
        ledger=ledger,
        append_acked=append_acked,
        lookup=lookup,
        cores=cluster.handlers,
        membership=membership,
        hash_name=config.hash_name,
    )
    verdict.metrics = {
        "ops.attempted": total_ops,
        "ops.acked": verdict.ops_acked,
        "ops.failed": verdict.ops_failed,
        "ops.acked_ratio": verdict.ops_acked / max(total_ops, 1),
        # Simulated seconds, not wall time (the DES clock).
        "ops.throughput_per_s": verdict.ops_acked / elapsed,
        "faults.injected": len(plan.trace),
        "client.retries": sum(c.stats.retries for c in cores),
        "client.failovers": sum(c.stats.failovers for c in cores),
        "client.nodes_marked_dead": sum(
            c.stats.nodes_marked_dead for c in cores
        ),
    }
    verdict.gates = _evaluate_gates(scenario, verdict.metrics)
    verdict.injected_faults = len(plan.trace)
    verdict.fault_digest = plan.trace_digest()


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_scenario(
    scenario: Scenario,
    *,
    backend: str | None = None,
    seed: int | None = None,
    ops_per_client: int | None = None,
) -> Verdict:
    """Run *scenario* and return its :class:`Verdict`.

    ``backend``/``seed``/``ops_per_client`` override the scenario's own
    values (the CLI's ``--backend``/``--seed``/``--ops`` flags).
    Configuration problems raise :class:`ScenarioError` before anything
    starts; runtime failures are folded into a failing verdict.
    """
    scenario.validate()
    backend = backend or scenario.default_backend
    if backend not in scenario.backends:
        raise ScenarioError(
            "backend",
            f"scenario {scenario.name!r} does not support {backend!r}; "
            f"declared backends: {', '.join(scenario.backends)}",
        )
    if ops_per_client is not None:
        from dataclasses import replace

        if ops_per_client < 1:
            raise ScenarioError("ops_per_client", "must be >= 1")
        scenario = replace(
            scenario,
            workload=replace(scenario.workload, ops_per_client=ops_per_client),
        )
    seed = scenario.seed if seed is None else seed

    verdict = Verdict(scenario=scenario.name, backend=backend, seed=seed)
    t0 = time.perf_counter()
    try:
        if backend == "sim":
            _run_sim(scenario, seed, verdict)
        else:
            _run_live(scenario, backend, seed, verdict)
    except Exception as exc:  # noqa: BLE001 - fold into the verdict
        verdict.error = f"{type(exc).__name__}: {exc}"
    verdict.duration_s = time.perf_counter() - t0
    verdict.ok = (
        verdict.error is None
        and all(c.status != "fail" for c in verdict.checks)
        and all(g.ok for g in verdict.gates)
    )
    return verdict
