"""Shared cluster plumbing for every adverse-conditions harness.

One place builds, kills, and repairs clusters for the chaos harness
(:mod:`repro.faults.chaos`), the consistency verifier
(:mod:`repro.verify.runner`), and the scenario runner
(:mod:`repro.scenario.runner`) — previously each hand-wired its own
copy.  The functions are backend-polymorphic over the same five names
the CLIs accept: ``local`` / ``tcp`` / ``udp`` / ``sim`` / ``sharded``
(``sim`` is handled by the callers' DES paths; the builders here cover
the live backends).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..api import build_local_cluster
from ..core.config import ZHTConfig
from ..core.manager import ManagerCore

if TYPE_CHECKING:
    from ..core.server import ZHTServerCore
    from ..faults.plan import FaultPlan

#: Backends the live builders cover (``sim`` runs are driven by the
#: callers through :mod:`repro.sim` instead of a socket deployment).
LIVE_BACKENDS = ("local", "tcp", "udp", "sharded")


def default_config(backend: str, replicas: int) -> ZHTConfig:
    """The harness-standard config: fast timeouts, quick failure
    detection, a breaker scaled to the timeouts so flapping nodes are
    re-probed within a few op latencies."""
    timeout = 0.02 if backend == "local" else 0.15
    return ZHTConfig(
        transport="local" if backend == "local" else
        ("tcp" if backend == "sharded" else backend),
        # Two worker processes per node keeps the sharded-backend process
        # count manageable (verify runs >= 3 nodes).
        num_shards=2 if backend == "sharded" else 1,
        num_partitions=64,
        num_replicas=replicas,
        request_timeout=timeout,
        failures_before_dead=2,
        backoff_factor=1.5,
        max_retries=10,
        breaker_cooldown_s=timeout * 4,
        breaker_cooldown_max_s=timeout * 40,
    )


def build_cluster(backend: str, nodes: int, config: ZHTConfig, seed: int) -> Any:
    """Build a running cluster for any live backend (context manager)."""
    if backend == "local":
        return build_local_cluster(nodes, config, seed=seed)
    from ..net.cluster import (
        build_sharded_tcp_cluster,
        build_tcp_cluster,
        build_udp_cluster,
    )

    if backend == "sharded":
        return build_sharded_tcp_cluster(nodes, config, seed=seed)
    builder = build_udp_cluster if backend == "udp" else build_tcp_cluster
    return builder(nodes, config, seed=seed)


def kill_node(cluster: Any, backend: str, victim: str, plan: FaultPlan) -> None:
    """Hard-kill every instance of node *victim* on any backend and
    record the crash in *plan* so transports refuse to reach it."""
    addresses = [
        str(inst.address) for inst in cluster.membership.instances_on_node(victim)
    ]
    if backend == "local":
        cluster.kill_node(victim)
    else:
        targets = {
            str(inst.address)
            for inst in cluster.membership.instances_on_node(victim)
        }
        for server in cluster.servers:
            # A sharded node advertises its shards' private addresses in
            # the membership table, not the shared bootstrap port.
            owned = {str(a) for a in getattr(server, "shard_addresses", [])}
            owned.add(str(server.address))
            if owned & targets:
                server.stop()
    plan.crash_target(victim, *addresses)


def server_cores(cluster: Any, backend: str) -> list[ZHTServerCore]:
    """The in-process :class:`~repro.core.server.ZHTServerCore` list, for
    the store-level invariant checkers.  Sharded workers live in child
    processes, so their cores are not introspectable from here."""
    if backend == "local":
        return list(cluster.servers.values())
    return [
        core
        for core in (getattr(s, "core", None) for s in cluster.servers)
        if core is not None
    ]


def repair_node(cluster: Any, victim: str, config: ZHTConfig, seed: int) -> float:
    """Run the manager repair script; returns its wall-clock duration."""
    import random
    import time

    manager_node = next(
        n
        for n, info in cluster.membership.nodes.items()
        if info.alive and n != victim
    )
    manager = ManagerCore(
        manager_node, cluster.membership, config, rng=random.Random(seed ^ 0xC0DE)
    )
    t0 = time.perf_counter()
    cluster.run(manager.repair_after_failure(victim))
    return time.perf_counter() - t0
