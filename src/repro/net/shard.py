"""Multi-core node serving: process-per-shard with a shared port.

The paper scales one node to all cores by running several ZHT instances
per node, one per core (Figs. 13/14: "the best resource utilization is
achieved when running one instance per core").  A single CPython process
cannot do that — the GIL pins one event loop to one core — so
:class:`ShardedNodeServer` forks ``N`` worker **processes** (default
``os.cpu_count()``), each running its own
:class:`~repro.net.tcp.EventDrivenTCPServer` event loop over its own
:class:`~repro.core.server.ZHTServerCore` instance, with its own NoVoHT
store and WAL (per-instance persistence directories), so no lock — in
Python or on disk — is shared across shards.

Connection delivery, two mechanisms:

* **SO_REUSEPORT** (default where available): every shard *also* listens
  on one shared node port; the kernel balances incoming connections
  across the shards' accept queues.  Since the kernel picks a shard
  arbitrarily, the shared port is the *bootstrap* entry point: each
  shard's membership row advertises its **private** per-shard port, so a
  request landing on a non-owning shard gets the stock REDIRECT +
  piggybacked-membership treatment and the client talks zero-hop to the
  right shard from then on.  No forwarding path was added.
* **FD-passing dispatcher** (fallback, or ``reuse_port=False``): the
  parent accepts on the shared port and passes each accepted connection
  FD to a shard round-robin over an ``AF_UNIX`` socket pair
  (``socket.send_fds``); the shard adopts the socket into its event
  loop.

The parent holds every listening socket (shared and private) for the
node's lifetime and forks workers from them, so a worker killed with
``SIGKILL`` is respawned by the supervisor thread on the *same* sockets:
its addresses stay valid, pending connections queue in the listener
backlog during the gap, and the fresh worker recovers its state by
replaying the shard's WAL (lazy per-partition replay on first touch).

Caveat (documented, not worked around): workers are forked while parent
threads exist, which is safe here only because the parent's threads
(supervisor, dispatcher) touch no locks the child needs.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import socket
import threading
import time
import weakref

from typing import Iterable

from ..core.config import ZHTConfig
from ..core.membership import Address, InstanceInfo, MembershipTable
from ..core.protocol import OpCode, Request
from ..core.server import ZHTServerCore

_CMD_GRACEFUL = b"G"
_CMD_HARD = b"S"

#: Every socket any ShardedNodeServer in this process has created.  A
#: forked worker inherits copies of ALL of them — including *other*
#: nodes' listening sockets when a test builds a whole cluster in one
#: process.  An inherited listener fd keeps that port accepting even
#: after its owner closes it (connections queue in a backlog nobody
#: drains instead of being refused), which turns "node killed" into
#: "node hangs" for every peer.  Workers therefore close every
#: registered socket that is not their own, first thing after fork.
_PROCESS_SOCKETS: "weakref.WeakSet[socket.socket]" = weakref.WeakSet()
_PROCESS_SOCKETS_LOCK = threading.Lock()


def _register_sockets(sockets: Iterable[socket.socket]) -> None:
    with _PROCESS_SOCKETS_LOCK:
        for sock in sockets:
            _PROCESS_SOCKETS.add(sock)


def _foreign_sockets(keep: Iterable[socket.socket]) -> list[socket.socket]:
    """Snapshot of registered sockets NOT in *keep* (for a child to
    close after fork)."""
    keep_fds = {s.fileno() for s in keep}
    with _PROCESS_SOCKETS_LOCK:
        return [
            s
            for s in _PROCESS_SOCKETS
            if s.fileno() >= 0 and s.fileno() not in keep_fds
        ]


def reuse_port_supported() -> bool:
    """True when this platform accepts ``SO_REUSEPORT`` on TCP sockets."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


def fd_passing_supported() -> bool:
    """True when connection FDs can travel over AF_UNIX socket pairs."""
    return hasattr(socket, "send_fds") and hasattr(socket, "AF_UNIX")


def fork_supported() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _shard_worker_main(
    listeners: list,
    conn_receiver: socket.socket | None,
    control: socket.socket,
    config: ZHTConfig,
    instance: InstanceInfo,
    membership: MembershipTable,
    foreign_sockets: list,
) -> None:
    """Worker-process entry point (fork start method: everything here is
    inherited memory, nothing is pickled)."""
    from .tcp import EventDrivenTCPServer

    # Drop inherited copies of every socket this worker does not own —
    # keeping another node's listener fd open would keep its port
    # accepting after that node dies (see _PROCESS_SOCKETS).
    for sock in foreign_sockets:
        try:
            sock.close()
        except OSError:
            pass

    core = ZHTServerCore(instance, membership, config)
    server = EventDrivenTCPServer(
        listeners=listeners, conn_receiver=conn_receiver
    )
    server.attach_core(core)
    server.start()
    while True:
        try:
            cmd = control.recv(1)
        except OSError:
            cmd = b""
        if cmd == _CMD_GRACEFUL:
            server.stop(drain=True)
        # Hard stop, or EOF: the parent is gone.  Either way exit
        # immediately — WAL appends are flushed per commit, so recovery
        # replays everything acknowledged.
        os._exit(0)


class _ShardSlot:
    """Parent-side bookkeeping for one shard worker."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.private_listener: socket.socket | None = None
        self.shared_listener: socket.socket | None = None
        self.fd_parent: socket.socket | None = None
        self.fd_child: socket.socket | None = None
        self.control_parent: socket.socket | None = None
        self.control_child: socket.socket | None = None
        self.process: multiprocessing.process.BaseProcess | None = None

    def child_listeners(self) -> list:
        listeners = [self.private_listener]
        if self.shared_listener is not None:
            listeners.append(self.shared_listener)
        return listeners

    def sockets(self) -> list:
        return [
            s
            for s in (
                self.private_listener,
                self.shared_listener,
                self.fd_parent,
                self.fd_child,
                self.control_parent,
                self.control_child,
            )
            if s is not None
        ]


class ShardedNodeServer:
    """One multi-core ZHT node: N forked event-loop shard processes.

    Lifecycle: construct (binds every socket, so ports are known),
    :meth:`attach_instances` (or :meth:`bootstrap_membership` for a
    standalone node), :meth:`start` (forks workers, starts the
    supervisor), :meth:`stop` (hard by default — the chaos harness's
    node-kill — or ``graceful=True`` to drain every shard first).
    """

    def __init__(
        self,
        config: ZHTConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        num_shards: int | None = None,
        reuse_port: bool | None = None,
    ) -> None:
        if not fork_supported():
            raise RuntimeError(
                "ShardedNodeServer needs the 'fork' start method"
            )
        self.config = config or ZHTConfig(transport="tcp")
        if num_shards is not None:
            self.num_shards = num_shards
        elif self.config.num_shards > 1:
            self.num_shards = self.config.num_shards
        else:
            self.num_shards = os.cpu_count() or 1
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        want_reuse = self.config.reuse_port if reuse_port is None else reuse_port
        self.reuse_port = want_reuse and reuse_port_supported()
        if not self.reuse_port and not fd_passing_supported():
            raise RuntimeError(
                "neither SO_REUSEPORT nor FD passing is available"
            )
        self.host = host
        self._slots = [_ShardSlot(i) for i in range(self.num_shards)]
        self._ctx = multiprocessing.get_context("fork")
        self._stopping = False
        self._stopped = False
        self._started = False
        self.respawns = 0
        self._lock = threading.Lock()
        self.membership: MembershipTable | None = None
        self.instances: list[InstanceInfo] | None = None
        self._supervisor: threading.Thread | None = None
        self._dispatcher: threading.Thread | None = None
        self._dispatch_listener: socket.socket | None = None

        # Private per-shard listeners: these are the addresses the
        # membership table advertises (zero-hop direct routes).
        for slot in self._slots:
            sock = self._tcp_listener(host, 0, reuse_port=False)
            slot.private_listener = sock
        self.shard_addresses = [
            Address(host, slot.private_listener.getsockname()[1])
            for slot in self._slots
        ]

        # Shared node port: SO_REUSEPORT sockets (one accept queue per
        # shard, kernel-balanced) or a single dispatcher listener.
        if self.reuse_port:
            first = self._tcp_listener(host, port, reuse_port=True)
            self._slots[0].shared_listener = first
            shared_port = first.getsockname()[1]
            for slot in self._slots[1:]:
                slot.shared_listener = self._tcp_listener(
                    host, shared_port, reuse_port=True
                )
        else:
            self._dispatch_listener = self._tcp_listener(
                host, port, reuse_port=False
            )
            shared_port = self._dispatch_listener.getsockname()[1]
            for slot in self._slots:
                slot.fd_parent, slot.fd_child = socket.socketpair()
        self.address = Address(host, shared_port)

        for slot in self._slots:
            slot.control_parent, slot.control_child = socket.socketpair()

        sockets = [s for slot in self._slots for s in slot.sockets()]
        if self._dispatch_listener is not None:
            sockets.append(self._dispatch_listener)
        _register_sockets(sockets)

    @staticmethod
    def _tcp_listener(
        host: str, port: int, *, reuse_port: bool
    ) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            sock.listen(512)
        except OSError:
            sock.close()
            raise
        return sock

    # -- membership ----------------------------------------------------------

    def attach_instances(
        self, membership: MembershipTable, instances: list[InstanceInfo]
    ) -> None:
        """Bind this node's shard instances (one per shard, in shard
        order; each instance's address must be the shard's private
        address) and the membership table workers start from."""
        if len(instances) != self.num_shards:
            raise ValueError(
                f"need {self.num_shards} instances, got {len(instances)}"
            )
        self.membership = membership
        self.instances = instances

    def bootstrap_membership(self, *, seed: int = 0) -> MembershipTable:
        """Build a single-node membership table over this node's shards —
        the standalone (benchmark / single-box) deployment."""
        from ..api import build_membership

        rng = random.Random(seed)
        addrs = iter(self.shard_addresses)
        membership, _nodes, instances = build_membership(
            1,
            self.config.replace(instances_per_node=self.num_shards),
            rng,
            port_allocator=lambda _node_id, _i: next(addrs),
        )
        self.attach_instances(membership, instances)
        return membership

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        if self.instances is None or self.membership is None:
            raise RuntimeError("attach_instances() before start()")
        self._started = True
        for slot in self._slots:
            self._spawn(slot)
        if self._dispatch_listener is not None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name=f"zht-shard-dispatch-{self.address.port}",
                daemon=True,
            )
            self._dispatcher.start()
        self._supervisor = threading.Thread(
            target=self._supervise,
            name=f"zht-shard-supervise-{self.address.port}",
            daemon=True,
        )
        self._supervisor.start()

    def _spawn(self, slot: _ShardSlot) -> None:
        keep = list(slot.child_listeners())
        if slot.fd_child is not None:
            keep.append(slot.fd_child)
        keep.append(slot.control_child)
        # zht-lint: ignore[FORK002] parent threads (supervisor/dispatcher) touch no locks the child needs — module docstring caveat
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                slot.child_listeners(),
                slot.fd_child,
                slot.control_child,
                self.config,
                self.instances[slot.index],
                self.membership.copy(),
                _foreign_sockets(keep),
            ),
            name=f"zht-shard-{self.address.port}-{slot.index}",
            daemon=True,
        )
        proc.start()
        slot.process = proc

    def _supervise(self) -> None:
        """Respawn workers that die unexpectedly (e.g. ``kill -9``) on
        their original sockets; the replacement recovers from the WAL."""
        while not self._stopping:
            for slot in self._slots:
                proc = slot.process
                if proc is None or proc.is_alive():
                    continue
                with self._lock:
                    if self._stopping:
                        break
                    proc.join(timeout=0.1)
                    self.respawns += 1
                # Fork outside _lock: a lock held at fork time is copied
                # into the child in its held state and can never be
                # released there (FORK001).
                try:
                    self._spawn(slot)
                except (OSError, ValueError):
                    break  # listener sockets closed under us: stopping
                with self._lock:
                    if self._stopping:
                        # stop() raced the respawn and never saw the new
                        # process; reap it ourselves.
                        new_proc = slot.process
                        if new_proc is not None:
                            new_proc.kill()
                            new_proc.join(timeout=1)
                        break
            time.sleep(0.05)

    def _dispatch_loop(self) -> None:
        """FD-passing fallback: accept on the shared port in the parent
        and hand each connection to a shard round-robin."""
        listener = self._dispatch_listener
        listener.settimeout(0.2)
        turn = 0
        while not self._stopping:
            try:
                conn, _addr = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            slot = self._slots[turn % self.num_shards]
            turn += 1
            try:
                socket.send_fds(slot.fd_parent, [b"F"], [conn.fileno()])
            except OSError:
                pass
            conn.close()

    def stop(self, graceful: bool = False, *, drain_timeout: float = 5.0) -> None:
        """Stop the node.  Default is a hard stop (what the chaos
        harness's node-kill uses); ``graceful=True`` asks every shard to
        drain in-flight requests first."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._stopping = True
        cmd = _CMD_GRACEFUL if graceful else _CMD_HARD
        for slot in self._slots:
            try:
                slot.control_parent.send(cmd)
            except OSError:
                pass
        deadline = time.monotonic() + (drain_timeout + 2 if graceful else 2)
        for slot in self._slots:
            proc = slot.process
            if proc is None:
                continue
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1)
        if self._dispatch_listener is not None:
            self._dispatch_listener.close()
        for slot in self._slots:
            for sock in slot.sockets():
                try:
                    sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "ShardedNodeServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- worker-crash testing ------------------------------------------------

    def shard_pid(self, index: int) -> int | None:
        proc = self._slots[index].process
        return None if proc is None else proc.pid

    def kill_shard(self, index: int) -> None:
        """SIGKILL one worker (siblings keep serving; the supervisor
        respawns the victim with WAL recovery)."""
        proc = self._slots[index].process
        if proc is not None:
            proc.kill()

    def wait_for_respawn(
        self, index: int, old_pid: int, timeout: float = 10.0
    ) -> bool:
        """Block until shard *index* runs under a fresh live pid."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            proc = self._slots[index].process
            if proc is not None and proc.pid != old_pid and proc.is_alive():
                return True
            time.sleep(0.02)
        return False

    # -- stats aggregation (control socket = the shard's private port) ------

    def shard_stats(self, timeout: float = 2.0) -> list[dict]:
        """Fetch each live shard's STATS snapshot over its private port."""
        from .tcp import TCPClient

        client = TCPClient(cache_size=0, wire_codec=self.config.wire_codec)
        snapshots: list[dict] = []
        try:
            for index, addr in enumerate(self.shard_addresses):
                response = client.roundtrip(
                    addr, Request(op=OpCode.STATS, request_id=1 + index), timeout
                )
                if response is not None and response.value:
                    snapshots.append(json.loads(response.value.decode("utf-8")))
        finally:
            client.close()
        return snapshots

    def node_stats(self, timeout: float = 2.0) -> dict:
        """One merged node view over every shard's snapshot (counters
        summed, latency histograms bucket-merged, partition loads
        concatenated)."""
        from ..obs import merge_stats_snapshots

        return merge_stats_snapshots(self.shard_stats(timeout))
