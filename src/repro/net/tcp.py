"""TCP transport for ZHT (§III.D, §III.F).

Two server architectures, matching the paper's ablation:

* :class:`EventDrivenTCPServer` — the production design: a single
  selector (epoll on Linux) event loop, non-blocking sockets, per-
  connection frame reassembly.  "We eventually converged on a much more
  streamlined architecture, an event-driven model server architecture
  based on epoll."  Requests whose effects require peer round trips
  (sync replication, migration forwards) are offloaded to a small worker
  pool so the loop never blocks on the network.
* :class:`ThreadedTCPServer` — the early-prototype design the paper
  rejected ("the overheads of starting, managing, and stopping threads
  was too high"): one thread spawned per request.  Kept for the
  server-architecture ablation benchmark.

The client, :class:`TCPClient`, implements the paper's LRU **connection
cache**: with caching, an established socket per server is reused
("makes TCP works almost as fast as UDP"); with ``capacity=0`` every
operation pays a fresh ``connect()`` (the "TCP without connection
caching" line in Figures 7 and 9).
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..core.membership import Address
from ..core.protocol import (
    FIXED_MAGIC,
    Request,
    Response,
    decode_request_span,
    decode_response_span,
    deframe_at,
    deframe_span,
    encode_framed_request,
    encode_framed_response,
)
from ..core.server import HandleResult, ZHTServerCore
from ..obs import REGISTRY
from .lru import LRUCache
from .transport import ClientTransport, ServerExecutor


def _recv_frame(sock: socket.socket, timeout: float) -> bytes | None:
    """Read one length-prefixed frame from a blocking socket.

    Accumulates into a ``bytearray`` and deframes at an offset — a large
    frame arriving in many chunks costs O(total) instead of the O(n²) a
    ``bytes += chunk`` rebuild would.
    """
    sock.settimeout(timeout)
    buffer = bytearray()
    try:
        while True:
            message, _offset = deframe_at(buffer, 0)
            if message is not None:
                return message
            chunk = sock.recv(65536)
            if not chunk:
                return None
            buffer += chunk
    except (TimeoutError, OSError):
        return None


class TCPClient(ClientTransport):
    """Blocking TCP client with an LRU connection cache."""

    def __init__(
        self,
        cache_size: int = 128,
        *,
        connect_timeout: float = 2.0,
        wire_codec: str = "fixed",
    ) -> None:
        self._cache: LRUCache[Address, socket.socket] = LRUCache(
            cache_size, on_evict=self._on_evict
        )
        self._lock = threading.Lock()
        self.connect_timeout = connect_timeout
        self._codec = wire_codec
        self.connects = 0
        #: One-way messages retried on a fresh connection after a cached
        #: socket turned out stale.
        self.oneway_retries = 0
        #: One-way messages dropped after the retry also failed.
        self.oneway_drops = 0
        # Process-wide aggregates of the per-instance counters above.
        self._c_connects = REGISTRY.counter("tcp.client.connects")
        self._c_oneway_retries = REGISTRY.counter("tcp.client.oneway_retries")
        self._c_oneway_drops = REGISTRY.counter("tcp.client.oneway_drops")
        self._c_decode_errors = REGISTRY.counter("tcp.client.decode_errors")
        self._c_cache_evictions = REGISTRY.counter(
            "tcp.client.cache_evictions"
        )

    def _on_evict(self, _address: Address, sock: socket.socket) -> None:
        self._c_cache_evictions.inc()
        sock.close()

    def _connect(self, address: Address) -> socket.socket | None:
        sock = None
        try:
            sock = socket.create_connection(
                (address.host, address.port), timeout=self.connect_timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.connects += 1
            self._c_connects.inc()
            return sock
        except OSError:
            if sock is not None:
                sock.close()
            return None

    def _checkout(self, address: Address) -> socket.socket | None:
        with self._lock:
            sock = self._cache.pop(address)
        return sock or self._connect(address)

    def _checkin(self, address: Address, sock: socket.socket) -> None:
        with self._lock:
            self._cache.put(address, sock)

    def roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        with REGISTRY.span("tcp.roundtrip"):
            return self._roundtrip(address, request, timeout)

    def _roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        sock = self._checkout(address)
        if sock is None:
            return None
        try:
            sock.sendall(encode_framed_request(request, self._codec))
            payload = _recv_frame(sock, timeout)
        except OSError:
            sock.close()
            return None
        if payload is None:
            sock.close()
            return None
        # Decode BEFORE checking the socket back in: a garbled frame means
        # the stream is desynced, and caching that connection would corrupt
        # the next caller's roundtrip (it would read *our* stream position).
        # Evict-and-close instead, so the next use reconnects cleanly.
        try:
            response = Response.decode(payload)
        except Exception:
            self._c_decode_errors.inc()
            sock.close()
            return None
        self._checkin(address, sock)
        return response

    def send_oneway(self, address: Address, request: Request) -> None:
        # Failure reports and async replica updates travel this path; a
        # cached socket whose server side has gone away must not silently
        # swallow them, so a send error triggers one retry on a fresh
        # connection before the message is counted as dropped.
        payload = encode_framed_request(request, self._codec)
        sock = self._checkout(address)
        if sock is not None:
            try:
                sock.sendall(payload)
                self._checkin(address, sock)
                return
            except OSError:
                sock.close()
                self.oneway_retries += 1
                self._c_oneway_retries.inc()
        sock = self._connect(address)
        if sock is None:
            self.oneway_drops += 1
            self._c_oneway_drops.inc()
            return
        try:
            sock.sendall(payload)
            self._checkin(address, sock)
        except OSError:
            sock.close()
            self.oneway_drops += 1
            self._c_oneway_drops.inc()

    def evict(self, address: Address) -> None:
        with self._lock:
            sock = self._cache.pop(address)
        if sock is not None:
            sock.close()

    def close(self) -> None:
        with self._lock:
            self._cache.clear()


class _MuxPending:
    """Future for one in-flight multiplexed request."""

    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Response | None = None


class _MuxConnection:
    """One multiplexed socket: many in-flight requests, matched by id.

    A writer sends frames under a lock; a dedicated reader thread
    reassembles response frames (bytearray + offset, O(total) across
    chunks) and hands each to its request's :class:`_MuxPending` by
    ``request_id``.  Connection death fails every outstanding future.
    """

    #: Bound on remembered abandoned request ids (timed-out requests
    #: whose late responses must be dropped silently).
    _DISCARD_LIMIT = 4096

    def __init__(self, sock: socket.socket, address: Address) -> None:
        self.sock = sock
        self.address = address
        self.closed = False
        self._write_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _MuxPending] = {}  # guarded-by: _state_lock
        self._discard: set[int] = set()  # guarded-by: _state_lock
        self._c_unmatched = REGISTRY.counter("tcp.client.mux_unmatched")
        self._reader = threading.Thread(
            target=self._reader_loop,
            name=f"zht-mux-{address.host}:{address.port}",
            daemon=True,
        )
        self._reader.start()

    # -- caller side -------------------------------------------------------

    def register(self, request_id: int) -> _MuxPending | None:
        """Claim a future for *request_id*; ``None`` if the connection is
        closed or the id is already in flight (caller falls back)."""
        with self._state_lock:
            if self.closed or request_id in self._pending:
                return None
            self._discard.discard(request_id)
            slot = _MuxPending()
            self._pending[request_id] = slot
            return slot

    def send(self, payload: bytes) -> bool:
        try:
            with self._write_lock:
                self.sock.sendall(payload)
            return True
        except OSError:
            self.shutdown()
            return False

    def forget(self, request_id: int, *, discard: bool = False) -> None:
        """Abandon *request_id* (timeout); with ``discard``, a late
        response for it is dropped silently instead of counting as
        unmatched."""
        with self._state_lock:
            self._pending.pop(request_id, None)
            if discard:
                if len(self._discard) >= self._DISCARD_LIMIT:
                    self._discard.pop()
                self._discard.add(request_id)

    def expect_discard(self, request_id: int) -> None:
        """Pre-register a oneway request whose response should be eaten."""
        self.forget(request_id, discard=True)

    # -- reader side -------------------------------------------------------

    def _reader_loop(self) -> None:
        buffer = bytearray()
        offset = 0
        try:
            self.sock.settimeout(None)
        except OSError:
            pass
        while True:
            try:
                chunk = self.sock.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            buffer += chunk
            while True:
                start, end, offset = deframe_span(buffer, offset)
                if start < 0:
                    break
                try:
                    # Parsed straight out of the receive buffer (no
                    # per-message bytes copy); compaction below is safe
                    # because decode materialises every field.
                    response = decode_response_span(buffer, start, end)
                except Exception:
                    # Desynced/garbled stream: this connection is unusable.
                    REGISTRY.counter("tcp.client.decode_errors").inc()
                    self.shutdown()
                    return
                self._deliver(response)
            if offset:
                del buffer[:offset]
                offset = 0
        self.shutdown()

    def _deliver(self, response: Response) -> None:
        with self._state_lock:
            slot = self._pending.pop(response.request_id, None)
            if slot is None:
                if response.request_id in self._discard:
                    self._discard.discard(response.request_id)
                else:
                    self._c_unmatched.inc()
                return
        slot.response = response
        slot.event.set()

    def shutdown(self) -> None:
        with self._state_lock:
            if self.closed:
                pending = []
            else:
                self.closed = True
                pending = list(self._pending.values())
                self._pending.clear()
        try:
            self.sock.close()
        except OSError:
            pass
        for slot in pending:
            slot.event.set()  # response stays None => timeout upstream


class MultiplexedTCPClient(ClientTransport):
    """TCP client with multiplexed connections (pipelined request path).

    Replaces :class:`TCPClient`'s exclusive checkout/checkin model: one
    socket per server carries any number of concurrent in-flight
    requests, matched back to per-request futures by ``request_id`` via
    a reader thread — independent operations pipeline on the wire
    instead of serializing behind stop-and-wait round trips.  A timed
    -out request abandons its slot (its late response is discarded by
    id), so slow responses neither poison the stream nor force a
    reconnect.  :class:`TCPClient` remains available for the
    stop-and-wait ablation (``ZHTConfig.tcp_multiplex=False``).
    """

    def __init__(
        self, *, connect_timeout: float = 2.0, wire_codec: str = "fixed"
    ) -> None:
        self._conns: dict[Address, _MuxConnection] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self.connect_timeout = connect_timeout
        self._codec = wire_codec
        self.connects = 0
        self.oneway_retries = 0
        self.oneway_drops = 0
        self._c_connects = REGISTRY.counter("tcp.client.connects")
        self._c_oneway_drops = REGISTRY.counter("tcp.client.oneway_drops")

    def _connect(self, address: Address) -> _MuxConnection | None:
        try:
            sock = socket.create_connection(
                (address.host, address.port), timeout=self.connect_timeout
            )
        except OSError:
            return None
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            sock.close()
            return None
        conn = _MuxConnection(sock, address)
        with self._lock:
            current = self._conns.get(address)
            if current is not None and not current.closed:
                # Lost a connect race; keep the established one.
                conn.shutdown()
                return current
            self._conns[address] = conn
        # Counted only when installed, so racing threads that all dialed
        # at once still read as one logical connection per server.
        self.connects += 1
        self._c_connects.inc()
        return conn

    def _get(self, address: Address) -> _MuxConnection | None:
        with self._lock:
            conn = self._conns.get(address)
        if conn is not None and not conn.closed:
            return conn
        return self._connect(address)

    def roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        with REGISTRY.span("tcp.roundtrip"):
            return self._roundtrip(address, request, timeout)

    def _roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        rid = request.request_id
        if not rid:
            # Unmatchable by id: use an isolated stop-and-wait socket.
            return self._oneshot_roundtrip(address, request, timeout)
        payload = encode_framed_request(request, self._codec)
        for _attempt in range(2):  # one retry on a just-died connection
            conn = self._get(address)
            if conn is None:
                return None
            slot = conn.register(rid)
            if slot is None:
                if conn.closed:
                    continue
                # Same id already in flight on this socket (foreign core
                # sharing the transport): isolate rather than mis-match.
                return self._oneshot_roundtrip(address, request, timeout)
            if not conn.send(payload):
                continue
            if not slot.event.wait(timeout):
                conn.forget(rid, discard=True)
                return None
            return slot.response
        return None

    def _oneshot_roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        try:
            sock = socket.create_connection(
                (address.host, address.port), timeout=self.connect_timeout
            )
        except OSError:
            return None
        try:
            self.connects += 1
            self._c_connects.inc()
            sock.sendall(encode_framed_request(request, self._codec))
            payload = _recv_frame(sock, timeout)
            if payload is None:
                return None
            try:
                return Response.decode(payload)
            except Exception:
                REGISTRY.counter("tcp.client.decode_errors").inc()
                return None
        except OSError:
            return None
        finally:
            sock.close()

    def send_oneway(self, address: Address, request: Request) -> None:
        payload = encode_framed_request(request, self._codec)
        for attempt in range(2):
            conn = self._get(address)
            if conn is not None:
                if request.request_id:
                    # The server answers oneway messages too; eat the
                    # response instead of counting it unmatched.
                    conn.expect_discard(request.request_id)
                if conn.send(payload):
                    return
                self.oneway_retries += 1
                REGISTRY.counter("tcp.client.oneway_retries").inc()
        self.oneway_drops += 1
        self._c_oneway_drops.inc()

    def evict(self, address: Address) -> None:
        with self._lock:
            conn = self._conns.pop(address, None)
        if conn is not None:
            conn.shutdown()

    def close(self) -> None:
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            conn.shutdown()


class _Connection:
    """Per-connection state inside a server.

    Frame reassembly accumulates into a ``bytearray`` and tracks a read
    offset instead of rebuilding the buffer per chunk; consumed bytes are
    compacted once per readable event.  Replies mirror the codec of the
    last request decoded on the connection, so a varint-speaking peer
    gets varint responses without any negotiation.
    """

    __slots__ = ("sock", "buffer", "offset", "write_lock", "codec", "closed")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = bytearray()
        self.offset = 0
        self.write_lock = threading.Lock()
        self.codec = "varint"
        self.closed = False

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb *chunk*; return every complete frame now available."""
        self.buffer += chunk
        messages: list[bytes] = []
        while True:
            message, self.offset = deframe_at(self.buffer, self.offset)
            if message is None:
                break
            messages.append(message)
        if self.offset:
            del self.buffer[: self.offset]
            self.offset = 0
        return messages

    def feed_spans(self, chunk: bytes) -> list[tuple[int, int]]:
        """Absorb *chunk*; return ``(start, end)`` spans of every complete
        frame now sitting in ``self.buffer`` — no copies.  The caller must
        decode the spans and then call :meth:`compact` before the next
        read, since compaction shifts the buffer under the spans."""
        self.buffer += chunk
        spans: list[tuple[int, int]] = []
        while True:
            start, end, self.offset = deframe_span(self.buffer, self.offset)
            if start < 0:
                break
            spans.append((start, end))
        return spans

    def compact(self) -> None:
        if self.offset:
            del self.buffer[: self.offset]
            self.offset = 0

    def send_response(self, response: Response) -> None:
        data = encode_framed_response(response, self.codec)
        with self.write_lock:
            try:
                # zht-lint: ignore[LOOP001] loop conns are _EventConnection and take _reply's queued-write path; only worker-thread deferred replies land here
                self.sock.sendall(data)
            except OSError:
                pass


class _EventConnection(_Connection):
    """A :class:`_Connection` served by the event loop: writes are queued
    and flushed non-blockingly instead of calling ``sendall`` (which on
    the loop's non-blocking sockets would raise — and drop the reply — the
    moment the kernel send buffer filled)."""

    __slots__ = ("outbuf", "want_write")

    def __init__(self, sock: socket.socket) -> None:
        super().__init__(sock)
        self.outbuf = bytearray()  # guarded-by: write_lock
        self.want_write = False  # guarded-by: write_lock

    def queue_reply(self, data: "bytes | bytearray") -> bool:
        """Send *data*, buffering whatever the socket won't take now.

        Safe from any thread (loop or effect pool).  Returns True when
        residue remains buffered and the event loop must be told to watch
        for writability (the caller wakes it; exactly one waker per
        transition since ``want_write`` latches)."""
        with self.write_lock:
            if self.closed:
                return False
            if not self.outbuf:
                sent = 0
                view = memoryview(data)
                try:
                    while sent < len(view):
                        sent += self.sock.send(view[sent:])
                except BlockingIOError:
                    pass
                except OSError:
                    self.closed = True
                    return False
                if sent < len(view):
                    self.outbuf += view[sent:]
            else:
                self.outbuf += data
            if self.outbuf and not self.want_write:
                self.want_write = True
                return True
            return False

    def flush(self) -> bool:
        """Drain the out-buffer (called on EVENT_WRITE).  Returns True
        once nothing is left to write (caller drops the write interest)."""
        with self.write_lock:
            if self.closed:
                return True
            try:
                while self.outbuf:
                    sent = self.sock.send(self.outbuf)
                    del self.outbuf[:sent]
            except BlockingIOError:
                return False
            except OSError:
                self.closed = True
                return True
            self.want_write = False
            return True

    def has_backlog(self) -> bool:
        with self.write_lock:
            return bool(self.outbuf) or self.offset < len(self.buffer)


#: Selector-key markers for non-connection file objects.
_ACCEPT = "accept"
_WAKE = "wake"
_FDRECV = "fdrecv"


class EventDrivenTCPServer:
    """Single-threaded selector (epoll) event loop serving one instance.

    Requests whose effects need no peer round trip take the **inline
    fast path**: decoded (zero-copy, straight out of the receive
    buffer), applied, and their response queued on the loop thread — no
    executor handoff.  Replication/migration/broadcast effects still
    detour through the worker pool.  ``ZHTConfig.inline_fast_path=False``
    restores a pool hop for every request (the ablation baseline).

    Listeners: by default the server binds one socket itself, but a
    sharded node hands it pre-bound listeners (its private per-shard
    port plus an ``SO_REUSEPORT`` shared port) via *listeners*, and/or an
    AF_UNIX *conn_receiver* on which a parent dispatcher passes accepted
    connection FDs (the fallback for platforms without ``SO_REUSEPORT``).
    """

    def __init__(
        self,
        core: ZHTServerCore | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        effect_workers: int = 4,
        listeners: "list[socket.socket] | None" = None,
        conn_receiver: "socket.socket | None" = None,
    ) -> None:
        self.core: ZHTServerCore | None = None
        self.executor: ServerExecutor | None = None
        if listeners:
            self._listeners = list(listeners)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((host, port))
                sock.listen(512)
            except OSError:
                sock.close()
                raise
            self._listeners = [sock]
        for sock in self._listeners:
            sock.setblocking(False)
        self._listener = self._listeners[0]
        addr = self._listener.getsockname()
        self.address = Address(addr[0], addr[1])
        self._conn_receiver = conn_receiver
        self._selector = selectors.DefaultSelector()
        for sock in self._listeners:
            self._selector.register(sock, selectors.EVENT_READ, _ACCEPT)
        if conn_receiver is not None:
            conn_receiver.setblocking(False)
            self._selector.register(conn_receiver, selectors.EVENT_READ, _FDRECV)
        # Self-pipe: effect-pool threads wake the selector when a reply
        # they queued needs EVENT_WRITE registration.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, _WAKE)
        self._peer_client = TCPClient(cache_size=32)
        self._pool = ThreadPoolExecutor(
            max_workers=effect_workers, thread_name_prefix="zht-effects"
        )
        self._thread: threading.Thread | None = None
        self._running = False
        self._draining = False
        self._drain_deadline = 0.0
        self._inline = True
        self.requests_served = 0
        # Results handed to the effect pool but not yet finished.  The
        # event loop dispatches synchronously, so the core's own in-flight
        # gauge sees at most one request at a time here; this backlog is
        # where overload actually accumulates, so it feeds the core's
        # admission bound via ``extra_inflight``.
        self._pending_effects = 0  # guarded-by: _pending_lock
        self._pending_lock = threading.Lock()
        self._pending_writable: list[_EventConnection] = []  # guarded-by: _pending_lock
        if core is not None:
            self.attach_core(core)

    def attach_core(self, core: ZHTServerCore) -> None:
        """Bind the server logic to this (pre-bound) socket.

        Split from construction so cluster builders can bind every
        listener first (to learn ephemeral ports), build the membership
        table from the real addresses, and only then create the cores.
        """
        self.core = core
        self._inline = core.config.inline_fast_path
        core.extra_inflight = self._effects_backlog
        # Checkpoint/GC passes tripped by an inline apply must not run on
        # the selector thread (they serialize + fsync the whole table);
        # hop them to the worker pool.
        core.set_maintenance_executor(self._pool.submit)
        self.executor = ServerExecutor(core, self._peer_client, self._deferred_reply)

    def _effects_backlog(self) -> int:
        return self._pending_effects  # zht-lint: ignore[LOCK001] GIL-atomic int read; admission is advisory

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        if self.core is None:
            raise RuntimeError("attach_core() before start()")
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name=f"zht-tcp-{self.address.port}", daemon=True
        )
        self._thread.start()

    def stop(self, *, drain: bool = False, drain_timeout: float = 5.0) -> None:
        """Stop the server.  With ``drain=True`` the loop first stops
        accepting, then keeps serving until every already-received frame
        is answered and every queued reply byte is flushed (bounded by
        *drain_timeout*) — a graceful shutdown."""
        if drain and self._thread is not None and self._running:
            self._drain_deadline = time.monotonic() + drain_timeout
            self._draining = True
            self._wake()
            self._thread.join(timeout=drain_timeout + 5)
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        for key in list(self._selector.get_map().values()):
            key.fileobj.close()
        self._selector.close()
        try:
            self._wake_w.close()
        except OSError:
            pass
        self._pool.shutdown(wait=False)
        self._peer_client.close()
        if self.core is not None:
            self.core.close()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x01")
        except OSError:
            pass

    # -- event loop -----------------------------------------------------------

    def _loop(self) -> None:  # lint: event-loop
        draining = False
        quiet_since = 0.0
        while self._running:
            events = self._selector.select(timeout=0.1)
            for key, mask in events:
                data = key.data
                if data is _ACCEPT:
                    self._accept(key.fileobj)
                elif data is _WAKE:
                    self._drain_wake()
                elif data is _FDRECV:
                    self._recv_conn_fds()
                else:
                    if mask & selectors.EVENT_WRITE:
                        self._writable(data)
                    if mask & selectors.EVENT_READ:
                        self._readable(data)
            if self._draining:
                if not draining:
                    draining = True
                    for sock in self._listeners:
                        try:
                            self._selector.unregister(sock)
                        except (KeyError, ValueError):
                            pass
                # "Drained" must hold across one idle select cycle before we
                # exit: a client's pipelined burst can still be in flight on
                # the wire the instant our buffers look empty, and exiting
                # then would reset the connection mid-burst.
                now = time.monotonic()
                if events or not self._drained():
                    quiet_since = now
                elif now - quiet_since >= 0.05:
                    break
                if now > self._drain_deadline:
                    break
        self._running = False

    def _drained(self) -> bool:
        with self._pending_lock:
            if self._pending_effects:
                return False
        for key in self._selector.get_map().values():
            conn = key.data
            if isinstance(conn, _EventConnection) and conn.has_backlog():
                return False
        return True

    def _drain_wake(self) -> None:
        try:
            # zht-lint: ignore[LOOP001] wake pipe is setblocking(False); recv returns EWOULDBLOCK, never parks
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass
        with self._pending_lock:
            pending, self._pending_writable = self._pending_writable, []
        for conn in pending:
            try:
                self._selector.modify(
                    conn.sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
                )
            except (KeyError, ValueError):
                pass

    def _accept(self, listener: socket.socket) -> None:
        try:
            # zht-lint: ignore[LOOP001] listener is non-blocking and only accepted after a selector READ event
            sock, _addr = listener.accept()
        except OSError:
            return
        self._register_conn(sock)

    def _register_conn(self, sock: socket.socket) -> None:
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        conn = _EventConnection(sock)
        self._selector.register(sock, selectors.EVENT_READ, conn)

    def _recv_conn_fds(self) -> None:
        """Dispatcher fallback: adopt connection FDs passed by the parent
        over the AF_UNIX control socket."""
        try:
            msg, fds, _flags, _addr = socket.recv_fds(self._conn_receiver, 64, 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            fds, msg = [], b""
        if not fds and not msg:
            # Dispatcher went away; stop watching.
            try:
                self._selector.unregister(self._conn_receiver)
            except (KeyError, ValueError):
                pass
            return
        for fd in fds:
            try:
                self._register_conn(socket.socket(fileno=fd))
            except OSError:
                pass

    def _readable(self, conn: _EventConnection) -> None:
        try:
            # zht-lint: ignore[LOOP001] conn sockets are set non-blocking in _register_conn; recv after a READ event never parks
            chunk = conn.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._drop(conn)
            return
        if not chunk:
            self._drop(conn)
            return
        spans = conn.feed_spans(chunk)
        for start, end in spans:
            self._dispatch_span(conn.buffer, start, end, conn)
        # Compact only after every span is decoded: requests were parsed
        # in place, so the buffer must not shift under them mid-batch.
        conn.compact()

    def _drop(self, conn: _Connection) -> None:
        with conn.write_lock:
            conn.closed = True
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.sock.close()

    def _dispatch_span(
        self, buffer: bytearray, start: int, end: int, conn: _EventConnection
    ) -> None:
        try:
            request = decode_request_span(buffer, start, end)
        except Exception:
            REGISTRY.counter("tcp.server.decode_errors").inc()
            return
        conn.codec = "fixed" if buffer[start] == FIXED_MAGIC else "varint"
        self.requests_served += 1
        REGISTRY.counter("tcp.server.requests").inc()
        result = self.core.handle(request, reply_context=conn)
        needs_peer_io = bool(
            result.sync_sends
            or result.forwards
            or result.failed_queued
            # Ticketed results (replicated mutations) detour through the
            # pool even when all their sends are async: _apply_effects
            # releases them in apply order and retires the ticket.
            or result.repl_sequencer is not None
        )
        if needs_peer_io or not self._inline:
            # Keep the loop responsive: effects that block on the network
            # run on the worker pool; the response is released after the
            # sync replicas acknowledge.  (With the inline fast path
            # disabled, every request pays this selector→pool→selector
            # hop — the server-architecture ablation baseline.)
            with self._pending_lock:
                self._pending_effects += 1
            self._pool.submit(self._finish, result, conn)
        else:
            # Inline fast path: this thread IS the event loop, so the
            # reply is encoded and queued right here — no executor
            # submit, no wakeup latency.  Fire-and-forget replica
            # updates still leave via the pool (they are peer I/O).
            for address, update in result.async_sends:
                self._pool.submit(
                    self._peer_client.send_oneway, address, update
                )
            if result.response is not None:
                self._reply(conn, result.response)

    def _reply(self, conn: _Connection, response: Response) -> None:
        if not isinstance(conn, _EventConnection):
            conn.send_response(response)
            return
        data = encode_framed_response(response, conn.codec)
        if conn.queue_reply(data):
            with self._pending_lock:
                self._pending_writable.append(conn)
            self._wake()

    def _writable(self, conn: _EventConnection) -> None:
        if conn.flush():
            if conn.closed:
                self._drop(conn)
                return
            try:
                self._selector.modify(conn.sock, selectors.EVENT_READ, conn)
            except (KeyError, ValueError):
                pass

    def _finish(self, result: HandleResult, conn: _EventConnection) -> None:
        try:
            self.executor._apply_effects(result)
            if result.response is not None:
                self._reply(conn, result.response)
        finally:
            with self._pending_lock:
                self._pending_effects -= 1

    def _deferred_reply(self, reply_context: object, response: Response) -> None:
        if isinstance(reply_context, _Connection):
            self._reply(reply_context, response)


class ThreadedTCPServer:
    """Thread-per-request server (the rejected early ZHT prototype).

    Every framed request spawns a fresh worker thread, reproducing the
    start/manage/stop overhead the paper measured at ~3× slower than the
    event-driven architecture.
    """

    def __init__(
        self,
        core: ZHTServerCore | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.core: ZHTServerCore | None = None
        self.executor: ServerExecutor | None = None
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(512)
        self.address = Address(host, self._listener.getsockname()[1])
        self._peer_client = TCPClient(cache_size=32)
        self._running = False
        self._accept_thread: threading.Thread | None = None
        self.requests_served = 0
        if core is not None:
            self.attach_core(core)

    def attach_core(self, core: ZHTServerCore) -> None:
        self.core = core
        self.executor = ServerExecutor(core, self._peer_client, self._deferred_reply)

    def start(self) -> None:
        if self._accept_thread is not None:
            return
        if self.core is None:
            raise RuntimeError("attach_core() before start()")
        self._running = True
        self._listener.settimeout(0.1)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        self._listener.close()
        self._peer_client.close()
        if self.core is not None:
            self.core.close()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _addr = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._connection_loop, args=(sock,), daemon=True
            ).start()

    def _connection_loop(self, sock: socket.socket) -> None:
        conn = _Connection(sock)
        sock.settimeout(30)
        while self._running:
            try:
                chunk = sock.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            for message in conn.feed(chunk):
                # Thread-per-request: spawn, run, join — paying the full
                # thread lifecycle cost on the request's critical path.
                worker = threading.Thread(
                    target=self._serve_one, args=(message, conn)
                )
                worker.start()
                worker.join()
        sock.close()

    def _serve_one(self, message: bytes, conn: _Connection) -> None:
        try:
            request = Request.decode(message)
        except Exception:
            REGISTRY.counter("tcp.server.decode_errors").inc()
            return
        if message:
            conn.codec = "fixed" if message[0] == FIXED_MAGIC else "varint"
        self.requests_served += 1
        REGISTRY.counter("tcp.server.requests").inc()
        response = self.executor.process(request, reply_context=conn)
        if response is not None:
            conn.send_response(response)

    def _deferred_reply(self, reply_context: object, response: Response) -> None:
        if isinstance(reply_context, _Connection):
            reply_context.send_response(response)
