"""UDP transport for ZHT (§III.F).

"UDP (acknowledge message based, which means every time a message is
sent, the sender is waiting for an acknowledge message)": every request
datagram is answered by a response datagram, which doubles as the ack.
Retransmission lives in the client operation driver's retry loop.

Because UDP retransmits can duplicate *mutations* (an ``append`` applied
twice corrupts the value), the server keeps a small per-peer
deduplication cache of recently answered request ids and replays the
cached response for duplicates instead of re-executing.
"""

from __future__ import annotations

import socket
import threading

from ..core.errors import Status
from ..core.membership import Address
from ..core.protocol import MUTATING_OPS, OpCode, Request, Response
from ..core.server import ZHTServerCore
from ..obs import REGISTRY
from .lru import LRUCache
from .transport import ClientTransport, ServerExecutor

#: Conservative safe datagram size; ZHT values are small (the paper's
#: micro-benchmarks use 132 B values).
MAX_DATAGRAM = 65000


class UDPClient(ClientTransport):
    """Datagram client: send, then block for the response/ack."""

    #: The batch planner chunks per-owner batches so each encoded BATCH
    #: request fits a single datagram.
    max_request_bytes = MAX_DATAGRAM

    def __init__(self) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(("127.0.0.1", 0))
        self._lock = threading.Lock()

    def roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        with REGISTRY.span("udp.roundtrip"):
            return self._roundtrip(address, request, timeout)

    @staticmethod
    def _matches(request: Request, response: Response) -> bool:
        """Is *response* the answer to *request*?

        Matching by request id alone is not enough: a late response to an
        *earlier, timed-out* operation that recycled the same id (or the
        historical id-0 wildcard) could be mistaken for the current ack —
        e.g. a stale LOOKUP response returned for a later REMOVE, making a
        failed mutation look acknowledged.  Servers echo the op code, so:

        * an op echo that disagrees with the request always rejects;
        * non-zero request ids must match exactly;
        * id-0 requests are unmatchable by id, so they accept any
          response only for idempotent reads — a mutation additionally
          requires the op echo to be present (and, per the first rule,
          to agree).
        """
        if response.op and response.op != int(request.op):
            return False
        if request.request_id:
            return response.request_id == request.request_id
        return request.op not in MUTATING_OPS or bool(response.op)

    def _roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        payload = request.encode()
        if len(payload) > MAX_DATAGRAM:
            return None
        with self._lock:
            try:
                self._sock.settimeout(timeout)
                self._sock.sendto(payload, (address.host, address.port))
                while True:
                    data, _peer = self._sock.recvfrom(MAX_DATAGRAM)
                    try:
                        response = Response.decode(data)
                    except Exception:
                        REGISTRY.counter("udp.client.decode_errors").inc()
                        continue
                    if self._matches(request, response):
                        return response
                    # A late response for an earlier (timed-out) request;
                    # keep waiting for ours.
                    REGISTRY.counter("udp.client.stale_responses").inc()
            except (TimeoutError, OSError):
                return None

    def send_oneway(self, address: Address, request: Request) -> None:
        # No lock: datagram sendto is atomic and this path never reads
        # from the socket, so it cannot steal another thread's response.
        # Taking _lock here would serialise fire-and-forget sends behind
        # a full roundtrip timeout.
        payload = request.encode()
        if len(payload) > MAX_DATAGRAM:
            return
        try:
            self._sock.sendto(payload, (address.host, address.port))
        except OSError:
            pass

    def close(self) -> None:
        self._sock.close()


class UDPServer:
    """Single-threaded datagram server for one ZHT instance."""

    def __init__(
        self,
        core: ZHTServerCore | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        dedup_cache_size: int = 1024,
    ) -> None:
        self.core: ZHTServerCore | None = None
        self.executor: ServerExecutor | None = None
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self._sock.settimeout(0.1)
        self.address = Address(host, self._sock.getsockname()[1])
        self._peer_client = UDPClient()
        #: (peer sockaddr, request_id) -> cached Response for retransmits.
        self._dedup: LRUCache[tuple, Response] = LRUCache(dedup_cache_size)
        self._running = False
        self._thread: threading.Thread | None = None
        self.requests_served = 0
        self.duplicates_suppressed = 0
        if core is not None:
            self.attach_core(core)

    def attach_core(self, core: ZHTServerCore) -> None:
        self.core = core
        self.executor = ServerExecutor(core, self._peer_client, self._deferred_reply)

    def start(self) -> None:
        if self._thread is not None:
            return
        if self.core is None:
            raise RuntimeError("attach_core() before start()")
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name=f"zht-udp-{self.address.port}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._sock.close()
        self._peer_client.close()
        if self.core is not None:
            self.core.close()

    def _loop(self) -> None:
        while self._running:
            try:
                data, peer = self._sock.recvfrom(MAX_DATAGRAM)
            except TimeoutError:
                continue
            except OSError:
                break
            self._serve_one(data, peer)

    def _serve_one(self, data: bytes, peer: tuple) -> None:
        try:
            request = Request.decode(data)
        except Exception:
            REGISTRY.counter("udp.server.decode_errors").inc()
            return
        dedup_key = None
        # BATCH joins the dedup set: a retransmitted batch may carry
        # mutations (a duplicated sub-append applied twice corrupts it).
        if (
            request.op in MUTATING_OPS or request.op == OpCode.BATCH
        ) and request.request_id:
            dedup_key = (peer, request.request_id)
            cached = self._dedup.get(dedup_key)
            if cached is not None:
                self.duplicates_suppressed += 1
                REGISTRY.counter("udp.server.duplicates_suppressed").inc()
                self._send(cached, peer)
                return
        self.requests_served += 1
        REGISTRY.counter("udp.server.requests").inc()
        response = self.executor.process(request, reply_context=peer)
        if response is not None:
            # Shed verdicts (overload / expired deadline) must not enter
            # the dedup cache: a client retrying the same request id after
            # backing off would get the cached shed replayed forever
            # instead of the mutation actually executing.
            shed = response.status in (
                Status.RETRY_LATER,
                Status.DEADLINE_EXCEEDED,
            )
            if dedup_key is not None and not shed:
                self._dedup.put(dedup_key, response)
            self._send(response, peer)

    def _send(self, response: Response, peer: tuple) -> None:
        try:
            self._sock.sendto(response.encode(), peer)
        except OSError:
            pass

    def _deferred_reply(self, reply_context: object, response: Response) -> None:
        if isinstance(reply_context, tuple):
            self._send(response, reply_context)
