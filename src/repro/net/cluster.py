"""Real-socket cluster builders.

:func:`build_tcp_cluster` and :func:`build_udp_cluster` start a full ZHT
deployment on loopback sockets: listeners are bound first (to learn
their ephemeral ports), the membership table is built from the real
addresses, and then each server gets its **own copy** of the table —
unlike the shared-table local transport, socket deployments exercise the
membership broadcast and lazy-refresh paths exactly as separate
processes would.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from ..core.manager import Script
    from ..verify.history import HistoryRecorder

from ..api import ZHT, build_membership
from ..core.client import ZHTClientCore
from ..core.config import ZHTConfig
from ..core.manager import ManagerCore
from ..core.membership import MembershipTable
from ..core.server import ZHTServerCore
from .tcp import (
    EventDrivenTCPServer,
    MultiplexedTCPClient,
    TCPClient,
    ThreadedTCPServer,
)
from .transport import ClientTransport, run_script
from .udp import UDPClient, UDPServer


class SocketCluster:
    """A running ZHT deployment over real loopback sockets."""

    def __init__(
        self,
        config: ZHTConfig,
        servers: list,
        membership: MembershipTable,
        client_factory: Callable[[], ClientTransport],
        rng: random.Random,
    ) -> None:
        self.config = config
        self.servers = servers
        self.membership = membership
        self._client_factory = client_factory
        self.rng = rng
        self._transports: list[ClientTransport] = []

    def client(
        self,
        *,
        seed: int | None = None,
        recorder: HistoryRecorder | None = None,
        client_id: str | None = None,
    ) -> ZHT:
        transport = self._client_factory()
        self._transports.append(transport)
        rng = random.Random(seed if seed is not None else self.rng.random())
        core = ZHTClientCore(self.membership.copy(), self.config, rng=rng)
        return ZHT(core, transport, recorder=recorder, client_id=client_id)

    def manager(self) -> ManagerCore:
        node_id = next(iter(self.membership.nodes))
        return ManagerCore(node_id, self.membership, self.config, rng=self.rng)

    def run(self, script: Script) -> object:
        transport = self._client_factory()
        self._transports.append(transport)
        return run_script(script, transport)

    def stop_server(self, index: int) -> None:
        """Hard-kill one server (fault injection on real sockets)."""
        self.servers[index].stop()

    def close(self) -> None:
        for transport in self._transports:
            transport.close()
        for server in self.servers:
            try:
                server.stop()
            except Exception:
                pass

    def __enter__(self) -> "SocketCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _build_socket_cluster(
    num_nodes: int,
    config: ZHTConfig,
    server_factory: Callable[[], object],
    client_factory: Callable[[], ClientTransport],
    seed: int,
) -> SocketCluster:
    rng = random.Random(seed)
    # 1. Bind all listeners to learn their addresses.
    total = num_nodes * config.instances_per_node
    servers = [server_factory() for _ in range(total)]
    addresses = [server.address for server in servers]
    index = iter(range(total))
    membership, _nodes, instances = build_membership(
        num_nodes,
        config,
        rng,
        port_allocator=lambda node_id, i: addresses[next(index)],
    )
    # 2. One core per server, each with a private copy of the table.
    for server, inst in zip(servers, instances):
        core = ZHTServerCore(inst, membership.copy(), config)
        server.attach_core(core)
        server.start()
    return SocketCluster(config, servers, membership, client_factory, rng)


def build_tcp_cluster(
    num_nodes: int,
    config: ZHTConfig | None = None,
    *,
    seed: int = 0,
    threaded_server: bool = False,
) -> SocketCluster:
    """Start a ZHT deployment over TCP on loopback.

    ``config.connection_cache_size`` selects between the paper's
    "TCP with connection caching" (>0) and "TCP without connection
    caching" (0) client modes.  ``threaded_server=True`` swaps in the
    thread-per-request server for the architecture ablation.
    """
    config = config or ZHTConfig(transport="tcp")
    factory = ThreadedTCPServer if threaded_server else EventDrivenTCPServer
    if config.tcp_multiplex and config.connection_cache_size > 0:
        # Default: multiplexed connections (pipelined request path).
        client_factory = lambda: MultiplexedTCPClient(  # noqa: E731
            wire_codec=config.wire_codec
        )
    else:
        # Ablations: stop-and-wait client, with or without connection
        # caching (the paper's two TCP modes).
        client_factory = lambda: TCPClient(  # noqa: E731
            cache_size=config.connection_cache_size,
            wire_codec=config.wire_codec,
        )
    return _build_socket_cluster(
        num_nodes,
        config,
        factory,
        client_factory,
        seed,
    )


def build_sharded_tcp_cluster(
    num_nodes: int,
    config: ZHTConfig | None = None,
    *,
    seed: int = 0,
) -> SocketCluster:
    """Start a deployment of multi-core nodes (process-per-shard).

    Each "server" is one :class:`~repro.net.shard.ShardedNodeServer`
    forking ``config.num_shards`` worker processes; the membership table
    advertises every shard's **private** port so clients route zero-hop
    to the owning shard.  From the cluster API's point of view a node is
    one server (``stop_server`` kills all of its shards), matching how
    the chaos harness kills whole nodes.
    """
    from .shard import ShardedNodeServer

    config = config or ZHTConfig(transport="tcp", num_shards=2)
    shards = max(1, config.num_shards)
    rng = random.Random(seed)
    # 1. Bind every node's sockets up front to learn shard addresses.
    nodes = [
        ShardedNodeServer(config, num_shards=shards)
        for _ in range(num_nodes)
    ]
    addresses = {
        (node_index, shard_index): address
        for node_index, node in enumerate(nodes)
        for shard_index, address in enumerate(node.shard_addresses)
    }
    node_counter = iter(range(num_nodes))
    node_of: dict[str, int] = {}

    def _allocate(node_id: str, shard_index: int) -> "object":
        if node_id not in node_of:
            node_of[node_id] = next(node_counter)
        return addresses[(node_of[node_id], shard_index)]

    membership, _nodes, instances = build_membership(
        num_nodes,
        config.replace(instances_per_node=shards),
        rng,
        port_allocator=_allocate,
    )
    # 2. Hand each node its chunk of instances (build_membership yields
    # them grouped by node, ``instances_per_node`` at a time).
    for node_index, node in enumerate(nodes):
        chunk = instances[node_index * shards : (node_index + 1) * shards]
        node.attach_instances(membership.copy(), chunk)
        node.start()
    if config.tcp_multiplex and config.connection_cache_size > 0:
        client_factory = lambda: MultiplexedTCPClient(  # noqa: E731
            wire_codec=config.wire_codec
        )
    else:
        client_factory = lambda: TCPClient(  # noqa: E731
            cache_size=config.connection_cache_size,
            wire_codec=config.wire_codec,
        )
    return SocketCluster(config, nodes, membership, client_factory, rng)


def build_udp_cluster(
    num_nodes: int,
    config: ZHTConfig | None = None,
    *,
    seed: int = 0,
) -> SocketCluster:
    """Start a ZHT deployment over UDP (ack-per-message) on loopback."""
    config = config or ZHTConfig(transport="udp")
    return _build_socket_cluster(
        num_nodes, config, UDPServer, lambda: UDPClient(), seed
    )
