"""Transport abstractions shared by the TCP, UDP, and local runtimes.

Two pieces of glue live here so each concrete transport stays small:

* :class:`ServerExecutor` — executes the side effects of a
  :class:`~repro.core.server.HandleResult` (synchronous replica acks,
  asynchronous fan-out, forwarding of queued requests after migration)
  against a :class:`PeerClient`.
* :func:`execute_op` — drives a client :class:`~repro.core.client.OpDriver`
  over any :class:`ClientTransport`, sleeping real time for backoff delays
  and dispatching failure notifications to managers.
"""

from __future__ import annotations

import abc
import time
from typing import Callable

from ..core.client import OpDriver, ZHTClientCore
from ..core.errors import Status
from ..core.manager import PeerCall, Script
from ..core.membership import Address
from ..core.protocol import Request, Response
from ..core.server import HandleResult, ZHTServerCore
from ..obs import REGISTRY


class ClientTransport(abc.ABC):
    """Moves one request to an address and returns the response."""

    @abc.abstractmethod
    def roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        """Send *request* and wait up to *timeout* seconds; ``None`` on
        timeout or connection failure."""

    @abc.abstractmethod
    def send_oneway(self, address: Address, request: Request) -> None:
        """Best-effort fire-and-forget send (async replication)."""

    def evict(self, address: Address) -> None:  # pragma: no cover - default
        """Discard any cached connection to *address*.

        Called when the failure detector marks the owning node dead, so
        retries and failovers never re-use a socket to a crashed server.
        Transports without connection state ignore it.
        """

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any cached connections/sockets."""


#: Called to deliver a (possibly deferred) response to a request origin.
ReplyFn = Callable[[object, Response], None]


class ServerExecutor:
    """Applies a :class:`HandleResult`'s effects for one server core."""

    def __init__(
        self,
        core: ZHTServerCore,
        peer_client: ClientTransport,
        reply_fn: ReplyFn,
        *,
        peer_timeout: float | None = None,
    ):
        self.core = core
        self.peer_client = peer_client
        self.reply_fn = reply_fn
        self.peer_timeout = (
            peer_timeout
            if peer_timeout is not None
            else core.config.request_timeout
        )

    def process(
        self, request: Request, reply_context: object = None
    ) -> Response | None:
        """Handle *request* fully; returns the immediate response, or
        ``None`` if the request was queued behind a migration."""
        result = self.core.handle(request, reply_context)
        self._apply_effects(result)
        return result.response

    def _apply_effects(self, result: HandleResult) -> None:
        response = result.response
        # Strongly-consistent replicas: the response cannot be released
        # until every sync replica acknowledged; a failed ack degrades the
        # response to REPLICATION_ERROR (§III.J).
        if response is not None:
            for address, update in result.sync_sends:
                ack = self.peer_client.roundtrip(
                    address, update, self.peer_timeout
                )
                if ack is None or ack.status != Status.OK:
                    response.status = Status.REPLICATION_ERROR
                    break
        for address, update in result.async_sends:
            self.peer_client.send_oneway(address, update)
        # Queued requests released by a migration commit are forwarded to
        # the new owner, and the owner's answer relayed to the original
        # requester.
        for address, queued in result.forwards:
            forwarded = self.peer_client.roundtrip(
                address, queued.request, self.peer_timeout
            )
            if queued.reply_context is not None:
                self.reply_fn(
                    queued.reply_context,
                    forwarded
                    or Response(
                        status=Status.TIMEOUT,
                        request_id=queued.request.request_id,
                    ),
                )
        # Queued requests discarded by a migration abort fail loudly:
        # "discarding the queued requests and reporting error to clients".
        for queued in result.failed_queued:
            if queued.reply_context is not None:
                self.reply_fn(
                    queued.reply_context,
                    Response(
                        status=Status.MIGRATING,
                        request_id=queued.request.request_id,
                    ),
                )


def execute_op(
    core: ZHTClientCore,
    driver: OpDriver,
    transport: ClientTransport,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> Response:
    """Run *driver* to completion over *transport*; returns the response
    (raising the mapped exception on failure)."""
    # The root span of one logical operation: covers every retry,
    # redirect, backoff sleep, and failover attempt — submission to
    # settled outcome, which is what the paper's latency figures measure.
    with REGISTRY.span("client.op"):
        while True:
            attempt = driver.next_attempt()
            if attempt is None:
                break
            if attempt.delay > 0:
                sleep(attempt.delay)
            response = transport.roundtrip(
                attempt.address, attempt.request, attempt.timeout
            )
            if response is None:
                driver.on_timeout()
            else:
                driver.on_response(response)
    _flush_notifications(core, transport)
    return driver.result()


def _flush_notifications(core: ZHTClientCore, transport: ClientTransport) -> None:
    """Deliver any pending failure reports to managers (best effort)."""
    while core.pending_notifications:
        note = core.pending_notifications.pop()
        transport.send_oneway(note.address, note.request)


def run_script(
    script: Script,
    transport: ClientTransport,
    *,
    timeout: float = 5.0,
):
    """Drive a manager :class:`~repro.core.manager.Script` over *transport*.

    Returns the script's return value.  A timeout on a ``required`` call
    feeds ``None`` back into the script (scripts handle that as failure).
    """
    reply: Response | None = None
    try:
        while True:
            call: PeerCall = script.send(reply)
            reply = transport.roundtrip(call.address, call.request, timeout)
    except StopIteration as stop:
        return stop.value
