"""Transport abstractions shared by the TCP, UDP, and local runtimes.

Two pieces of glue live here so each concrete transport stays small:

* :class:`ServerExecutor` — executes the side effects of a
  :class:`~repro.core.server.HandleResult` (synchronous replica acks,
  asynchronous fan-out, forwarding of queued requests after migration)
  against a :class:`PeerClient`.
* :func:`execute_op` — drives a client :class:`~repro.core.client.OpDriver`
  over any :class:`ClientTransport`, sleeping real time for backoff delays
  and dispatching failure notifications to managers.
"""

from __future__ import annotations

import abc
import time
from typing import Callable

from ..core.client import BatchEntry, OpDriver, ZHTClientCore
from ..core.errors import (
    STATUS_TO_EXCEPTION,
    DeadlineExceeded,
    NodeDeadError,
    ProtocolError,
    RequestTimeout,
    ServerOverloaded,
    Status,
    ZHTError,
)
from ..core.manager import PeerCall, Script
from ..core.membership import Address
from ..core.protocol import OpCode, Request, Response, decode_batch_responses
from ..core.server import HandleResult, ZHTServerCore
from ..obs import REGISTRY


class ClientTransport(abc.ABC):
    """Moves one request to an address and returns the response."""

    #: Largest encoded request this transport can carry in one message,
    #: or ``None`` for stream transports.  The batch planner chunks
    #: per-owner batches under this limit (UDP datagrams).
    max_request_bytes: int | None = None

    @abc.abstractmethod
    def roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        """Send *request* and wait up to *timeout* seconds; ``None`` on
        timeout or connection failure."""

    @abc.abstractmethod
    def send_oneway(self, address: Address, request: Request) -> None:
        """Best-effort fire-and-forget send (async replication)."""

    def evict(self, address: Address) -> None:  # pragma: no cover - default
        """Discard any cached connection to *address*.

        Called when the failure detector marks the owning node dead, so
        retries and failovers never re-use a socket to a crashed server.
        Transports without connection state ignore it.
        """

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any cached connections/sockets."""


#: Called to deliver a (possibly deferred) response to a request origin.
ReplyFn = Callable[[object, Response], None]


class ServerExecutor:
    """Applies a :class:`HandleResult`'s effects for one server core."""

    def __init__(
        self,
        core: ZHTServerCore,
        peer_client: ClientTransport,
        reply_fn: ReplyFn,
        *,
        peer_timeout: float | None = None,
    ) -> None:
        self.core = core
        self.peer_client = peer_client
        self.reply_fn = reply_fn
        self.peer_timeout = (
            peer_timeout
            if peer_timeout is not None
            else core.config.request_timeout
        )

    def process(
        self, request: Request, reply_context: object = None
    ) -> Response | None:
        """Handle *request* fully; returns the immediate response, or
        ``None`` if the request was queued behind a migration."""
        result = self.core.handle(request, reply_context)
        self._apply_effects(result)
        return result.response

    def _apply_effects(self, result: HandleResult) -> None:
        response = result.response
        # Replica updates must leave in store-apply order (ticketed by the
        # core, see ReplicationSequencer) or concurrent mutations can land
        # on replicas in a different order than the primary applied them.
        if result.repl_sequencer is not None:
            result.repl_sequencer.wait_turn(
                result.repl_ticket, self.peer_timeout
            )
        try:
            # Strongly-consistent replicas: the response cannot be
            # released until every sync replica acknowledged; a failed ack
            # degrades the response to REPLICATION_ERROR (§III.J).
            if response is not None:
                for address, update in result.sync_sends:
                    ack = self.peer_client.roundtrip(
                        address, update, self.peer_timeout
                    )
                    if ack is None or ack.status != Status.OK:
                        response.status = Status.REPLICATION_ERROR
                        break
            for address, update in result.async_sends:
                self.peer_client.send_oneway(address, update)
        finally:
            if result.repl_sequencer is not None:
                result.repl_sequencer.retire(result.repl_ticket)
        # Queued requests released by a migration commit are forwarded to
        # the new owner, and the owner's answer relayed to the original
        # requester.
        for address, queued in result.forwards:
            forwarded = self.peer_client.roundtrip(
                address, queued.request, self.peer_timeout
            )
            if queued.reply_context is not None:
                self.reply_fn(
                    queued.reply_context,
                    forwarded
                    or Response(
                        status=Status.TIMEOUT,
                        request_id=queued.request.request_id,
                    ),
                )
        # Queued requests discarded by a migration abort fail loudly:
        # "discarding the queued requests and reporting error to clients".
        for queued in result.failed_queued:
            if queued.reply_context is not None:
                self.reply_fn(
                    queued.reply_context,
                    Response(
                        status=Status.MIGRATING,
                        request_id=queued.request.request_id,
                    ),
                )


def execute_op(
    core: ZHTClientCore,
    driver: OpDriver,
    transport: ClientTransport,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> Response:
    """Run *driver* to completion over *transport*; returns the response
    (raising the mapped exception on failure)."""
    # The root span of one logical operation: covers every retry,
    # redirect, backoff sleep, and failover attempt — submission to
    # settled outcome, which is what the paper's latency figures measure.
    with REGISTRY.span("client.op"):
        while True:
            attempt = driver.next_attempt()
            if attempt is None:
                break
            if attempt.delay > 0:
                sleep(attempt.delay)
            start = time.monotonic()
            response = transport.roundtrip(
                attempt.address, attempt.request, attempt.timeout
            )
            if response is None:
                driver.on_timeout()
            else:
                # The measured RTT feeds the per-node history behind the
                # adaptive (phi) failure detector.
                driver.on_response(response, rtt_s=time.monotonic() - start)
    _flush_notifications(core, transport)
    return driver.result()


def _flush_notifications(core: ZHTClientCore, transport: ClientTransport) -> None:
    """Deliver any pending failure reports to managers (best effort)."""
    for note in core.take_notifications():
        transport.send_oneway(note.address, note.request)


def _status_error(status: Status, context: str) -> ZHTError:
    exc_type = STATUS_TO_EXCEPTION.get(status, ProtocolError)
    return exc_type(f"{context}: {status.name}", status=status)


def execute_batch(
    core: ZHTClientCore,
    op: OpCode,
    entries: list[BatchEntry],
    transport: ClientTransport,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> list[BatchEntry]:
    """Run one batched operation (*op* over all *entries*) to completion.

    Entries are planned into per-owner BATCH round trips, executed, and
    settled independently: a sub-response with a terminal status settles
    its entry; REDIRECT/MIGRATING sub-statuses (and timed-out round
    trips) send only the affected entries back through planning — a
    stale membership epoch re-plans the affected sub-batch against the
    refreshed table instead of failing the whole call.  Unsettled
    entries get ``RequestTimeout`` once the retry budget is exhausted.
    """
    cfg = core.config
    core.stats.inc("batch_ops", len(entries))
    pending = [e for e in entries if not e.settled]
    rounds = 0
    # One deadline covers the whole batched operation: it is split across
    # attempts (each round trip gets at most the remaining budget) and
    # propagated to servers in every BATCH envelope.
    deadline = core.clock() + core.deadline_budget()
    deadline_us = int(deadline * 1e6)
    overloaded_seen = False
    with REGISTRY.span("client.batch"):
        while pending:
            if rounds > cfg.max_retries:
                for entry in pending:
                    if overloaded_seen:
                        entry.error = ServerOverloaded(
                            f"{op.name} batch entry shed by overloaded servers"
                        )
                    else:
                        entry.error = RequestTimeout(
                            f"{op.name} batch entry exhausted retries"
                        )
                break
            remaining = deadline - core.clock()
            if remaining <= 0:
                for entry in pending:
                    entry.error = DeadlineExceeded(
                        f"{op.name} batch entry deadline exceeded"
                    )
                break
            attempts, unroutable = core.plan_batches(
                op, pending, max_bytes=transport.max_request_bytes
            )
            for entry in unroutable:
                entry.error = NodeDeadError(
                    f"no alive replica for key {entry.key!r} (op {op.name})"
                )
            retry: list[BatchEntry] = []
            needs_backoff = False
            for attempt in attempts:
                outer = attempt.to_request(core, deadline_us)
                # Larger batches earn proportionally more server time —
                # capped by what is left of the operation's deadline.
                timeout = min(
                    cfg.request_timeout * (1 + len(attempt.requests) / 256),
                    max(deadline - core.clock(), 1e-6),
                )
                core.stats.inc("batches")
                start = time.monotonic()
                response = transport.roundtrip(attempt.address, outer, timeout)
                if response is None:
                    core.stats.inc("retries")
                    core.record_timeout(attempt.node_id, timeout_s=timeout)
                    retry.extend(attempt.entries)
                    needs_backoff = True
                    continue
                core.record_success(
                    attempt.node_id, rtt_s=time.monotonic() - start
                )
                core.adopt_membership(response.membership)
                if response.status in (
                    Status.RETRY_LATER,
                    Status.DEADLINE_EXCEEDED,
                ):
                    # Overload shed (or a server clock disagreeing about
                    # the deadline): the node is alive, so back off and
                    # re-plan — our own clock settles expiry next round.
                    if response.status == Status.RETRY_LATER:
                        core.stats.inc("retry_later")
                        overloaded_seen = True
                    core.stats.inc("retries")
                    needs_backoff = True
                    retry.extend(attempt.entries)
                    continue
                if response.status in (Status.REDIRECT, Status.MIGRATING):
                    core.stats.inc(
                        "redirects_followed"
                        if response.status == Status.REDIRECT
                        else "retries"
                    )
                    needs_backoff |= response.status == Status.MIGRATING
                    retry.extend(attempt.entries)
                    continue
                if response.status != Status.OK:
                    # Whole-batch failure (REPLICATION_ERROR from a sync
                    # replica, BAD_REQUEST, ...) fails every entry it
                    # carried, mirroring the per-op path.
                    for entry in attempt.entries:
                        entry.error = _status_error(
                            response.status, f"{op.name} batch"
                        )
                    continue
                try:
                    subs = decode_batch_responses(response.value)
                except ProtocolError:
                    retry.extend(attempt.entries)
                    needs_backoff = True
                    continue
                if len(subs) != len(attempt.entries):
                    retry.extend(attempt.entries)
                    needs_backoff = True
                    continue
                for entry, sub in zip(attempt.entries, subs):
                    if sub.status == Status.REDIRECT:
                        core.stats.inc("redirects_followed")
                        retry.append(entry)
                    elif sub.status == Status.MIGRATING:
                        core.stats.inc("retries")
                        needs_backoff = True
                        retry.append(entry)
                    else:
                        entry.response = sub
            pending = retry
            rounds += 1
            if pending and needs_backoff:
                base = min(
                    cfg.request_timeout * (cfg.backoff_factor ** (rounds - 1)),
                    cfg.request_timeout * 8,
                )
                if cfg.retry_jitter:
                    base = core.rng.uniform(0.0, base)
                delay = min(base, max(deadline - core.clock(), 0.0))
                if delay > 0:
                    sleep(delay)
    _flush_notifications(core, transport)
    return entries


def run_script(
    script: Script,
    transport: ClientTransport,
    *,
    timeout: float = 5.0,
) -> object:
    """Drive a manager :class:`~repro.core.manager.Script` over *transport*.

    Returns the script's return value.  A timeout on a ``required`` call
    feeds ``None`` back into the script (scripts handle that as failure).
    """
    reply: Response | None = None
    try:
        while True:
            call: PeerCall = script.send(reply)
            reply = transport.roundtrip(call.address, call.request, timeout)
    except StopIteration as stop:
        return stop.value
