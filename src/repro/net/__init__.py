"""Real transports for ZHT: TCP (epoll-style event loop with LRU
connection caching), UDP (ack-based), and an in-process local transport
for deterministic tests."""

from .local import LocalNetwork
from .lru import LRUCache
from .transport import ClientTransport, ServerExecutor, execute_op, run_script

__all__ = [
    "ClientTransport",
    "LRUCache",
    "LocalNetwork",
    "ServerExecutor",
    "execute_op",
    "run_script",
]
