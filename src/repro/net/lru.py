"""A small LRU cache, used for ZHT's TCP connection caching (§III.F).

"In ZHT, we implemented a LRU cache for TCP connections, which makes TCP
works almost as fast as UDP does."  Evicted entries are passed to an
optional ``on_evict`` callback so the owner can close the socket.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    A ``capacity`` of 0 disables caching entirely: every :meth:`put` is
    immediately evicted (this models the paper's "TCP without connection
    caching" configuration with no special-casing in callers).

    **Thread-safety contract: none.**  The cache has no internal lock;
    the ``hits``/``misses``/``evictions`` counters are unguarded
    read-modify-write, and the OrderedDict itself can be corrupted by
    concurrent mutation.  Callers that share an instance across threads
    must hold their own lock around *every* access (the TCP connection
    cache, the client key-heat tracker, and the hot-key value cache all
    do).  ``on_evict`` fires *inside* :meth:`put`/:meth:`clear` — with
    the caller's lock held, under that contract — so an ``on_evict``
    that re-enters :meth:`put` on the same instance can evict-loop;
    callbacks must only release resources, never re-insert.

    On a same-key :meth:`put`, the old value is passed to ``on_evict``
    (unless it *is* the new value), then the key is re-inserted as the
    most recently used — a replace counts as an eviction of the old
    value but not of the key.
    """

    def __init__(
        self,
        capacity: int,
        on_evict: Callable[[K, V], None] | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.on_evict = on_evict
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> V | None:
        """Return the cached value (refreshing recency) or ``None``."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh *key*, evicting the LRU entry when full."""
        if key in self._data:
            old = self._data.pop(key)
            if old is not value and self.on_evict is not None:
                self.on_evict(key, old)
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            evicted_key, evicted = self._data.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted)

    def pop(self, key: K) -> V | None:
        """Remove and return *key* without invoking ``on_evict``."""
        return self._data.pop(key, None)

    def clear(self) -> None:
        """Evict everything (invoking ``on_evict`` per entry)."""
        while self._data:
            key, value = self._data.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(key, value)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)
