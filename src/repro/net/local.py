"""In-process "loopback" transport.

Runs an entire ZHT deployment inside one Python process with direct
function calls instead of sockets.  This is the substrate for unit and
integration tests of the protocol logic (redirects, replication chains,
migration, failure handling) — deterministic, fast, and with first-class
fault injection (:meth:`LocalNetwork.kill_address` /
:meth:`LocalNetwork.revive_address`).

Because calls are synchronous and single-threaded, requests queued behind
a migration cannot be answered in-line; their deferred responses are
parked in :attr:`LocalNetwork.deferred_replies` for tests to assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.membership import Address
from ..core.protocol import Request, Response
from ..core.server import ZHTServerCore
from ..obs import REGISTRY
from .transport import ClientTransport, ServerExecutor


@dataclass
class LocalStats:
    roundtrips: int = 0
    oneways: int = 0
    dropped: int = 0

    def inc(self, field: str) -> None:
        setattr(self, field, getattr(self, field) + 1)
        REGISTRY.counter(f"local.{field}").inc()


class LocalNetwork(ClientTransport):
    """Registry of in-process servers addressable like a real network."""

    def __init__(self) -> None:
        self.servers: dict[Address, ServerExecutor] = {}
        self.dead: set[Address] = set()
        self.deferred_replies: list[tuple[object, Response]] = []
        self.stats = LocalStats()

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def add_server(self, core: ZHTServerCore) -> ServerExecutor:
        """Register *core* at its own address; returns its executor."""
        executor = ServerExecutor(
            core, self, self._deferred_reply, peer_timeout=1.0
        )
        self.servers[core.info.address] = executor
        return executor

    def _deferred_reply(self, reply_context: object, response: Response) -> None:
        self.deferred_replies.append((reply_context, response))

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def kill_address(self, address: Address) -> None:
        """Make *address* unreachable (requests time out)."""
        self.dead.add(address)

    def revive_address(self, address: Address) -> None:
        self.dead.discard(address)

    def kill_node(self, addresses: list[Address]) -> None:
        for address in addresses:
            self.kill_address(address)

    def _reachable(self, address: Address) -> bool:
        return address in self.servers and address not in self.dead

    # ------------------------------------------------------------------
    # ClientTransport
    # ------------------------------------------------------------------

    def roundtrip(
        self, address: Address, request: Request, timeout: float
    ) -> Response | None:
        if not self._reachable(address):
            self.stats.inc("dropped")
            return None
        self.stats.inc("roundtrips")
        with REGISTRY.span("local.roundtrip"):
            return self.servers[address].process(request, reply_context=None)

    def send_oneway(self, address: Address, request: Request) -> None:
        if not self._reachable(address):
            self.stats.inc("dropped")
            return
        self.stats.inc("oneways")
        self.servers[address].process(request, reply_context=None)

    def close(self) -> None:
        for executor in self.servers.values():
            executor.core.close()
