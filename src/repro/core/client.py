"""ZHT client core — transport-agnostic operation driver.

The client holds its own copy of the membership table and routes every
operation directly to the owning instance (zero hops).  This module
implements everything about an operation *except* moving bytes:

* target selection (owner, then replica failover);
* retry with exponential backoff on timeouts ("lazily tagging nodes that
  do not respond to requests repeatedly as failed (using exponential back
  off)", §III.H);
* marking nodes dead after repeated failures and queueing a notification
  for "a random manager" (§III.C "Node departures");
* lazy membership refresh from piggybacked tables and redirects.

Real and simulated transports drive the same :class:`OpDriver` loop::

    driver = core.driver(OpCode.LOOKUP, key)
    while True:
        attempt = driver.next_attempt()        # None => driver.outcome set
        response = transport.roundtrip(attempt)  # or timeout
        driver.on_response(response)             # or driver.on_timeout()
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass
from typing import Callable

from ..obs import REGISTRY
from .config import ZHTConfig
from .errors import (
    MembershipError,
    NodeDeadError,
    RequestTimeout,
    Status,
    ZHTError,
    raise_for_status,
)
from .membership import Address, InstanceInfo, MembershipTable
from .protocol import OpCode, Request, Response


@dataclass
class Attempt:
    """One network attempt the transport should execute."""

    address: Address
    request: Request
    timeout: float
    #: Seconds to wait before issuing this attempt (backoff delay).
    delay: float = 0.0


@dataclass
class Notification:
    """Deferred client→manager message (e.g. failure report)."""

    address: Address
    request: Request


@dataclass
class BatchEntry:
    """One key's slot in a batched operation, settled independently.

    Per-key semantics: a missing key fails only its own entry, a redirect
    re-plans only its own entry, and the final per-key outcome lands in
    ``response`` (or ``error`` after the retry budget is exhausted).
    """

    key: bytes
    value: bytes = b""
    response: Response | None = None
    error: ZHTError | None = None

    @property
    def settled(self) -> bool:
        return self.response is not None or self.error is not None


@dataclass
class BatchAttempt:
    """One BATCH round trip the transport should execute: a group of
    entries whose keys all live on the same instance (per-owner planning
    — the aggregation Monnerat & Amorim use per destination, applied to
    ZHT's zero-hop routing where the owner is known client-side)."""

    address: Address
    node_id: str
    instance_id: str
    entries: list[BatchEntry]
    requests: list[Request]

    def to_request(self, core: "ZHTClientCore") -> Request:
        from .protocol import encode_batch_requests

        return Request(
            op=OpCode.BATCH,
            request_id=core.allocate_request_id(),
            epoch=core.membership.epoch,
            payload=encode_batch_requests(self.requests),
        )


class ClientStats:
    """Per-client operation counters, mirrored into the process registry.

    Clients may be driven from several threads at once (benchmark
    drivers, FusionFS), so every increment is lock-guarded; each bump is
    also recorded on the process-wide ``client.*`` registry counters,
    which is where ``repro stats`` and the benchmarks read aggregates.
    """

    FIELDS = (
        "ops",
        "retries",
        "redirects_followed",
        "membership_refreshes",
        "failovers",
        "nodes_marked_dead",
        #: BATCH round trips issued and sub-operations carried by them.
        "batches",
        "batch_ops",
    )

    __slots__ = FIELDS + ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def inc(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + n)
        REGISTRY.counter(f"client.{field}").inc(n)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ClientStats({body})"


class OpState(enum.Enum):
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class ZHTClientCore:
    """Client-side state shared across operations."""

    def __init__(
        self,
        membership: MembershipTable,
        config: ZHTConfig | None = None,
        *,
        rng: random.Random | None = None,
    ) -> None:
        self.membership = membership
        self.config = config or ZHTConfig()
        self.stats = ClientStats()
        self.rng = rng or random.Random()
        self._next_request_id = 1  # guarded-by: _request_id_lock
        # Concurrent drivers over one core (threaded benchmark clients,
        # FusionFS) must never mint the same request id: duplicates would
        # silently defeat the UDP server's mutation dedup cache.
        self._request_id_lock = threading.Lock()
        # failure_counts and pending_notifications see read-modify-write
        # from every thread driving ops through this core; guard them like
        # allocate_request_id or concurrent timeouts lose counts.
        self._state_lock = threading.Lock()
        #: Consecutive timeout counts per node id (reset on any success).
        self.failure_counts: dict[str, int] = {}  # guarded-by: _state_lock
        #: Manager notifications awaiting dispatch by the transport.
        self.pending_notifications: list[Notification] = []  # guarded-by: _state_lock
        #: Called as ``fn(node_id, instance_addresses)`` right after a node
        #: is marked dead — the transport layer hooks this to evict cached
        #: connections so failovers never re-use a socket to a dead server.
        self.on_node_dead: Callable[[str, list[Address]], None] | None = None

    # ------------------------------------------------------------------

    def driver(self, op: OpCode, key: bytes, value: bytes = b"") -> "OpDriver":
        self.stats.inc("ops")
        return OpDriver(self, op, key, value)

    def plan_batches(
        self,
        op: OpCode,
        entries: list[BatchEntry],
        *,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> tuple[list[BatchAttempt], list[BatchEntry]]:
        """Group *entries* by owning instance into BATCH attempts.

        Every key's owner is computed from the local membership table
        (zero hops); keys whose whole replica chain is dead come back in
        the second element so the caller can fail them without a round
        trip.  ``max_bytes`` chunks each owner's group so the encoded
        BATCH request stays under a transport's datagram limit (UDP);
        ``max_entries`` caps sub-requests per round trip.
        """
        from .protocol import batch_request_overhead, frame

        groups: dict[str, BatchAttempt] = {}
        unroutable: list[BatchEntry] = []
        for entry in entries:
            pid = self.membership.partition_of_key(
                entry.key, self.config.hash_name
            )
            chain = self.membership.replicas_for_partition(
                pid, self.config.num_replicas
            )
            target = None
            replica_index = 0
            for index, inst in enumerate(chain):
                node = self.membership.nodes.get(inst.node_id)
                if node is not None and node.alive:
                    target, replica_index = inst, index
                    break
            if target is None:
                unroutable.append(entry)
                continue
            attempt = groups.get(target.instance_id)
            if attempt is None:
                attempt = BatchAttempt(
                    target.address, target.node_id, target.instance_id, [], []
                )
                groups[target.instance_id] = attempt
            attempt.entries.append(entry)
            attempt.requests.append(
                Request(
                    op=op,
                    key=entry.key,
                    value=entry.value,
                    request_id=self.allocate_request_id(),
                    epoch=self.membership.epoch,
                    replica_index=replica_index,
                )
            )
        if max_bytes is None and max_entries is None:
            return list(groups.values()), unroutable
        # Chunk each owner group under the transport's size/count limits.
        overhead = batch_request_overhead(1 << 32, self.membership.epoch)
        budget = None if max_bytes is None else max(1, max_bytes - overhead)
        attempts: list[BatchAttempt] = []
        for group in groups.values():
            chunk = BatchAttempt(
                group.address, group.node_id, group.instance_id, [], []
            )
            size = 0
            for entry, request in zip(group.entries, group.requests):
                wire = len(frame(request.encode()))
                full_count = max_entries and len(chunk.entries) >= max_entries
                full_bytes = (
                    budget is not None and chunk.entries and size + wire > budget
                )
                if full_count or full_bytes:
                    attempts.append(chunk)
                    chunk = BatchAttempt(
                        group.address, group.node_id, group.instance_id, [], []
                    )
                    size = 0
                chunk.entries.append(entry)
                chunk.requests.append(request)
                size += wire
            if chunk.entries:
                attempts.append(chunk)
        return attempts, unroutable

    def allocate_request_id(self) -> int:
        with self._request_id_lock:
            rid = self._next_request_id
            self._next_request_id += 1
        return rid

    def adopt_membership(self, payload: bytes) -> bool:
        """Adopt a piggybacked membership table if strictly newer."""
        if not payload:
            return False
        try:
            table = MembershipTable.from_bytes(payload)
        except MembershipError:
            return False
        if self.membership.maybe_adopt(table):
            self.stats.inc("membership_refreshes")
            return True
        return False

    # -- failure detection ------------------------------------------------

    def record_timeout(self, node_id: str) -> bool:
        """Count a timeout against *node_id*; returns True if it just died."""
        with self._state_lock:
            count = self.failure_counts.get(node_id, 0) + 1
            self.failure_counts[node_id] = count
            reached_threshold = count >= self.config.failures_before_dead
        if reached_threshold:
            return self._mark_node_dead(node_id)
        return False

    def record_success(self, node_id: str) -> None:
        with self._state_lock:
            self.failure_counts.pop(node_id, None)

    def take_notifications(self) -> list[Notification]:
        """Atomically drain the pending manager notifications."""
        with self._state_lock:
            notes = self.pending_notifications
            self.pending_notifications = []
        return notes

    def _mark_node_dead(self, node_id: str) -> bool:
        """Mark *node_id* dead exactly once; True if this call did it.

        The alive check and the table mutation happen under one lock so
        concurrent drivers racing past the failure threshold cannot each
        "kill" the node and queue duplicate manager notifications.
        """
        with self._state_lock:
            node = self.membership.nodes.get(node_id)
            if node is None or not node.alive:
                return False
            try:
                self.membership.mark_node_dead(node_id)
            except MembershipError:
                return False
            self.failure_counts.pop(node_id, None)
        self.stats.inc("nodes_marked_dead")
        if self.on_node_dead is not None:
            addresses = [
                inst.address
                for inst in self.membership.instances_on_node(node_id)
            ]
            self.on_node_dead(node_id, addresses)
        manager = self._random_alive_manager()
        if manager is not None:
            # Push our (newer) table — with the node marked dead — to a
            # random manager, which will broadcast and rebuild replicas.
            note = Notification(
                manager,
                Request(
                    op=OpCode.MEMBERSHIP_UPDATE,
                    request_id=self.allocate_request_id(),
                    epoch=self.membership.epoch,
                    payload=self.membership.to_bytes(),
                ),
            )
            with self._state_lock:
                self.pending_notifications.append(note)
        return True

    def _random_alive_manager(self) -> Address | None:
        alive = [n for n in self.membership.nodes.values() if n.alive]
        if not alive:
            return None
        return self.rng.choice(alive).manager_address


class OpDriver:
    """Drives one logical operation through attempts until done/failed."""

    def __init__(self, core: ZHTClientCore, op: OpCode, key: bytes, value: bytes) -> None:
        self.core = core
        self.op = op
        self.key = key
        self.value = value
        self.state = OpState.RUNNING
        self.response: Response | None = None
        self.error: ZHTError | None = None
        self._attempts_used = 0
        self._retries_on_target = 0
        self._replica_index = 0
        self._current: Attempt | None = None

    # ------------------------------------------------------------------

    @property
    def served_replica_index(self) -> int:
        """Replica-chain position of the final attempt's target (0 =
        owner, 1 = strongly-consistent secondary, >=2 = async replica).
        The history recorder stores this with each event so the
        consistency checker knows which guarantee the read carries."""
        return self._replica_index

    @property
    def pid(self) -> int:
        return self.core.membership.partition_of_key(
            self.key, self.core.config.hash_name
        )

    def _chain(self) -> list[InstanceInfo]:
        return self.core.membership.replicas_for_partition(
            self.pid, self.core.config.num_replicas
        )

    def _target(self) -> InstanceInfo | None:
        """Current target instance, honouring failover position and
        skipping replicas on dead nodes."""
        chain = self._chain()
        index = self._replica_index
        while index < len(chain):
            inst = chain[index]
            node = self.core.membership.nodes.get(inst.node_id)
            if node is not None and node.alive:
                if index != self._replica_index:
                    self._replica_index = index
                return inst
            index += 1
        return None

    def next_attempt(self) -> Attempt | None:
        """The next attempt to execute, or ``None`` once settled."""
        if self.state is not OpState.RUNNING:
            return None
        cfg = self.core.config
        if self._attempts_used > cfg.max_retries:
            self._fail(RequestTimeout(f"{self.op.name} exhausted retries"))
            return None
        target = self._target()
        if target is None:
            self._fail(
                NodeDeadError(
                    f"no alive replica for partition {self.pid} "
                    f"(op {self.op.name})"
                )
            )
            return None
        request = Request(
            op=self.op,
            key=self.key,
            value=self.value,
            request_id=self.core.allocate_request_id(),
            epoch=self.core.membership.epoch,
            replica_index=self._replica_index,
        )
        timeout = cfg.request_timeout * (
            cfg.backoff_factor ** self._retries_on_target
        )
        delay = 0.0
        if self._retries_on_target > 0:
            delay = cfg.request_timeout * (
                cfg.backoff_factor ** (self._retries_on_target - 1)
            )
        self._current = Attempt(target.address, request, timeout, delay)
        self._attempts_used += 1
        return self._current

    # ------------------------------------------------------------------

    def on_response(self, response: Response) -> None:
        if self.state is not OpState.RUNNING or self._current is None:
            return
        core = self.core
        target = self._target()
        if target is not None:
            core.record_success(target.node_id)
        core.adopt_membership(response.membership)

        if response.status == Status.REDIRECT:
            # Membership was piggybacked; recompute the owner and retry.
            core.stats.inc("redirects_followed")
            self._retries_on_target = 0
            return
        if response.status == Status.MIGRATING:
            # Partition briefly locked; back off and retry.
            core.stats.inc("retries")
            self._retries_on_target += 1
            return
        self.response = response
        self.state = OpState.DONE

    def on_timeout(self) -> None:
        """The transport observed no response within ``attempt.timeout``."""
        if self.state is not OpState.RUNNING or self._current is None:
            return
        core = self.core
        core.stats.inc("retries")
        self._retries_on_target += 1
        target = self._target()
        if target is None:
            return  # next_attempt() will settle the failure
        died = core.record_timeout(target.node_id)
        if died:
            # Fail over to the next replica in the chain.
            self._replica_index += 1
            self._retries_on_target = 0
            if self._replica_index <= core.config.num_replicas:
                core.stats.inc("failovers")

    # ------------------------------------------------------------------

    def _fail(self, error: ZHTError) -> None:
        self.error = error
        self.state = OpState.FAILED

    def result(self) -> Response:
        """Final response; raises the mapped exception on failure."""
        if self.state is OpState.FAILED:
            assert self.error is not None
            raise self.error
        if self.state is not OpState.DONE or self.response is None:
            raise ZHTError("operation still in flight")
        raise_for_status(
            self.response.status,
            f"{self.op.name} {self.key!r}",
        )
        return self.response
