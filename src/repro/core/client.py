"""ZHT client core — transport-agnostic operation driver.

The client holds its own copy of the membership table and routes every
operation directly to the owning instance (zero hops).  This module
implements everything about an operation *except* moving bytes:

* target selection (owner, then replica failover);
* retry with full-jitter exponential backoff on timeouts ("lazily tagging
  nodes that do not respond to requests repeatedly as failed (using
  exponential back off)", §III.H);
* deadline propagation — each operation gets an absolute wall-clock
  deadline, carried in every request header, capping both retry delays
  and attempt timeouts so total latency is bounded;
* adaptive (phi-accrual-style) failure detection: each timeout adds an
  RTT-scaled suspicion amount, so nodes with an established fast RTT
  history are declared dead sooner than the fixed consecutive-timeout
  counter would, and queueing a notification for "a random manager"
  (§III.C "Node departures");
* a per-node circuit breaker (closed/open/half-open) that re-probes
  suspected-dead nodes after a cooldown instead of requiring a client
  restart to rediscover a recovered node;
* overload handling: RETRY_LATER responses back off without counting
  toward suspicion, and lookups may degrade to replica reads;
* lazy membership refresh from piggybacked tables and redirects.

Real and simulated transports drive the same :class:`OpDriver` loop::

    driver = core.driver(OpCode.LOOKUP, key)
    while True:
        attempt = driver.next_attempt()        # None => driver.outcome set
        response = transport.roundtrip(attempt)  # or timeout
        driver.on_response(response)             # or driver.on_timeout()
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..obs import REGISTRY
from ..obs.metrics import LatencyHistogram
from .config import ZHTConfig
from .errors import (
    DeadlineExceeded,
    MembershipError,
    NodeDeadError,
    RequestTimeout,
    ServerOverloaded,
    Status,
    ZHTError,
    raise_for_status,
)
from .membership import Address, InstanceInfo, MembershipTable
from .protocol import OpCode, Request, Response


@dataclass
class Attempt:
    """One network attempt the transport should execute."""

    address: Address
    request: Request
    timeout: float
    #: Seconds to wait before issuing this attempt (backoff delay).
    delay: float = 0.0


@dataclass
class Notification:
    """Deferred client→manager message (e.g. failure report)."""

    address: Address
    request: Request


@dataclass
class BatchEntry:
    """One key's slot in a batched operation, settled independently.

    Per-key semantics: a missing key fails only its own entry, a redirect
    re-plans only its own entry, and the final per-key outcome lands in
    ``response`` (or ``error`` after the retry budget is exhausted).
    """

    key: bytes
    value: bytes = b""
    response: Response | None = None
    error: ZHTError | None = None

    @property
    def settled(self) -> bool:
        return self.response is not None or self.error is not None


@dataclass
class BatchAttempt:
    """One BATCH round trip the transport should execute: a group of
    entries whose keys all live on the same instance (per-owner planning
    — the aggregation Monnerat & Amorim use per destination, applied to
    ZHT's zero-hop routing where the owner is known client-side)."""

    address: Address
    node_id: str
    instance_id: str
    entries: list[BatchEntry]
    requests: list[Request]

    def to_request(
        self, core: "ZHTClientCore", deadline_us: int = 0
    ) -> Request:
        from .protocol import encode_batch_requests

        return Request(
            op=OpCode.BATCH,
            request_id=core.allocate_request_id(),
            epoch=core.membership.epoch,
            payload=encode_batch_requests(
                self.requests, core.config.wire_codec
            ),
            deadline_us=deadline_us,
        )


class BreakerState(enum.Enum):
    """Per-node circuit-breaker states gating traffic to suspected nodes.

    ``CLOSED`` (no breaker entry) — node healthy, traffic flows.
    ``OPEN`` — node was marked dead by local suspicion; no traffic until
    the cooldown elapses.  ``HALF_OPEN`` — cooldown elapsed; the node is
    revived in the local table so the next operation probes it.  One
    success closes the breaker; one timeout re-opens it with a doubled
    cooldown (capped at ``breaker_cooldown_max_s``).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class _Breaker:
    """Bookkeeping for one suspected node (guarded by core._state_lock)."""

    state: BreakerState
    opened_at: float
    cooldown: float
    open_count: int = 1


class ClientStats:
    """Per-client operation counters, mirrored into the process registry.

    Clients may be driven from several threads at once (benchmark
    drivers, FusionFS), so every increment is lock-guarded; each bump is
    also recorded on the process-wide ``client.*`` registry counters,
    which is where ``repro stats`` and the benchmarks read aggregates.
    """

    FIELDS = (
        "ops",
        "retries",
        "redirects_followed",
        "membership_refreshes",
        "failovers",
        "nodes_marked_dead",
        #: BATCH round trips issued and sub-operations carried by them.
        "batches",
        "batch_ops",
        #: RETRY_LATER (overload-shed) responses absorbed by the retry loop.
        "retry_later",
        #: Lookups served by a replica because the owner shed load.
        "degraded_reads",
        #: Lookups of a client-observed hot key started at a non-owner
        #: chain position (heat-triggered read spreading).
        "hot_spread_reads",
        #: Hot-key cache outcomes (see repro.api.ZHT's value cache).
        "hot_cache_hits",
        "hot_cache_misses",
        "hot_cache_invalidations",
        #: Suspected-dead nodes revived for a half-open probe.
        "reprobes",
    )

    __slots__ = FIELDS + ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def inc(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + n)
        REGISTRY.counter(f"client.{field}").inc(n)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ClientStats({body})"


class OpState(enum.Enum):
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class ZHTClientCore:
    """Client-side state shared across operations."""

    def __init__(
        self,
        membership: MembershipTable,
        config: ZHTConfig | None = None,
        *,
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.membership = membership
        self.config = config or ZHTConfig()
        self.stats = ClientStats()
        self.rng = rng or random.Random()
        #: Wall-clock source for deadlines and breaker cooldowns; the
        #: simulator injects its virtual clock here.
        self.clock = clock
        self._next_request_id = 1  # guarded-by: _request_id_lock
        # Concurrent drivers over one core (threaded benchmark clients,
        # FusionFS) must never mint the same request id: duplicates would
        # silently defeat the UDP server's mutation dedup cache.
        self._request_id_lock = threading.Lock()
        # failure_counts and pending_notifications see read-modify-write
        # from every thread driving ops through this core; guard them like
        # allocate_request_id or concurrent timeouts lose counts.
        self._state_lock = threading.Lock()
        #: Consecutive timeout counts per node id (reset on any success).
        self.failure_counts: dict[str, int] = {}  # guarded-by: _state_lock
        #: Accrued suspicion per node id; in "phi" mode each timeout adds
        #: an RTT-scaled amount in [1, suspicion_event_cap], in "count"
        #: mode exactly 1 — so suspicion >= failures_before_dead is the
        #: single death condition for both detectors.
        self.suspicion: dict[str, float] = {}  # guarded-by: _state_lock
        #: Per-node RTT history feeding the adaptive detector.  Kept
        #: per-core (a process can host many independent clients) and
        #: mirrored into the process registry for ``repro stats``.
        self._rtt: dict[str, LatencyHistogram] = {}  # guarded-by: _state_lock
        #: Circuit breakers for nodes marked dead by *local* suspicion.
        self._breakers: dict[str, _Breaker] = {}  # guarded-by: _state_lock
        #: Manager notifications awaiting dispatch by the transport.
        self.pending_notifications: list[Notification] = []  # guarded-by: _state_lock
        #: Called as ``fn(node_id, instance_addresses)`` right after a node
        #: is marked dead — the transport layer hooks this to evict cached
        #: connections so failovers never re-use a socket to a dead server.
        self.on_node_dead: Callable[[str, list[Address]], None] | None = None
        self._derived_budget: float | None = None
        # Client-observed key heat: a bounded LRU of per-key access
        # counters (a sliding-window approximation — eviction forgets a
        # key's count, so sustained popularity is required to stay hot).
        # LRUCache is not internally synchronized (see its docstring);
        # every access happens under _heat_lock.  Imported lazily:
        # repro.net pulls this module in at import time, so a top-level
        # import of repro.net.lru here would be circular.
        from ..net.lru import LRUCache

        self._heat_lock = threading.Lock()
        self._key_heat = LRUCache(self.config.hot_key_tracker_size)

    def deadline_budget(self) -> float:
        """Wall-clock budget (seconds) for one logical operation.

        ``op_deadline_s`` when configured; otherwise the worst-case sum of
        the retry schedule's timeouts and backoff delays, so the derived
        deadline can never fire before the retry budget does — existing
        retry semantics are unchanged unless an explicit deadline is set.
        """
        cfg = self.config
        if cfg.op_deadline_s is not None:
            return cfg.op_deadline_s
        if self._derived_budget is None:
            total = 0.0
            for r in range(cfg.max_retries + 1):
                total += cfg.request_timeout * cfg.backoff_factor**r
                if r:
                    total += cfg.request_timeout * cfg.backoff_factor ** (r - 1)
            self._derived_budget = total
        return self._derived_budget

    # ------------------------------------------------------------------

    def driver(self, op: OpCode, key: bytes, value: bytes = b"") -> "OpDriver":
        self.maybe_reprobe()
        self.stats.inc("ops")
        start = 0
        if op is OpCode.LOOKUP:
            start = self._hot_read_start(key)
        return OpDriver(self, op, key, value, start_replica_index=start)

    # -- client-observed key heat ------------------------------------------

    def note_key_access(self, key: bytes) -> int:
        """Count one access of *key*; returns its tally in the tracker's
        sliding window."""
        with self._heat_lock:
            count = (self._key_heat.get(key) or 0) + 1
            self._key_heat.put(key, count)
        return count

    def key_heat(self, key: bytes) -> int:
        """Current window tally for *key* (0 = cold/evicted), without
        counting an access."""
        with self._heat_lock:
            count = self._key_heat.get(key)
        return count or 0

    def is_hot(self, key: bytes) -> bool:
        return self.key_heat(key) >= self.config.hot_key_threshold

    def _hot_read_start(self, key: bytes) -> int:
        """Replica-chain position this lookup should start at.

        Cold keys (and every write) go to the owner.  Once a key's tally
        crosses ``hot_key_threshold``, its lookups rotate round-robin
        across the *alive* chain positions, so a hot key's read load is
        divided across ``num_replicas + 1`` servers instead of melting
        the owner.  Positions >= 2 are async replicas: those reads carry
        the same bounded-staleness guarantee as degraded reads, which is
        what makes the spread safe under the §III.J consistency model.
        """
        cfg = self.config
        count = self.note_key_access(key)
        if (
            not cfg.hot_read_spread
            or cfg.num_replicas == 0
            or count < cfg.hot_key_threshold
        ):
            return 0
        pid = self.membership.partition_of_key(key, cfg.hash_name)
        chain = self.membership.replicas_for_partition(pid, cfg.num_replicas)
        alive = []
        for index, inst in enumerate(chain):
            node = self.membership.nodes.get(inst.node_id)
            if node is not None and node.alive:
                alive.append(index)
        if len(alive) <= 1:
            return 0
        start = alive[count % len(alive)]
        if start:
            self.stats.inc("hot_spread_reads")
        return start

    def plan_batches(
        self,
        op: OpCode,
        entries: list[BatchEntry],
        *,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> tuple[list[BatchAttempt], list[BatchEntry]]:
        """Group *entries* by owning instance into BATCH attempts.

        Every key's owner is computed from the local membership table
        (zero hops); keys whose whole replica chain is dead come back in
        the second element so the caller can fail them without a round
        trip.  ``max_bytes`` chunks each owner's group so the encoded
        BATCH request stays under a transport's datagram limit (UDP);
        ``max_entries`` caps sub-requests per round trip.
        """
        from .protocol import batch_request_overhead, frame

        self.maybe_reprobe()
        groups: dict[str, BatchAttempt] = {}
        unroutable: list[BatchEntry] = []
        for entry in entries:
            pid = self.membership.partition_of_key(
                entry.key, self.config.hash_name
            )
            chain = self.membership.replicas_for_partition(
                pid, self.config.num_replicas
            )
            target = None
            replica_index = 0
            for index, inst in enumerate(chain):
                node = self.membership.nodes.get(inst.node_id)
                if node is not None and node.alive:
                    target, replica_index = inst, index
                    break
            if target is None:
                unroutable.append(entry)
                continue
            attempt = groups.get(target.instance_id)
            if attempt is None:
                attempt = BatchAttempt(
                    target.address, target.node_id, target.instance_id, [], []
                )
                groups[target.instance_id] = attempt
            attempt.entries.append(entry)
            attempt.requests.append(
                Request(
                    op=op,
                    key=entry.key,
                    value=entry.value,
                    request_id=self.allocate_request_id(),
                    epoch=self.membership.epoch,
                    replica_index=replica_index,
                )
            )
        if max_bytes is None and max_entries is None:
            return list(groups.values()), unroutable
        # Chunk each owner group under the transport's size/count limits.
        overhead = batch_request_overhead(1 << 32, self.membership.epoch)
        budget = None if max_bytes is None else max(1, max_bytes - overhead)
        attempts: list[BatchAttempt] = []
        for group in groups.values():
            chunk = BatchAttempt(
                group.address, group.node_id, group.instance_id, [], []
            )
            size = 0
            for entry, request in zip(group.entries, group.requests):
                # Measured with the codec the payload will actually use,
                # so datagram chunking stays exact for both codecs.
                wire = len(frame(request.encode_wire(self.config.wire_codec)))
                full_count = max_entries and len(chunk.entries) >= max_entries
                full_bytes = (
                    budget is not None and chunk.entries and size + wire > budget
                )
                if full_count or full_bytes:
                    attempts.append(chunk)
                    chunk = BatchAttempt(
                        group.address, group.node_id, group.instance_id, [], []
                    )
                    size = 0
                chunk.entries.append(entry)
                chunk.requests.append(request)
                size += wire
            if chunk.entries:
                attempts.append(chunk)
        return attempts, unroutable

    def allocate_request_id(self) -> int:
        with self._request_id_lock:
            rid = self._next_request_id
            self._next_request_id += 1
        return rid

    def adopt_membership(self, payload: bytes) -> bool:
        """Adopt a piggybacked membership table if strictly newer."""
        if not payload:
            return False
        try:
            table = MembershipTable.from_bytes(payload)
        except MembershipError:
            return False
        if self.membership.maybe_adopt(table):
            self.stats.inc("membership_refreshes")
            # The authoritative table supersedes local suspicion: drop
            # breakers and accrued suspicion so a manager-confirmed view
            # (dead or recovered) is not fought by stale local verdicts.
            with self._state_lock:
                self._breakers.clear()
                self.suspicion.clear()
            return True
        return False

    # -- failure detection ------------------------------------------------

    def _suspicion_contribution(
        self, hist: LatencyHistogram | None, timeout_s: float
    ) -> float:
        """Suspicion units one timeout adds against the node whose RTT
        history is *hist*.

        Phi-accrual intuition without the Gaussian machinery: the longer
        the elapsed timeout is relative to the node's *expected* response
        time, the stronger the evidence of death.  The expectation is an
        RTO-style estimate ``max(rto_min_s, 4 * p99(rtt))`` from the
        node's own RTT history.  A node with no history (cold start)
        contributes exactly 1.0 — identical to the legacy counter — so
        the adaptive detector can only be *faster*, never trigger-happier
        on nodes it knows nothing about.
        """
        cfg = self.config
        if cfg.failure_detector != "phi" or timeout_s <= 0:
            return 1.0
        if hist is None or hist.count < 8:
            return 1.0  # not enough history to trust an RTO estimate
        rto = max(cfg.rto_min_s, hist.percentile(99) * 4)
        return min(max(timeout_s / rto, 1.0), cfg.suspicion_event_cap)

    def record_timeout(self, node_id: str, timeout_s: float = 0.0) -> bool:
        """Count a timeout against *node_id*; returns True if it just died.

        *timeout_s* is the attempt's timeout (how long the client waited
        before giving up); it scales the suspicion contribution in phi
        mode.  A timeout against a HALF_OPEN node re-opens its breaker
        immediately — a failed probe is conclusive, not one more strike.
        """
        with self._state_lock:
            count = self.failure_counts.get(node_id, 0) + 1
            self.failure_counts[node_id] = count
            breaker = self._breakers.get(node_id)
            probe_failed = (
                breaker is not None and breaker.state is BreakerState.HALF_OPEN
            )
            hist = self._rtt.get(node_id)
        # The histogram is internally locked; only the dict lookup needs
        # _state_lock, so the percentile math runs outside it.
        contribution = self._suspicion_contribution(hist, timeout_s)
        with self._state_lock:
            score = self.suspicion.get(node_id, 0.0) + contribution
            self.suspicion[node_id] = score
            reached_threshold = score >= self.config.failures_before_dead
        if probe_failed or reached_threshold:
            return self._mark_node_dead(node_id)
        return False

    def record_success(self, node_id: str, rtt_s: float | None = None) -> None:
        """Clear suspicion for *node_id* and feed its RTT history."""
        with self._state_lock:
            self.failure_counts.pop(node_id, None)
            self.suspicion.pop(node_id, None)
            self._breakers.pop(node_id, None)  # half-open probe succeeded
            if rtt_s is not None:
                hist = self._rtt.get(node_id)
                if hist is None:
                    hist = LatencyHistogram(f"client.rtt.{node_id}")
                    self._rtt[node_id] = hist
        if rtt_s is not None:
            hist.record(rtt_s)
            REGISTRY.histogram(f"client.rtt.{node_id}").record(rtt_s)

    def breaker_state(self, node_id: str) -> BreakerState:
        """Current circuit-breaker state for *node_id* (CLOSED = healthy)."""
        with self._state_lock:
            breaker = self._breakers.get(node_id)
            return BreakerState.CLOSED if breaker is None else breaker.state

    def maybe_reprobe(self) -> None:
        """Transition OPEN breakers whose cooldown elapsed to HALF_OPEN.

        The node is revived in the *local* table so normal routing sends
        it the next matching operation as a probe: one success closes the
        breaker, one timeout re-opens it with a doubled cooldown.  This is
        what lets a client rediscover a recovered node without a restart.
        """
        now = self.clock()
        to_probe: list[str] = []
        with self._state_lock:
            for node_id, breaker in self._breakers.items():
                if (
                    breaker.state is BreakerState.OPEN
                    and now - breaker.opened_at >= breaker.cooldown
                ):
                    breaker.state = BreakerState.HALF_OPEN
                    to_probe.append(node_id)
        for node_id in to_probe:
            try:
                self.membership.mark_node_alive(node_id)
            except MembershipError:
                continue
            self.stats.inc("reprobes")

    def take_notifications(self) -> list[Notification]:
        """Atomically drain the pending manager notifications."""
        with self._state_lock:
            notes = self.pending_notifications
            self.pending_notifications = []
        return notes

    def _mark_node_dead(self, node_id: str) -> bool:
        """Mark *node_id* dead exactly once; True if this call did it.

        The alive check and the table mutation happen under one lock so
        concurrent drivers racing past the failure threshold cannot each
        "kill" the node and queue duplicate manager notifications.
        """
        cfg = self.config
        with self._state_lock:
            node = self.membership.nodes.get(node_id)
            if node is None or not node.alive:
                return False
            try:
                self.membership.mark_node_dead(node_id)
            except MembershipError:
                return False
            self.failure_counts.pop(node_id, None)
            self.suspicion.pop(node_id, None)
            # Open (or re-open) the circuit breaker so the node gets a
            # half-open probe after the cooldown instead of staying dead
            # until the client process restarts.
            breaker = self._breakers.get(node_id)
            first_death = breaker is None
            if first_death:
                self._breakers[node_id] = _Breaker(
                    state=BreakerState.OPEN,
                    opened_at=self.clock(),
                    cooldown=cfg.breaker_cooldown_s,
                )
            else:
                breaker.state = BreakerState.OPEN
                breaker.opened_at = self.clock()
                breaker.open_count += 1
                breaker.cooldown = min(
                    cfg.breaker_cooldown_s * 2.0 ** (breaker.open_count - 1),
                    cfg.breaker_cooldown_max_s,
                )
        # A failed half-open probe re-opens the breaker; it is not a new
        # death verdict, so only a node's first death (per suspicion
        # episode) counts toward the stat.
        if first_death:
            self.stats.inc("nodes_marked_dead")
        if self.on_node_dead is not None:
            addresses = [
                inst.address
                for inst in self.membership.instances_on_node(node_id)
            ]
            self.on_node_dead(node_id, addresses)
        manager = self._random_alive_manager()
        if manager is not None:
            # Push our (newer) table — with the node marked dead — to a
            # random manager, which will broadcast and rebuild replicas.
            note = Notification(
                manager,
                Request(
                    op=OpCode.MEMBERSHIP_UPDATE,
                    request_id=self.allocate_request_id(),
                    epoch=self.membership.epoch,
                    payload=self.membership.to_bytes(),
                ),
            )
            with self._state_lock:
                self.pending_notifications.append(note)
        return True

    def _random_alive_manager(self) -> Address | None:
        alive = [n for n in self.membership.nodes.values() if n.alive]
        if not alive:
            return None
        return self.rng.choice(alive).manager_address


class OpDriver:
    """Drives one logical operation through attempts until done/failed."""

    def __init__(
        self,
        core: ZHTClientCore,
        op: OpCode,
        key: bytes,
        value: bytes,
        *,
        start_replica_index: int = 0,
    ) -> None:
        self.core = core
        self.op = op
        self.key = key
        self.value = value
        self.state = OpState.RUNNING
        self.response: Response | None = None
        self.error: ZHTError | None = None
        #: Absolute wall-clock deadline; propagated in every request
        #: header and enforced locally when planning each attempt.
        self.deadline = core.clock() + core.deadline_budget()
        self._attempts_used = 0
        self._retries_on_target = 0
        #: Chain position of the current target.  Normally 0 (the owner);
        #: heat-spread lookups start deeper in the chain and walk forward
        #: from there like any degraded read.
        self._replica_index = start_replica_index
        self._current: Attempt | None = None
        self._overloaded_seen = False

    # ------------------------------------------------------------------

    @property
    def served_replica_index(self) -> int:
        """Replica-chain position of the final attempt's target (0 =
        owner, 1 = strongly-consistent secondary, >=2 = async replica).
        The history recorder stores this with each event so the
        consistency checker knows which guarantee the read carries."""
        return self._replica_index

    @property
    def pid(self) -> int:
        return self.core.membership.partition_of_key(
            self.key, self.core.config.hash_name
        )

    def _chain(self) -> list[InstanceInfo]:
        return self.core.membership.replicas_for_partition(
            self.pid, self.core.config.num_replicas
        )

    def _target(self) -> InstanceInfo | None:
        """Current target instance, honouring failover position and
        skipping replicas on dead nodes."""
        chain = self._chain()
        index = self._replica_index
        while index < len(chain):
            inst = chain[index]
            node = self.core.membership.nodes.get(inst.node_id)
            if node is not None and node.alive:
                if index != self._replica_index:
                    self._replica_index = index
                return inst
            index += 1
        return None

    def next_attempt(self) -> Attempt | None:
        """The next attempt to execute, or ``None`` once settled."""
        if self.state is not OpState.RUNNING:
            return None
        cfg = self.core.config
        if self._attempts_used > cfg.max_retries:
            if self._overloaded_seen:
                self._fail(
                    ServerOverloaded(
                        f"{self.op.name} shed by overloaded servers"
                    )
                )
            else:
                self._fail(RequestTimeout(f"{self.op.name} exhausted retries"))
            return None
        remaining = self.deadline - self.core.clock()
        if remaining <= 0:
            self._fail(
                DeadlineExceeded(f"{self.op.name} deadline exceeded")
            )
            return None
        target = self._target()
        if target is None:
            self._fail(
                NodeDeadError(
                    f"no alive replica for partition {self.pid} "
                    f"(op {self.op.name})"
                )
            )
            return None
        request = Request(
            op=self.op,
            key=self.key,
            value=self.value,
            request_id=self.core.allocate_request_id(),
            epoch=self.core.membership.epoch,
            replica_index=self._replica_index,
            deadline_us=int(self.deadline * 1e6),
        )
        timeout = cfg.request_timeout * (
            cfg.backoff_factor ** self._retries_on_target
        )
        delay = 0.0
        if self._retries_on_target > 0:
            delay = cfg.request_timeout * (
                cfg.backoff_factor ** (self._retries_on_target - 1)
            )
            if cfg.retry_jitter:
                # Full jitter (delay ~ U[0, base]) desynchronizes the
                # retry storms that lockstep exponential backoff creates
                # when many clients time out against one slow server.
                delay = self.core.rng.uniform(0.0, delay)
        # The deadline caps both the wait before the attempt and the
        # attempt itself; a schedule that cannot fit gives the attempt
        # whatever budget is left rather than overshooting the deadline.
        delay = min(delay, remaining)
        timeout = min(timeout, remaining - delay)
        if timeout <= 0:
            self._fail(
                DeadlineExceeded(f"{self.op.name} deadline exceeded")
            )
            return None
        self._current = Attempt(target.address, request, timeout, delay)
        self._attempts_used += 1
        return self._current

    # ------------------------------------------------------------------

    def on_response(self, response: Response, rtt_s: float | None = None) -> None:
        if self.state is not OpState.RUNNING or self._current is None:
            return
        core = self.core
        target = self._target()
        if target is not None:
            core.record_success(target.node_id, rtt_s=rtt_s)
        core.adopt_membership(response.membership)

        if response.status == Status.REDIRECT:
            # Membership was piggybacked; recompute the owner and retry.
            core.stats.inc("redirects_followed")
            self._retries_on_target = 0
            return
        if response.status == Status.MIGRATING:
            # Partition briefly locked; back off and retry.
            core.stats.inc("retries")
            self._retries_on_target += 1
            return
        if response.status == Status.RETRY_LATER:
            # Explicit overload shed: the node is alive (it answered), so
            # nothing counts toward suspicion.  Lookups degrade to the
            # next replica under the bounded-staleness contract; anything
            # else backs off (with jitter) and retries the same target.
            core.stats.inc("retry_later")
            if (
                self.op == OpCode.LOOKUP
                and core.config.degraded_reads
                and self._replica_index < core.config.num_replicas
            ):
                self._replica_index += 1
                self._retries_on_target = 0
                core.stats.inc("degraded_reads")
                return
            self._overloaded_seen = True
            core.stats.inc("retries")
            self._retries_on_target += 1
            return
        if response.status == Status.DEADLINE_EXCEEDED:
            # The server's clock says our deadline passed.  Trust our own
            # clock instead (tolerates skew): back off and let
            # next_attempt() settle the failure if we agree.
            core.stats.inc("retries")
            self._retries_on_target += 1
            return
        self.response = response
        self.state = OpState.DONE

    def on_timeout(self) -> None:
        """The transport observed no response within ``attempt.timeout``."""
        if self.state is not OpState.RUNNING or self._current is None:
            return
        core = self.core
        core.stats.inc("retries")
        timeout_s = self._current.timeout
        self._retries_on_target += 1
        target = self._target()
        if target is None:
            return  # next_attempt() will settle the failure
        died = core.record_timeout(target.node_id, timeout_s=timeout_s)
        if died:
            # Fail over to the next replica in the chain.
            self._replica_index += 1
            self._retries_on_target = 0
            if self._replica_index <= core.config.num_replicas:
                core.stats.inc("failovers")

    # ------------------------------------------------------------------

    def _fail(self, error: ZHTError) -> None:
        self.error = error
        self.state = OpState.FAILED

    def result(self) -> Response:
        """Final response; raises the mapped exception on failure."""
        if self.state is OpState.FAILED:
            assert self.error is not None
            raise self.error
        if self.state is not OpState.DONE or self.response is None:
            raise ZHTError("operation still in flight")
        raise_for_status(
            self.response.status,
            f"{self.op.name} {self.key!r}",
        )
        return self.response
