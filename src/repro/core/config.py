"""Configuration for ZHT deployments.

A single :class:`ZHTConfig` drives both the real runtime (``repro.net``)
and the simulator (``repro.sim``), so experiments can swap substrates
without touching deployment code.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .hashing import DEFAULT_HASH, HASH_FUNCTIONS


class ReplicationMode:
    """How updates reach replicas beyond the secondary.

    Per the paper (§III.J): "The ZHT primary replica and secondary replica
    are strongly consistent, other replicas are asynchronously updated
    after the secondary replica is complete" — i.e. ZHT's native mode is
    ``ASYNC``.  ``SYNC`` (every replica updated before the client sees the
    ack) is implemented for the Figure 12 ablation, where the paper
    estimates sync replication would cost +100%/+200% for 1/2 replicas.
    """

    ASYNC = "async"
    SYNC = "sync"
    #: Fire-and-forget to *all* replicas, including the secondary.  Weakest
    #: mode; not used by the paper but useful as an ablation lower bound.
    NONE = "none"

    ALL = (ASYNC, SYNC, NONE)


@dataclass(frozen=True)
class ZHTConfig:
    """Tunable parameters of a ZHT deployment.

    Defaults follow the paper's micro-benchmark setup where one is stated
    (e.g. key length 15 B / value length 132 B caps are workload, not
    config; replication defaults off as in the baseline runs).
    """

    #: Fixed total number of partitions, "a fixed big number indicating
    #: the maximal number of nodes that can be used in the system".
    num_partitions: int = 1024
    #: Replicas *in addition to* the primary copy (0 disables replication).
    num_replicas: int = 0
    replication_mode: str = ReplicationMode.ASYNC
    #: Ring hash function name (see :data:`repro.core.hashing.HASH_FUNCTIONS`).
    hash_name: str = DEFAULT_HASH

    # --- client behaviour -------------------------------------------------
    #: Base request timeout in seconds before the first retry.
    request_timeout: float = 1.0
    #: Exponential backoff multiplier between retries ("lazily tagging
    #: nodes that do not respond to requests repeatedly as failed (using
    #: exponential back off)").
    backoff_factor: float = 2.0
    #: Suspicion threshold before a physical node is marked dead.  With
    #: ``failure_detector="count"`` this is the classic consecutive-timeout
    #: counter; with ``"phi"`` each timeout contributes an RTT-scaled
    #: suspicion amount in ``[1, suspicion_event_cap]``, so established-fast
    #: nodes are declared dead sooner while cold-start behaviour degrades
    #: exactly to the counter.
    failures_before_dead: int = 3
    #: Max retries per logical operation (across replicas).
    max_retries: int = 6
    #: Total wall-clock budget for one logical operation (seconds); the
    #: deadline is propagated to servers in the request header.  ``None``
    #: derives a worst-case budget from the retry/backoff schedule so it
    #: never binds before the retry budget does.
    op_deadline_s: float | None = None
    #: Full-jitter retry backoff (delay ~ Uniform[0, base_delay]); disable
    #: for deterministic backoff schedules in tests/ablations.
    retry_jitter: bool = True
    #: Failure-detector algorithm: ``"phi"`` (RTT-adaptive accrual) or
    #: ``"count"`` (legacy consecutive-timeout counter, kept for ablation).
    failure_detector: str = "phi"
    #: Max suspicion units a single timeout may contribute in phi mode.
    suspicion_event_cap: float = 2.0
    #: Floor for the adaptive retransmission-timeout estimate used to
    #: scale suspicion contributions (seconds).
    rto_min_s: float = 0.002
    #: Circuit-breaker cooldown before a suspected-dead node is re-probed
    #: (half-open), doubling per consecutive re-open up to the max.
    breaker_cooldown_s: float = 0.5
    breaker_cooldown_max_s: float = 8.0
    #: Allow lookups to fail over to replicas when the owner sheds load
    #: (RETRY_LATER) — reads degrade to the bounded-staleness contract
    #: instead of erroring.
    degraded_reads: bool = True
    #: Server admission control: max concurrently-admitted client requests
    #: before new ones are shed with RETRY_LATER (0 = unbounded).
    max_inflight: int = 256

    # --- hot keys (Zipf skew) ----------------------------------------------
    #: Spread lookups of client-observed hot keys across the replica chain
    #: (primary + replicas, round-robin) instead of hammering the owner.
    #: Reads served off positions >= 2 fall under the same bounded-staleness
    #: contract as degraded reads; requires ``num_replicas`` > 0 to have
    #: any effect.
    hot_read_spread: bool = True
    #: Lookups of one key within the heat tracker's sliding window before
    #: the client treats it as hot.
    hot_key_threshold: int = 64
    #: Capacity of the per-client key-heat tracker (bounded LRU of access
    #: counters; the window over which hot_key_threshold is measured).
    hot_key_tracker_size: int = 512
    #: Client-side hot-key value cache capacity (entries).  0 disables the
    #: cache (default: caching trades read recency for owner offload and
    #: is only sound while reads tolerate ``hot_key_cache_ttl_s`` of
    #: staleness — the bounded-staleness contract).
    hot_key_cache_size: int = 0
    #: Max age of a served cache entry in seconds.  Cache hits count as
    #: bounded-stale reads: verify runs must use a staleness bound >= this
    #: TTL plus the async replication lag.
    hot_key_cache_ttl_s: float = 0.1

    # --- persistence (NoVoHT) --------------------------------------------
    #: Directory for NoVoHT WAL + checkpoint files; ``None`` = memory only.
    persistence_dir: str | None = None
    #: Checkpoint after this many logged mutations (NoVoHT "re-size rate"
    #: analogue for the log; 0 disables periodic checkpointing).
    checkpoint_interval_ops: int = 10_000
    #: Trigger WAL garbage collection when dead records exceed this
    #: fraction of the log.
    gc_dead_ratio: float = 0.5
    #: Maximum key/value sizes; ``None`` = unlimited (ZHT, unlike
    #: memcached, imposes no 250B/1MB limits).
    max_key_bytes: int | None = None
    max_value_bytes: int | None = None
    #: fsync the WAL on every commit.  Off by default (matching NoVoHT's
    #: benchmarked configuration); the group-commit benchmark turns it on
    #: to measure one-fsync-per-batch durability.
    wal_fsync: bool = False

    # --- networking -------------------------------------------------------
    #: "tcp", "udp", or "local" (in-process).
    transport: str = "tcp"
    #: LRU connection-cache capacity for TCP (0 = no connection caching,
    #: i.e. the paper's "TCP without connection caching" mode).
    connection_cache_size: int = 128
    #: Use the multiplexed TCP client (many in-flight requests per
    #: connection, matched by request id).  ``False`` falls back to the
    #: exclusive stop-and-wait client for ablation benchmarks; the
    #: fallback is also used when ``connection_cache_size`` is 0, since
    #: multiplexing only makes sense over cached connections.
    tcp_multiplex: bool = True
    #: Wire codec for TCP traffic: ``"fixed"`` (struct-packed fixed
    #: header, parsed zero-copy out of the receive buffer) or
    #: ``"varint"`` (the original protobuf-wire-format codec).  Decoders
    #: auto-detect per message, so a mixed cluster interoperates; set
    #: ``"varint"`` while rolling out against peers that predate the
    #: fixed codec.
    wire_codec: str = "fixed"

    # --- instances ---------------------------------------------------------
    #: ZHT instances per physical node (paper sweeps 1..8; 1 per core is
    #: reported to give the best utilisation).
    instances_per_node: int = 1
    #: Worker *processes* per node for
    #: :class:`~repro.net.shard.ShardedNodeServer` — each shard runs its
    #: own event loop over its own ZHT instance, store, and WAL, so one
    #: node saturates all cores
    #: (the paper's one-instance-per-core deployment, Figs. 13/14).
    num_shards: int = 1
    #: Accept on one shared port from every shard via ``SO_REUSEPORT``
    #: (kernel balances connections).  When the platform lacks it — or
    #: this is ``False`` — a single-listener dispatcher thread accepts
    #: and passes connection FDs to shards round-robin instead.
    reuse_port: bool = True
    #: Serve requests whose effects need no peer round trip entirely on
    #: the shard's event-loop thread (decode → apply → queue response; no
    #: executor submit).  ``False`` restores the selector→pool→selector
    #: hop for every request, kept for the server-architecture ablation.
    inline_fast_path: bool = True

    # --- consistency mutation modes (verification self-test ONLY) ----------
    #: TEST-ONLY: the owner acknowledges mutations *without* updating the
    #: strongly-consistent secondary (no sync send at all).  Breaks the
    #: paper's primary/secondary strong-consistency guarantee; exists so
    #: the consistency checker (:mod:`repro.verify`) can prove it detects
    #: exactly this failure class.  Never enable outside tests.
    test_skip_secondary_sync: bool = False
    #: TEST-ONLY: replicas at chain position >= 2 silently drop incoming
    #: replica updates, so async-replica reads become unboundedly stale.
    #: Exists to prove the bounded-staleness checker can fail.
    test_freeze_tail_replicas: bool = False

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.num_replicas < 0:
            raise ValueError("num_replicas must be >= 0")
        if self.replication_mode not in ReplicationMode.ALL:
            raise ValueError(
                f"replication_mode must be one of {ReplicationMode.ALL}"
            )
        if self.hash_name not in HASH_FUNCTIONS:
            raise ValueError(f"unknown hash function {self.hash_name!r}")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.op_deadline_s is not None and self.op_deadline_s <= 0:
            raise ValueError("op_deadline_s must be positive or None")
        if self.failure_detector not in ("phi", "count"):
            raise ValueError("failure_detector must be 'phi' or 'count'")
        if self.suspicion_event_cap < 1.0:
            raise ValueError("suspicion_event_cap must be >= 1.0")
        if self.rto_min_s <= 0:
            raise ValueError("rto_min_s must be positive")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")
        if self.breaker_cooldown_max_s < self.breaker_cooldown_s:
            raise ValueError(
                "breaker_cooldown_max_s must be >= breaker_cooldown_s"
            )
        if self.max_inflight < 0:
            raise ValueError("max_inflight must be >= 0")
        if self.hot_key_threshold <= 0:
            raise ValueError("hot_key_threshold must be positive")
        if self.hot_key_tracker_size <= 0:
            raise ValueError("hot_key_tracker_size must be positive")
        if self.hot_key_cache_size < 0:
            raise ValueError("hot_key_cache_size must be >= 0")
        if self.hot_key_cache_ttl_s <= 0:
            raise ValueError("hot_key_cache_ttl_s must be positive")
        if not 0.0 <= self.gc_dead_ratio <= 1.0:
            raise ValueError("gc_dead_ratio must be in [0, 1]")
        if self.transport not in ("tcp", "udp", "local"):
            raise ValueError("transport must be 'tcp', 'udp', or 'local'")
        if self.wire_codec not in ("fixed", "varint"):
            raise ValueError("wire_codec must be 'fixed' or 'varint'")
        if self.instances_per_node <= 0:
            raise ValueError("instances_per_node must be positive")
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")

    def replace(self, **changes: object) -> "ZHTConfig":
        """Return a copy of this config with *changes* applied."""
        return dataclasses.replace(self, **changes)


DEFAULT_CONFIG = ZHTConfig()
