"""Error types and wire-level status codes for ZHT.

The C++ ZHT returns integer status codes from every operation (0 for
success, non-zero with error information otherwise).  We mirror that on
the wire — every response message carries a :class:`Status` — and expose
idiomatic Python exceptions at the client API boundary.
"""

from __future__ import annotations

import enum


class Status(enum.IntEnum):
    """Wire-level status codes carried in every ZHT response.

    ``OK`` is zero, matching the paper's "Integer return values return 0
    for a successful operation, or a non-zero return code that includes
    information about the error that occurred."
    """

    OK = 0
    KEY_NOT_FOUND = 1
    #: The receiving instance no longer owns the partition; the response
    #: carries the new owner so the client can lazily refresh membership.
    REDIRECT = 2
    #: The partition is mid-migration; the request was queued (or, for a
    #: failed migration, dropped) — see §III.C "Data Migration".
    MIGRATING = 3
    #: The server rejected a malformed or unknown request.
    BAD_REQUEST = 4
    #: Value exceeds a configured maximum (used by the memcached baseline
    #: and by ZHT when a size cap is configured).
    VALUE_TOO_LARGE = 5
    KEY_TOO_LARGE = 6
    #: Internal persistence failure (NoVoHT WAL/checkpoint error).
    STORE_ERROR = 7
    #: Replication to the synchronous (secondary) replica failed.
    REPLICATION_ERROR = 8
    #: Node marked dead by failure detector.
    NODE_DEAD = 9
    #: Operation not supported by this store (e.g. append on memcached).
    UNSUPPORTED = 10
    #: Membership epoch in the request was newer than the server's view.
    STALE_SERVER = 11  # zht-lint: ignore[PROTO005] reserved: epoch-push (server behind client) is not implemented yet
    TIMEOUT = 12
    #: Admission control shed the request: the server's bounded in-flight
    #: queue is full.  An explicit overload signal — *not* a timeout — so
    #: clients back off (with jitter) instead of counting it against the
    #: failure detector.
    RETRY_LATER = 13
    #: The request's propagated deadline had already expired on arrival;
    #: the server refused to do dead work the client has given up on.
    DEADLINE_EXCEEDED = 14


class ZHTError(Exception):
    """Base class for all ZHT exceptions."""

    status: Status = Status.BAD_REQUEST

    def __init__(self, message: str = "", *, status: Status | None = None) -> None:
        super().__init__(message or self.__class__.__name__)
        if status is not None:
            self.status = status


class KeyNotFound(ZHTError, KeyError):
    """Raised by ``lookup``/``remove`` when the key does not exist."""

    status = Status.KEY_NOT_FOUND


class RequestTimeout(ZHTError, TimeoutError):
    """A request exhausted its retry/backoff budget without a response."""

    status = Status.TIMEOUT


class NodeDeadError(ZHTError):
    """All replicas for the key's partition are marked dead."""

    status = Status.NODE_DEAD


class ServerOverloaded(ZHTError):
    """The server shed the request under admission control (RETRY_LATER).

    Raised only after the client's retry/backoff budget is exhausted while
    the server keeps shedding; a single RETRY_LATER response is absorbed by
    the retry loop with full-jitter backoff.
    """

    status = Status.RETRY_LATER


class DeadlineExceeded(ZHTError, TimeoutError):
    """The operation's propagated deadline expired before it completed."""

    status = Status.DEADLINE_EXCEEDED


class ValueTooLarge(ZHTError, ValueError):
    status = Status.VALUE_TOO_LARGE


class KeyTooLarge(ZHTError, ValueError):
    status = Status.KEY_TOO_LARGE


class StoreError(ZHTError):
    """Persistence-layer failure (WAL write, checkpoint, recovery)."""

    status = Status.STORE_ERROR


class ReplicationError(ZHTError):
    status = Status.REPLICATION_ERROR


class UnsupportedOperation(ZHTError, NotImplementedError):
    status = Status.UNSUPPORTED


class MembershipError(ZHTError):
    """Invalid membership transition (e.g. duplicate join, unknown node)."""


class MigrationError(ZHTError):
    """Partition migration failed; system rolled back to consistent state."""

    status = Status.MIGRATING


class ProtocolError(ZHTError):
    """Malformed wire message."""

    status = Status.BAD_REQUEST


#: Map wire statuses to the exception types a client should raise.
STATUS_TO_EXCEPTION: dict[Status, type[ZHTError]] = {
    Status.KEY_NOT_FOUND: KeyNotFound,
    Status.VALUE_TOO_LARGE: ValueTooLarge,
    Status.KEY_TOO_LARGE: KeyTooLarge,
    Status.STORE_ERROR: StoreError,
    Status.REPLICATION_ERROR: ReplicationError,
    Status.NODE_DEAD: NodeDeadError,
    Status.UNSUPPORTED: UnsupportedOperation,
    Status.TIMEOUT: RequestTimeout,
    Status.BAD_REQUEST: ProtocolError,
    Status.RETRY_LATER: ServerOverloaded,
    Status.DEADLINE_EXCEEDED: DeadlineExceeded,
}

#: Statuses that are pure client-side control flow: the retry loop consumes
#: them (re-route, wait, fail over) and they must never surface to callers
#: via :func:`raise_for_status`.
CONTROL_FLOW_STATUSES: frozenset[Status] = frozenset(
    {Status.REDIRECT, Status.MIGRATING}
)


def raise_for_status(status: Status, message: str = "") -> None:
    """Raise the canonical exception for a non-OK *status*.

    ``REDIRECT`` and ``MIGRATING`` are control-flow statuses handled inside
    the client retry loop and are never surfaced; passing them here is a
    programming error and raises :class:`ProtocolError`.
    """
    if status == Status.OK:
        return
    if status in CONTROL_FLOW_STATUSES:
        raise ProtocolError(
            f"control-flow status {status.name} leaked past the retry loop",
            status=status,
        )
    exc = STATUS_TO_EXCEPTION.get(status, ProtocolError)
    raise exc(message or status.name, status=status)
