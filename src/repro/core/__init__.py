"""ZHT core: the paper's primary contribution, sans I/O.

Everything here is transport- and clock-agnostic; the real runtime
(:mod:`repro.net`) and the discrete-event simulator (:mod:`repro.sim`)
both execute these state machines.
"""

from .config import ReplicationMode, ZHTConfig
from .errors import (
    KeyNotFound,
    MembershipError,
    MigrationError,
    NodeDeadError,
    ProtocolError,
    ReplicationError,
    RequestTimeout,
    Status,
    StoreError,
    UnsupportedOperation,
    ValueTooLarge,
    ZHTError,
)
from .hashing import (
    HASH_FUNCTIONS,
    fnv1a_32,
    fnv1a_64,
    jenkins_64,
    jenkins_lookup3,
    partition_of,
    ring_position,
)
from .client import Attempt, ClientStats, OpDriver, OpState, ZHTClientCore
from .manager import ManagerCore, MigrationReport, PeerCall
from .membership import (
    Address,
    InstanceInfo,
    MembershipTable,
    NodeInfo,
    new_instance_id,
)
from .partition import Partition, PartitionState, QueuedRequest
from .protocol import OpCode, Request, Response, frame, deframe
from .server import HandleResult, ServerStats, ZHTServerCore

__all__ = [
    "Address",
    "Attempt",
    "ClientStats",
    "HandleResult",
    "HASH_FUNCTIONS",
    "InstanceInfo",
    "KeyNotFound",
    "ManagerCore",
    "MembershipError",
    "MembershipTable",
    "MigrationError",
    "MigrationReport",
    "NodeDeadError",
    "NodeInfo",
    "OpCode",
    "OpDriver",
    "OpState",
    "Partition",
    "PartitionState",
    "PeerCall",
    "ProtocolError",
    "QueuedRequest",
    "ReplicationError",
    "ReplicationMode",
    "Request",
    "RequestTimeout",
    "Response",
    "ServerStats",
    "Status",
    "StoreError",
    "UnsupportedOperation",
    "ValueTooLarge",
    "ZHTClientCore",
    "ZHTConfig",
    "ZHTError",
    "ZHTServerCore",
    "deframe",
    "fnv1a_32",
    "fnv1a_64",
    "frame",
    "jenkins_64",
    "jenkins_lookup3",
    "new_instance_id",
    "partition_of",
    "ring_position",
]
