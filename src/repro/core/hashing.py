"""Hash functions used to place keys on the ZHT ring.

The paper (§III.E) explores Bob Jenkins' and FNV hash functions "due to
their relatively simple implementation, consistency across different data
types (especially strings), and the promise of efficient performance".
Both are implemented here from their published specifications, plus the
ring-placement helper that maps a key to a 64-bit ID-space index.

All functions accept ``bytes`` or ``str`` (encoded UTF-8) and are pure.
"""

from __future__ import annotations

from typing import Callable, Union

Key = Union[str, bytes]

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Size of the ZHT ID space: "The entire name space N (a 64-bit integer)".
ID_SPACE_BITS = 64
ID_SPACE = 1 << ID_SPACE_BITS


def _as_bytes(key: Key) -> bytes:
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, (bytes, bytearray, memoryview)):
        return bytes(key)
    raise TypeError(f"key must be str or bytes, got {type(key).__name__}")


# ---------------------------------------------------------------------------
# FNV-1a (Fowler–Noll–Vo), 32- and 64-bit variants.
# Reference: http://www.isthe.com/chongo/tech/comp/fnv/
# ---------------------------------------------------------------------------

FNV32_OFFSET = 0x811C9DC5
FNV32_PRIME = 0x01000193
FNV64_OFFSET = 0xCBF29CE484222325
FNV64_PRIME = 0x100000001B3


def fnv1a_32(key: Key) -> int:
    """32-bit FNV-1a hash."""
    h = FNV32_OFFSET
    for b in _as_bytes(key):
        h ^= b
        h = (h * FNV32_PRIME) & _MASK32
    return h


def fnv1a_64(key: Key) -> int:
    """64-bit FNV-1a hash (ZHT's default ring hash)."""
    h = FNV64_OFFSET
    for b in _as_bytes(key):
        h ^= b
        h = (h * FNV64_PRIME) & _MASK64
    return h


# ---------------------------------------------------------------------------
# Bob Jenkins' lookup3 (hashlittle), the "Bob Jenkins hash" of the paper.
# Reference: Bob Jenkins, "Hash functions for hash table lookup" (2006),
# http://burtleburtle.net/bob/c/lookup3.c
# ---------------------------------------------------------------------------


def _rot(x: int, k: int) -> int:
    return ((x << k) | (x >> (32 - k))) & _MASK32


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    a = (a - c) & _MASK32; a ^= _rot(c, 4); c = (c + b) & _MASK32
    b = (b - a) & _MASK32; b ^= _rot(a, 6); a = (a + c) & _MASK32
    c = (c - b) & _MASK32; c ^= _rot(b, 8); b = (b + a) & _MASK32
    a = (a - c) & _MASK32; a ^= _rot(c, 16); c = (c + b) & _MASK32
    b = (b - a) & _MASK32; b ^= _rot(a, 19); a = (a + c) & _MASK32
    c = (c - b) & _MASK32; c ^= _rot(b, 4); b = (b + a) & _MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> tuple[int, int, int]:
    c ^= b; c = (c - _rot(b, 14)) & _MASK32
    a ^= c; a = (a - _rot(c, 11)) & _MASK32
    b ^= a; b = (b - _rot(a, 25)) & _MASK32
    c ^= b; c = (c - _rot(b, 16)) & _MASK32
    a ^= c; a = (a - _rot(c, 4)) & _MASK32
    b ^= a; b = (b - _rot(a, 14)) & _MASK32
    c ^= b; c = (c - _rot(b, 24)) & _MASK32
    return a, b, c


def jenkins_lookup3(key: Key, initval: int = 0) -> int:
    """Bob Jenkins' lookup3 ``hashlittle`` over *key*, returning 32 bits."""
    data = _as_bytes(key)
    length = len(data)
    a = b = c = (0xDEADBEEF + length + initval) & _MASK32

    offset = 0
    while length > 12:
        a = (a + int.from_bytes(data[offset : offset + 4], "little")) & _MASK32
        b = (b + int.from_bytes(data[offset + 4 : offset + 8], "little")) & _MASK32
        c = (c + int.from_bytes(data[offset + 8 : offset + 12], "little")) & _MASK32
        a, b, c = _mix(a, b, c)
        offset += 12
        length -= 12

    tail = data[offset:]
    if not tail:
        return c
    # Pad the ≤12-byte tail with zeros, matching lookup3's byte-wise cases.
    tail = tail + b"\x00" * (12 - len(tail))
    a = (a + int.from_bytes(tail[0:4], "little")) & _MASK32
    b = (b + int.from_bytes(tail[4:8], "little")) & _MASK32
    c = (c + int.from_bytes(tail[8:12], "little")) & _MASK32
    a, b, c = _final(a, b, c)
    return c


def jenkins_64(key: Key) -> int:
    """64-bit hash built from two lookup3 passes with distinct seeds."""
    lo = jenkins_lookup3(key, 0)
    hi = jenkins_lookup3(key, 0x9E3779B9)
    return (hi << 32) | lo


# ---------------------------------------------------------------------------
# Ring placement
# ---------------------------------------------------------------------------

HashFunction = Callable[[Key], int]

HASH_FUNCTIONS: dict[str, HashFunction] = {
    "fnv1a_64": fnv1a_64,
    "fnv1a_32": fnv1a_32,
    "jenkins_64": jenkins_64,
    "jenkins_32": jenkins_lookup3,
}

DEFAULT_HASH = "fnv1a_64"


def get_hash_function(name: str) -> HashFunction:
    """Look up a registered hash function by name.

    ZHT's hash is "customizable"; registering project-specific functions in
    :data:`HASH_FUNCTIONS` makes them usable by name from
    :class:`~repro.core.config.ZHTConfig`.
    """
    try:
        return HASH_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown hash function {name!r}; available: {sorted(HASH_FUNCTIONS)}"
        ) from None


def fmix64(h: int) -> int:
    """MurmurHash3's 64-bit avalanche finalizer.

    FNV-1a diffuses trailing-byte differences only into its low bits (the
    last input byte is multiplied by the prime just once), so using raw
    FNV output as a ring position piles keys with common prefixes into a
    few partitions.  Finalizing with fmix64 gives every output bit ~50%
    flip probability — the "avalanche effect" the paper lists among its
    hash-function requirements (§III.E).
    """
    h &= _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK64
    h ^= h >> 33
    return h


def ring_position(key: Key, hash_name: str = DEFAULT_HASH) -> int:
    """Map *key* to its position in the 64-bit ID space.

    The configured hash is finalized with :func:`fmix64` so positions are
    uniform regardless of the base function's diffusion quality.
    """
    return fmix64(get_hash_function(hash_name)(key))


def partition_of(key: Key, num_partitions: int, hash_name: str = DEFAULT_HASH) -> int:
    """Map *key* to a partition index in ``[0, num_partitions)``.

    Partitions are contiguous, equal ranges of the 64-bit ring ("The entire
    name space N ... is evenly distributed into n partitions"), so the
    partition index is the high bits of the ring position.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return ring_position(key, hash_name) * num_partitions >> ID_SPACE_BITS
