"""ZHT server core — transport-agnostic request handling.

This module is deliberately **sans-I/O**: :class:`ZHTServerCore` maps an
incoming :class:`~repro.core.protocol.Request` to a
:class:`HandleResult` describing the local response plus any outbound
server-to-server traffic (replica updates, forwarded queued requests).
The real event-driven runtime (:mod:`repro.net`) and the discrete-event
simulator (:mod:`repro.sim`) both wrap this same core, so protocol
semantics are implemented — and tested — exactly once.

Request handling implements the paper's semantics:

* zero-hop ownership check with ``REDIRECT`` + piggybacked membership for
  stale clients (lazy client update, §III.C "Client Side State");
* queuing of requests against migrating partitions (§III.C "Data
  Migration");
* replica chains with a strongly-consistent secondary and asynchronous
  further replicas (§III.J "Consistency");
* replica-side reads/writes for failover ("queries asking for data that
  were on the failed node will be answered by the replicas", §III.H).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..novoht import NoVoHT
from .config import ReplicationMode, ZHTConfig
from .errors import KeyNotFound, Status, ZHTError
from .membership import Address, InstanceInfo, MembershipTable
from .partition import Partition, QueuedRequest
from .protocol import MUTATING_OPS, OpCode, Request, Response


@dataclass
class ServerStats:
    """Per-instance operation counters."""

    inserts: int = 0
    lookups: int = 0
    removes: int = 0
    appends: int = 0
    redirects: int = 0
    queued: int = 0
    replica_updates: int = 0
    migrations_in: int = 0
    migrations_out: int = 0
    membership_updates: int = 0

    def total_client_ops(self) -> int:
        return self.inserts + self.lookups + self.removes + self.appends


@dataclass
class HandleResult:
    """Outcome of handling one request.

    ``response`` is ``None`` when the request was queued behind a
    migration — the transport must remember the requester and answer when
    the queue drains (via ``forwards`` of a later commit/abort).
    """

    response: Response | None
    #: Replica updates that must be acknowledged *before* the response is
    #: released to the client (the strongly-consistent secondary, plus all
    #: replicas in SYNC mode).
    sync_sends: list[tuple[Address, Request]] = field(default_factory=list)
    #: Fire-and-forget replica updates (asynchronous replicas).
    async_sends: list[tuple[Address, Request]] = field(default_factory=list)
    #: Queued client requests to forward to a partition's new owner after
    #: a migration commit.
    forwards: list[tuple[Address, QueuedRequest]] = field(default_factory=list)
    #: Queued requests to fail (answered with MIGRATING) after an abort.
    failed_queued: list[QueuedRequest] = field(default_factory=list)


class ZHTServerCore:
    """State machine for one ZHT instance.

    Parameters
    ----------
    info:
        This instance's identity/address in the membership table.
    membership:
        The instance's (mutable) view of the membership table.
    config:
        Deployment configuration.
    """

    def __init__(
        self,
        info: InstanceInfo,
        membership: MembershipTable,
        config: ZHTConfig | None = None,
    ):
        self.info = info
        self.membership = membership
        self.config = config or ZHTConfig()
        self.partitions: dict[int, Partition] = {}
        self.stats = ServerStats()
        #: Node-local store for broadcast pairs (every instance holds a
        #: full copy of broadcast data; it is outside the partition space).
        self.broadcast_store = NoVoHT(None)

    # ------------------------------------------------------------------
    # Partition access
    # ------------------------------------------------------------------

    def partition(self, pid: int) -> Partition:
        """The local :class:`Partition` for *pid*, created lazily.

        Replica data for partitions this instance does not own lives in
        the same per-pid stores; ownership is a membership-table property,
        not a storage one (which is what makes migration "moving a file").
        """
        part = self.partitions.get(pid)
        if part is None:
            cfg = self.config
            pdir = (
                f"{cfg.persistence_dir}/instance-{self.info.instance_id[:8]}"
                if cfg.persistence_dir
                else None
            )
            part = Partition(
                pid,
                persistence_dir=pdir,
                checkpoint_interval_ops=cfg.checkpoint_interval_ops,
                gc_dead_ratio=cfg.gc_dead_ratio,
            )
            self.partitions[pid] = part
        return part

    def owns(self, pid: int) -> bool:
        return self.membership.partition_owner[pid] == self.info.instance_id

    def owned_partitions(self) -> list[int]:
        return self.membership.partitions_of_instance(self.info.instance_id)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def handle(self, request: Request, reply_context: object = None) -> HandleResult:
        """Process one request; never raises for protocol-level errors."""
        op = request.op
        if op in (OpCode.INSERT, OpCode.LOOKUP, OpCode.REMOVE, OpCode.APPEND):
            return self._handle_client_op(request, reply_context)
        if op == OpCode.REPLICA_UPDATE:
            return self._handle_replica_update(request)
        if op == OpCode.MIGRATE_BEGIN:
            return self._handle_migrate_begin(request)
        if op == OpCode.MIGRATE_DATA:
            return self._handle_migrate_data(request)
        if op == OpCode.MIGRATE_COMMIT:
            return self._handle_migrate_commit(request)
        if op == OpCode.MEMBERSHIP_UPDATE:
            return self._handle_membership_update(request)
        if op == OpCode.GET_MEMBERSHIP:
            return HandleResult(self._respond(request, Status.OK, membership=True))
        if op == OpCode.BROADCAST:
            return self._handle_broadcast(request)
        if op == OpCode.LOOKUP_LOCAL:
            return self._handle_lookup_local(request)
        if op == OpCode.PING:
            return HandleResult(self._respond(request, Status.OK))
        return HandleResult(self._respond(request, Status.BAD_REQUEST))

    # ------------------------------------------------------------------
    # Broadcast (§VI future work: spanning-tree dissemination)
    # ------------------------------------------------------------------

    def _handle_broadcast(self, request: Request) -> HandleResult:
        from .broadcast import decode_subtree, encode_subtree, split_subtree

        self.broadcast_store.put(request.key, request.value)
        result = HandleResult(self._respond(request, Status.OK))
        subtree = decode_subtree(request.payload)
        # The payload lists this instance's subtree (self first); forward
        # to each child subtree's head, fire-and-forget.
        for child in split_subtree(subtree):
            result.async_sends.append(
                (
                    child[0],
                    Request(
                        op=OpCode.BROADCAST,
                        key=request.key,
                        value=request.value,
                        request_id=request.request_id,
                        epoch=self.membership.epoch,
                        payload=encode_subtree(child),
                    ),
                )
            )
        return result

    def _handle_lookup_local(self, request: Request) -> HandleResult:
        try:
            value = self.broadcast_store.get(request.key)
        except KeyNotFound:
            return HandleResult(self._respond(request, Status.KEY_NOT_FOUND))
        return HandleResult(self._respond(request, Status.OK, value=value))

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def _handle_client_op(
        self, request: Request, reply_context: object
    ) -> HandleResult:
        pid = self.membership.partition_of_key(request.key, self.config.hash_name)

        # Failover requests (replica_index > 0) target this instance as a
        # replica; skip the ownership redirect and serve from replica data.
        if request.replica_index == 0 and not self.owns(pid):
            self.stats.redirects += 1
            try:
                owner = self.membership.owner_of_partition(pid)
                redirect = str(owner.address).encode()
            except ZHTError:
                redirect = b""
            return HandleResult(
                self._respond(
                    request, Status.REDIRECT, redirect=redirect, membership=True
                )
            )

        part = self.partition(pid)
        if part.is_migrating:
            # Queue everything (reads included): partition state is locked.
            part.queue_request(QueuedRequest(request, reply_context))
            self.stats.queued += 1
            return HandleResult(None)

        response = self._apply_to_store(request, part.store)
        result = HandleResult(response)
        if (
            response.status == Status.OK
            and request.op in MUTATING_OPS
            and self.config.num_replicas > 0
            and (self.owns(pid) or request.replica_index > 0)
        ):
            # The owner fans out along the chain as usual; this also covers
            # failover-addressed writes (replica_index > 0) arriving after
            # a repair promoted us.  A *replica* serving a failover write
            # back-propagates it to the rest of the chain — including the
            # owner, which is either dead (the send blackholes) or falsely
            # suspected by the client (the send keeps it authoritative).
            self._plan_replication(request, pid, result)
        return result

    def _apply_to_store(self, request: Request, store: NoVoHT) -> Response:
        op = request.op
        try:
            if op == OpCode.INSERT:
                self._check_limits(request)
                store.put(request.key, request.value)
                self.stats.inserts += 1
                return self._respond(request, Status.OK)
            if op == OpCode.LOOKUP:
                value = store.get(request.key)
                self.stats.lookups += 1
                return self._respond(request, Status.OK, value=value)
            if op == OpCode.REMOVE:
                store.remove(request.key)
                self.stats.removes += 1
                return self._respond(request, Status.OK)
            if op == OpCode.APPEND:
                self._check_limits(request)
                store.append(request.key, request.value)
                self.stats.appends += 1
                return self._respond(request, Status.OK)
        except KeyNotFound:
            return self._respond(request, Status.KEY_NOT_FOUND)
        except ZHTError as exc:
            return self._respond(request, exc.status)
        return self._respond(request, Status.BAD_REQUEST)

    def _check_limits(self, request: Request) -> None:
        cfg = self.config
        if cfg.max_key_bytes is not None and len(request.key) > cfg.max_key_bytes:
            raise ZHTError("key too large", status=Status.KEY_TOO_LARGE)
        if (
            cfg.max_value_bytes is not None
            and len(request.value) > cfg.max_value_bytes
        ):
            raise ZHTError("value too large", status=Status.VALUE_TOO_LARGE)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def _plan_replication(
        self, request: Request, pid: int, result: HandleResult
    ) -> None:
        """Fan the mutation out along the replica chain.

        Chain position 1 (the secondary) is synchronous in ASYNC mode —
        "The ZHT primary replica and secondary replica are strongly
        consistent, other replicas are asynchronously updated".  SYNC mode
        makes every replica synchronous (Figure 12's counterfactual);
        NONE makes every replica fire-and-forget.

        When the serving instance is *not* the chain head (a replica
        accepting a client failover write), every send — the owner's
        included — is fire-and-forget: the owner may well be dead, and a
        synchronous wait on it would stall every failover write.
        """
        chain = self.membership.replicas_for_partition(pid, self.config.num_replicas)
        mode = self.config.replication_mode
        is_owner = self.owns(pid)
        for index, inst in enumerate(chain):
            if inst.instance_id == self.info.instance_id:
                continue
            update = Request(
                op=OpCode.REPLICA_UPDATE,
                key=request.key,
                value=request.value,
                request_id=request.request_id,
                epoch=self.membership.epoch,
                partition=pid,
                replica_index=index,
                inner_op=int(request.op),
            )
            if is_owner and (
                mode == ReplicationMode.SYNC
                or (mode == ReplicationMode.ASYNC and index == 1)
            ):
                result.sync_sends.append((inst.address, update))
            else:
                result.async_sends.append((inst.address, update))

    def _handle_replica_update(self, request: Request) -> HandleResult:
        try:
            inner = OpCode(request.inner_op)
        except ValueError:
            return HandleResult(self._respond(request, Status.BAD_REQUEST))
        part = self.partition(request.partition)
        inner_request = Request(
            op=inner,
            key=request.key,
            value=request.value,
            request_id=request.request_id,
        )
        response = self._apply_to_store(inner_request, part.store)
        self.stats.replica_updates += 1
        # A REMOVE racing ahead of its INSERT on an async replica is not an
        # error at the replication layer; report OK so chains don't wedge.
        if response.status == Status.KEY_NOT_FOUND:
            response.status = Status.OK
        return HandleResult(response)

    # ------------------------------------------------------------------
    # Migration (server side; orchestrated by the manager)
    # ------------------------------------------------------------------

    def _handle_migrate_begin(self, request: Request) -> HandleResult:
        part = self.partition(request.partition)
        try:
            part.begin_migration()
        except ZHTError as exc:
            return HandleResult(self._respond(request, exc.status))
        self.stats.migrations_out += 1
        return HandleResult(
            self._respond(request, Status.OK, value=part.export_bytes())
        )

    def _handle_migrate_data(self, request: Request) -> HandleResult:
        part = self.partition(request.partition)
        try:
            part.import_bytes(request.value)
        except ZHTError as exc:
            return HandleResult(self._respond(request, exc.status))
        self.stats.migrations_in += 1
        return HandleResult(self._respond(request, Status.OK))

    def _handle_migrate_commit(self, request: Request) -> HandleResult:
        part = self.partition(request.partition)
        commit = request.value == b"commit"
        try:
            if commit:
                queued = part.commit_migration()
            else:
                queued = part.abort_migration()
        except ZHTError as exc:
            return HandleResult(self._respond(request, exc.status))
        result = HandleResult(self._respond(request, Status.OK))
        if commit:
            # Forward the parked requests to the new owner, named in the
            # request payload as "host:port".
            host, _, port = request.payload.decode().rpartition(":")
            new_owner = Address(host, int(port))
            result.forwards = [(new_owner, item) for item in queued]
        else:
            result.failed_queued = queued
        return result

    def _handle_membership_update(self, request: Request) -> HandleResult:
        try:
            table = MembershipTable.from_bytes(request.payload)
        except ZHTError as exc:
            return HandleResult(self._respond(request, exc.status))
        if self.membership.maybe_adopt(table):
            self.stats.membership_updates += 1
        return HandleResult(self._respond(request, Status.OK))

    # ------------------------------------------------------------------
    # Response construction
    # ------------------------------------------------------------------

    def _respond(
        self,
        request: Request,
        status: Status,
        *,
        value: bytes = b"",
        redirect: bytes = b"",
        membership: bool = False,
    ) -> Response:
        # Lazy membership propagation: any client whose epoch is behind
        # ours gets the current table piggybacked on the response.
        stale_client = request.epoch and request.epoch < self.membership.epoch
        payload = (
            self.membership.to_bytes() if (membership or stale_client) else b""
        )
        return Response(
            status=status,
            value=value,
            request_id=request.request_id,
            epoch=self.membership.epoch,
            redirect=redirect,
            membership=payload,
        )

    def close(self) -> None:
        for part in self.partitions.values():
            part.close()
        self.broadcast_store.close()
