"""ZHT server core — transport-agnostic request handling.

This module is deliberately **sans-I/O**: :class:`ZHTServerCore` maps an
incoming :class:`~repro.core.protocol.Request` to a
:class:`HandleResult` describing the local response plus any outbound
server-to-server traffic (replica updates, forwarded queued requests).
The real event-driven runtime (:mod:`repro.net`) and the discrete-event
simulator (:mod:`repro.sim`) both wrap this same core, so protocol
semantics are implemented — and tested — exactly once.

Request handling implements the paper's semantics:

* zero-hop ownership check with ``REDIRECT`` + piggybacked membership for
  stale clients (lazy client update, §III.C "Client Side State");
* queuing of requests against migrating partitions (§III.C "Data
  Migration");
* replica chains with a strongly-consistent secondary and asynchronous
  further replicas (§III.J "Consistency");
* replica-side reads/writes for failover ("queries asking for data that
  were on the failed node will be answered by the replicas", §III.H).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..novoht import NoVoHT
from ..obs import REGISTRY, PartitionLoadTracker, metrics_snapshot
from .config import ReplicationMode, ZHTConfig
from .errors import KeyNotFound, Status, ZHTError
from .membership import Address, InstanceInfo, MembershipTable
from .partition import Partition, QueuedRequest
from .protocol import (
    MUTATING_OPS,
    OpCode,
    Request,
    Response,
    decode_batch_requests,
    encode_batch_requests,
    encode_batch_responses,
)


class ServerStats:
    """Per-instance operation counters, mirrored into the process
    registry (``server.*``).

    The thread-per-request server architecture mutates these from many
    threads, so increments are lock-guarded.
    """

    FIELDS = (
        "inserts",
        "lookups",
        "removes",
        "appends",
        "batches",
        "redirects",
        "queued",
        "replica_updates",
        "migrations_in",
        "migrations_out",
        "membership_updates",
        #: Requests shed on arrival because their propagated deadline had
        #: already expired (doing the work would be wasted effort).
        "shed_expired",
        #: Requests shed with RETRY_LATER because the bounded in-flight
        #: admission queue was full.
        "shed_overload",
    )

    __slots__ = FIELDS + ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def inc(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + n)
        REGISTRY.counter(f"server.{field}").inc(n)

    def total_client_ops(self) -> int:
        with self._lock:
            return self.inserts + self.lookups + self.removes + self.appends

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ServerStats({body})"


class ReplicationSequencer:
    """Server-wide FIFO release order for outgoing replica updates.

    A mutation's store apply and its ticket grab happen inside the same
    store critical section, so per partition the ticket order equals the
    apply order; transports then release each result's replica sends in
    ticket order.  Without this, concurrent mutations applied A-then-B by
    the primary can reach the secondary B-then-A (the sends run on
    whatever thread finishes planning first), and a failover that
    promotes the secondary surfaces the divergence as a non-linearizable
    history — concurrent appends are where it bites, since their replica
    updates carry deltas whose arrival order IS the replica's value.

    ``wait_turn`` times out rather than wedging the chain: if an earlier
    ticket's sends stall past the peer timeout, later sends proceed
    unordered (the stalled peer is about to be declared dead anyway).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._next = 0  # guarded-by: _cond
        self._served = 0  # guarded-by: _cond
        self._retired: set[int] = set()  # guarded-by: _cond

    def ticket(self) -> int:
        with self._cond:
            t = self._next
            self._next += 1
            return t

    def reticket(self, old: int | None) -> int:
        """Trade *old* for a fresh (later) ticket.

        Used by multi-partition batches: each mutating partition group
        re-tickets under that group's store lock, so the result's final
        ticket is ordered after every concurrent mutation of every
        partition the batch touched, while never holding more than one
        live ticket (which keeps the release order deadlock-free).
        """
        fresh = self.ticket()
        if old is not None:
            self.retire(old)
        return fresh

    def wait_turn(self, ticket: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._served < ticket:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                self._cond.wait(remaining)

    def retire(self, ticket: int) -> None:
        with self._cond:
            self._retired.add(ticket)
            while self._served in self._retired:
                self._retired.remove(self._served)
                self._served += 1
            self._cond.notify_all()


@dataclass
class HandleResult:
    """Outcome of handling one request.

    ``response`` is ``None`` when the request was queued behind a
    migration — the transport must remember the requester and answer when
    the queue drains (via ``forwards`` of a later commit/abort).
    """

    response: Response | None
    #: Replica updates that must be acknowledged *before* the response is
    #: released to the client (the strongly-consistent secondary, plus all
    #: replicas in SYNC mode).
    sync_sends: list[tuple[Address, Request]] = field(default_factory=list)
    #: Fire-and-forget replica updates (asynchronous replicas).
    async_sends: list[tuple[Address, Request]] = field(default_factory=list)
    #: Queued client requests to forward to a partition's new owner after
    #: a migration commit.
    forwards: list[tuple[Address, QueuedRequest]] = field(default_factory=list)
    #: Queued requests to fail (answered with MIGRATING) after an abort.
    failed_queued: list[QueuedRequest] = field(default_factory=list)
    #: When set, the transport must release this result's replica sends
    #: in ticket order (and retire the ticket afterwards, even if no
    #: sends were planned).
    repl_sequencer: ReplicationSequencer | None = None
    repl_ticket: int | None = None


class ZHTServerCore:
    """State machine for one ZHT instance.

    Parameters
    ----------
    info:
        This instance's identity/address in the membership table.
    membership:
        The instance's (mutable) view of the membership table.
    config:
        Deployment configuration.
    """

    def __init__(
        self,
        info: InstanceInfo,
        membership: MembershipTable,
        config: ZHTConfig | None = None,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.info = info
        self.membership = membership
        self.config = config or ZHTConfig()
        self.partitions: dict[int, Partition] = {}
        self.stats = ServerStats()
        self.repl_sequencer = ReplicationSequencer()
        #: Wall-clock source for deadline checks (simulator injects its
        #: virtual clock).
        self.clock = clock
        #: Client requests currently admitted (between admission and the
        #: end of dispatch); bounded by ``config.max_inflight``.
        self._inflight = 0  # guarded-by: _inflight_lock
        self._inflight_lock = threading.Lock()
        #: Optional extra load source counted against the admission bound —
        #: event-driven transports report queued-but-not-yet-dispatched
        #: work here so backpressure sees the true backlog, not just the
        #: requests inside ``handle``.
        self.extra_inflight: Callable[[], int] | None = None
        #: Node-local store for broadcast pairs (every instance holds a
        #: full copy of broadcast data; it is outside the partition space).
        self.broadcast_store = NoVoHT(None)
        #: Per-partition request accounting; surfaced via the STATS op so
        #: operators can see Zipf hot partitions (rate + imbalance ratio).
        self.partition_load = PartitionLoadTracker()
        #: Set by event-driven transports: store maintenance (checkpoint,
        #: WAL GC) hops through this submit callable instead of running
        #: on the thread that tripped the threshold — see
        #: :meth:`set_maintenance_executor`.
        self._maint_submit: Callable[[Callable[[], None]], object] | None = None

    # ------------------------------------------------------------------
    # Partition access
    # ------------------------------------------------------------------

    def partition(self, pid: int) -> Partition:
        """The local :class:`Partition` for *pid*, created lazily.

        Replica data for partitions this instance does not own lives in
        the same per-pid stores; ownership is a membership-table property,
        not a storage one (which is what makes migration "moving a file").
        """
        part = self.partitions.get(pid)
        if part is None:
            cfg = self.config
            pdir = (
                f"{cfg.persistence_dir}/instance-{self.info.instance_id[:8]}"
                if cfg.persistence_dir
                else None
            )
            part = Partition(
                pid,
                persistence_dir=pdir,
                checkpoint_interval_ops=cfg.checkpoint_interval_ops,
                gc_dead_ratio=cfg.gc_dead_ratio,
                fsync=cfg.wal_fsync,
            )
            if self._maint_submit is not None:
                part.store.set_maintenance_executor(self._maint_submit)
            self.partitions[pid] = part
        return part

    def set_maintenance_executor(
        self, submit: "Callable[[Callable[[], None]], object] | None"
    ) -> None:
        """Route every store's maintenance passes through *submit*.

        An event-loop transport applies mutations inline on its selector
        thread; a checkpoint tripped there would serialize and fsync the
        whole table on the loop.  Applies to current partitions and to
        any created later.
        """
        self._maint_submit = submit
        for part in self.partitions.values():
            part.store.set_maintenance_executor(submit)
        self.broadcast_store.set_maintenance_executor(submit)

    def owns(self, pid: int) -> bool:
        return self.membership.partition_owner[pid] == self.info.instance_id

    def owned_partitions(self) -> list[int]:
        return self.membership.partitions_of_instance(self.info.instance_id)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    #: Ops subject to admission control.  Server-to-server traffic
    #: (replica updates, migration, membership, probes) must never be
    #: shed: dropping a replica update breaks the consistency contract,
    #: and shedding PING would make overload look like death.
    _ADMITTED_OPS = frozenset(
        {OpCode.INSERT, OpCode.LOOKUP, OpCode.REMOVE, OpCode.APPEND, OpCode.BATCH}
    )

    def handle(self, request: Request, reply_context: object = None) -> HandleResult:
        """Process one request; never raises for protocol-level errors."""
        with REGISTRY.span("server.handle"):
            shed = self._admission_shed(request)
            if shed is not None:
                return HandleResult(shed)
            admitted = request.op in self._ADMITTED_OPS
            if admitted:
                with self._inflight_lock:
                    self._inflight += 1
            try:
                return self._dispatch(request, reply_context)
            finally:
                if admitted:
                    with self._inflight_lock:
                        self._inflight -= 1

    def _admission_shed(self, request: Request) -> Response | None:
        """Deadline + overload admission check for client ops.

        Returns the shed :class:`Response` (DEADLINE_EXCEEDED or
        RETRY_LATER), or ``None`` to admit.  Shed responses are built
        directly — no membership piggyback, no store access — so the shed
        path stays O(1) no matter how overloaded the server is.
        """
        if request.op not in self._ADMITTED_OPS:
            return None
        if request.deadline_us and self.clock() * 1e6 > request.deadline_us:
            self.stats.inc("shed_expired")
            return Response(
                status=Status.DEADLINE_EXCEEDED,
                request_id=request.request_id,
                epoch=self.membership.epoch,
                op=int(request.op),
            )
        limit = self.config.max_inflight
        if limit:
            backlog = self._inflight  # zht-lint: ignore[LOCK001] GIL-atomic int read; admission is advisory
            if self.extra_inflight is not None:
                backlog += self.extra_inflight()
            if backlog >= limit:
                self.stats.inc("shed_overload")
                return Response(
                    status=Status.RETRY_LATER,
                    request_id=request.request_id,
                    epoch=self.membership.epoch,
                    op=int(request.op),
                )
        return None

    def _dispatch(
        self, request: Request, reply_context: object
    ) -> HandleResult:
        op = request.op
        if op in (OpCode.INSERT, OpCode.LOOKUP, OpCode.REMOVE, OpCode.APPEND):
            return self._handle_client_op(request, reply_context)
        if op == OpCode.REPLICA_UPDATE:
            return self._handle_replica_update(request)
        if op == OpCode.MIGRATE_BEGIN:
            return self._handle_migrate_begin(request)
        if op == OpCode.MIGRATE_DATA:
            return self._handle_migrate_data(request)
        if op == OpCode.MIGRATE_COMMIT:
            return self._handle_migrate_commit(request)
        if op == OpCode.MEMBERSHIP_UPDATE:
            return self._handle_membership_update(request)
        if op == OpCode.GET_MEMBERSHIP:
            return HandleResult(self._respond(request, Status.OK, membership=True))
        if op == OpCode.BROADCAST:
            return self._handle_broadcast(request)
        if op == OpCode.LOOKUP_LOCAL:
            return self._handle_lookup_local(request)
        if op == OpCode.PING:
            return HandleResult(self._respond(request, Status.OK))
        if op == OpCode.STATS:
            return self._handle_stats(request)
        if op == OpCode.BATCH:
            return self._handle_batch(request)
        return HandleResult(self._respond(request, Status.BAD_REQUEST))

    def _handle_stats(self, request: Request) -> HandleResult:
        """Dump this process's metrics snapshot plus per-instance stats.

        The snapshot is process-wide (one registry per process); the
        ``instance`` block scopes it to the serving instance so callers
        polling every server of an in-process test cluster can still
        attribute per-instance counters.
        """
        snapshot = metrics_snapshot()
        snapshot["instance"] = {
            "instance_id": self.info.instance_id,
            "node_id": self.info.node_id,
            "address": str(self.info.address),
            "stats": self.stats.as_dict(),
            "partitions": len(self.partitions),
            "pairs": sum(len(p.store) for p in self.partitions.values()),
            "transport": self.config.transport,
            "partition_load": self.partition_load.snapshot(),
        }
        payload = json.dumps(snapshot, sort_keys=True).encode()
        return HandleResult(self._respond(request, Status.OK, value=payload))

    # ------------------------------------------------------------------
    # Broadcast (§VI future work: spanning-tree dissemination)
    # ------------------------------------------------------------------

    def _handle_broadcast(self, request: Request) -> HandleResult:
        from .broadcast import decode_subtree, encode_subtree, split_subtree

        self.broadcast_store.put(request.key, request.value)
        result = HandleResult(self._respond(request, Status.OK))
        subtree = decode_subtree(request.payload)
        # The payload lists this instance's subtree (self first); forward
        # to each child subtree's head, fire-and-forget.
        for child in split_subtree(subtree):
            result.async_sends.append(
                (
                    child[0],
                    Request(
                        op=OpCode.BROADCAST,
                        key=request.key,
                        value=request.value,
                        request_id=request.request_id,
                        epoch=self.membership.epoch,
                        payload=encode_subtree(child),
                    ),
                )
            )
        return result

    def _handle_lookup_local(self, request: Request) -> HandleResult:
        try:
            value = self.broadcast_store.get(request.key)
        except KeyNotFound:
            return HandleResult(self._respond(request, Status.KEY_NOT_FOUND))
        return HandleResult(self._respond(request, Status.OK, value=value))

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def _handle_client_op(
        self, request: Request, reply_context: object
    ) -> HandleResult:
        pid = self.membership.partition_of_key(request.key, self.config.hash_name)

        # Failover requests (replica_index > 0) target this instance as a
        # replica; skip the ownership redirect and serve from replica data.
        if request.replica_index == 0 and not self.owns(pid):
            self.stats.inc("redirects")
            try:
                owner = self.membership.owner_of_partition(pid)
                redirect = str(owner.address).encode()
            except ZHTError:
                redirect = b""
            return HandleResult(
                self._respond(
                    request, Status.REDIRECT, redirect=redirect, membership=True
                )
            )

        part = self.partition(pid)
        self.partition_load.record(pid)
        if part.is_migrating:
            # Queue everything (reads included): partition state is locked.
            part.queue_request(QueuedRequest(request, reply_context))
            self.stats.inc("queued")
            return HandleResult(None)

        replicating = (
            request.op in MUTATING_OPS
            and self.config.num_replicas > 0
            and (self.owns(pid) or request.replica_index > 0)
        )
        if replicating:
            # Apply and grab the replication ticket inside one store
            # critical section, so the replica-send release order (see
            # ReplicationSequencer) matches the apply order.
            with part.store.lock:
                response = self._apply_to_store(request, part.store)
                result = HandleResult(response)
                if response.status == Status.OK:
                    result.repl_sequencer = self.repl_sequencer
                    result.repl_ticket = self.repl_sequencer.ticket()
            # Maintenance triggered by the apply parks while we hold the
            # store lock (checkpoints must not run under it); drain it now.
            part.store.run_pending_maintenance()
        else:
            response = self._apply_to_store(request, part.store)
            result = HandleResult(response)
        if response.status == Status.OK and replicating:
            # The owner fans out along the chain as usual; this also covers
            # failover-addressed writes (replica_index > 0) arriving after
            # a repair promoted us.  A *replica* serving a failover write
            # back-propagates it to the rest of the chain — including the
            # owner, which is either dead (the send blackholes) or falsely
            # suspected by the client (the send keeps it authoritative).
            self._plan_replication(request, pid, result)
        return result

    def _apply_to_store(self, request: Request, store: NoVoHT) -> Response:
        op = request.op
        try:
            if op == OpCode.INSERT:
                self._check_limits(request)
                store.put(request.key, request.value)
                self.stats.inc("inserts")
                return self._respond(request, Status.OK)
            if op == OpCode.LOOKUP:
                value = store.get(request.key)
                self.stats.inc("lookups")
                return self._respond(request, Status.OK, value=value)
            if op == OpCode.REMOVE:
                store.remove(request.key)
                self.stats.inc("removes")
                return self._respond(request, Status.OK)
            if op == OpCode.APPEND:
                self._check_limits(request)
                store.append(request.key, request.value)
                self.stats.inc("appends")
                return self._respond(request, Status.OK)
        except KeyNotFound:
            return self._respond(request, Status.KEY_NOT_FOUND)
        except ZHTError as exc:
            return self._respond(request, exc.status)
        return self._respond(request, Status.BAD_REQUEST)

    # ------------------------------------------------------------------
    # Batched operations (BATCH opcode)
    # ------------------------------------------------------------------

    #: Sub-request op → NoVoHT batch-op kind.
    _BATCH_KINDS = {
        OpCode.INSERT: "put",
        OpCode.LOOKUP: "get",
        OpCode.REMOVE: "remove",
        OpCode.APPEND: "append",
    }
    _BATCH_STATS = {
        "put": "inserts",
        "get": "lookups",
        "remove": "removes",
        "append": "appends",
    }

    def _handle_batch(self, request: Request) -> HandleResult:
        """Serve N framed sub-requests from one message.

        One round trip carries the whole batch; per partition, all
        mutations land in a single NoVoHT/WAL group commit; replica
        fan-out is re-batched per peer (one BATCH of REPLICA_UPDATEs per
        destination instead of one message per key).

        Per-key semantics: every sub-request gets its own sub-response
        with its own status — a missing key fails only its entry, and
        sub-requests for partitions this instance does not own get
        per-key REDIRECTs (with the membership table piggybacked on the
        outer response) so a stale client re-plans only the affected
        sub-batch.  Sub-requests against a migrating partition answer
        MIGRATING (retry-after-backoff) instead of queuing, so one
        locked partition cannot stall its batch-siblings' responses.
        """
        with REGISTRY.span("server.handle_batch"):
            return self._handle_batch_inner(request)

    def _sub_respond(
        self,
        sub: Request,
        status: Status,
        *,
        value: bytes = b"",
        redirect: bytes = b"",
    ) -> Response:
        # Membership is piggybacked once, on the outer response.
        return Response(
            status=status,
            value=value,
            request_id=sub.request_id,
            epoch=self.membership.epoch,
            redirect=redirect,
            op=int(sub.op),
        )

    def _handle_batch_inner(self, request: Request) -> HandleResult:
        try:
            subs = decode_batch_requests(request.payload)
        except ZHTError:
            return HandleResult(self._respond(request, Status.BAD_REQUEST))
        self.stats.inc("batches")
        REGISTRY.counter("server.batch_sub_ops").inc(len(subs))
        sub_responses: list[Response | None] = [None] * len(subs)
        need_membership = False
        result = HandleResult(None)
        sync_groups: dict[Address, list[Request]] = {}
        async_groups: dict[Address, list[Request]] = {}

        # Route sub-requests to partitions (order preserved within each).
        by_pid: dict[int, list[int]] = {}
        for i, sub in enumerate(subs):
            if sub.op == OpCode.REPLICA_UPDATE:
                by_pid.setdefault(sub.partition, []).append(i)
            elif sub.op in self._BATCH_KINDS:
                pid = self.membership.partition_of_key(
                    sub.key, self.config.hash_name
                )
                by_pid.setdefault(pid, []).append(i)
            else:
                sub_responses[i] = self._sub_respond(sub, Status.BAD_REQUEST)

        for pid, idxs in by_pid.items():
            served: list[int] = []
            for i in idxs:
                sub = subs[i]
                if (
                    sub.op != OpCode.REPLICA_UPDATE
                    and sub.replica_index == 0
                    and not self.owns(pid)
                ):
                    self.stats.inc("redirects")
                    try:
                        owner = self.membership.owner_of_partition(pid)
                        redirect = str(owner.address).encode()
                    except ZHTError:
                        redirect = b""
                    sub_responses[i] = self._sub_respond(
                        sub, Status.REDIRECT, redirect=redirect
                    )
                    need_membership = True
                else:
                    served.append(i)
            if not served:
                continue
            part = self.partition(pid)
            self.partition_load.record(pid, len(served))

            # Translate servable sub-requests into store batch ops.
            batch_ops: list[tuple[str, bytes, bytes]] = []
            batch_map: list[int] = []
            for i in served:
                sub = subs[i]
                if sub.op == OpCode.REPLICA_UPDATE:
                    try:
                        kind = self._BATCH_KINDS[OpCode(sub.inner_op)]
                    except (ValueError, KeyError):
                        sub_responses[i] = self._sub_respond(
                            sub, Status.BAD_REQUEST
                        )
                        continue
                    self.stats.inc("replica_updates")
                    if (
                        self.config.test_freeze_tail_replicas
                        and sub.replica_index >= 2
                    ):
                        # TEST-ONLY broken mode (see _handle_replica_update).
                        sub_responses[i] = self._sub_respond(sub, Status.OK)
                        continue
                else:
                    if part.is_migrating:
                        sub_responses[i] = self._sub_respond(
                            sub, Status.MIGRATING
                        )
                        continue
                    kind = self._BATCH_KINDS[sub.op]
                    if kind in ("put", "append"):
                        try:
                            self._check_limits(sub)
                        except ZHTError as exc:
                            sub_responses[i] = self._sub_respond(
                                sub, exc.status
                            )
                            continue
                batch_ops.append((kind, sub.key, sub.value))
                batch_map.append(i)
            if not batch_ops:
                continue

            replicating = self.config.num_replicas > 0 and any(
                subs[i].op in MUTATING_OPS
                and (self.owns(pid) or subs[i].replica_index > 0)
                for i in batch_map
            )
            try:
                if replicating:
                    # Atomic apply + ticket, as in _handle_client_op; a
                    # batch spanning several partitions trades its ticket
                    # up per group so one (latest) ticket orders it after
                    # every concurrent mutation it raced with.
                    with part.store.lock:
                        outcomes = part.store.apply_batch(batch_ops)
                        result.repl_ticket = self.repl_sequencer.reticket(
                            result.repl_ticket
                        )
                        result.repl_sequencer = self.repl_sequencer
                    # Drain maintenance parked while the lock was held.
                    part.store.run_pending_maintenance()
                else:
                    outcomes = part.store.apply_batch(batch_ops)
            except ZHTError as exc:
                for i in batch_map:
                    sub_responses[i] = self._sub_respond(subs[i], exc.status)
                continue

            for (kind, _key, _value), (ok, got), i in zip(
                batch_ops, outcomes, batch_map
            ):
                sub = subs[i]
                if sub.op == OpCode.REPLICA_UPDATE:
                    # A REMOVE racing ahead of its INSERT on a replica is
                    # not an error at the replication layer (see
                    # _handle_replica_update): fold to OK.
                    sub_responses[i] = self._sub_respond(sub, Status.OK)
                    continue
                if not ok:
                    sub_responses[i] = self._sub_respond(
                        sub, Status.KEY_NOT_FOUND
                    )
                    continue
                self.stats.inc(self._BATCH_STATS[kind])
                sub_responses[i] = self._sub_respond(
                    sub, Status.OK, value=got or b""
                )
                if (
                    sub.op in MUTATING_OPS
                    and self.config.num_replicas > 0
                    and (self.owns(pid) or sub.replica_index > 0)
                ):
                    for address, update, sync in self._replication_plan(sub, pid):
                        group = sync_groups if sync else async_groups
                        group.setdefault(address, []).append(update)

        # Re-batch the replica fan-out: one message per peer.
        for groups, sends in (
            (sync_groups, result.sync_sends),
            (async_groups, result.async_sends),
        ):
            for address, updates in groups.items():
                sends.append((address, self._wrap_updates(updates, request)))

        # A client batch's outer status stays OK (outcomes are per-key),
        # but a replica-update batch folds its worst sub-status outward so
        # the sync-ack check in ServerExecutor stays one comparison.
        outer_status = Status.OK
        for i, sub in enumerate(subs):
            if (
                sub.op == OpCode.REPLICA_UPDATE
                and sub_responses[i].status != Status.OK
            ):
                outer_status = sub_responses[i].status
                break
        result.response = self._respond(
            request,
            outer_status,
            value=encode_batch_responses(sub_responses, self.config.wire_codec),
            membership=need_membership,
        )
        return result

    def _wrap_updates(self, updates: list[Request], outer: Request) -> Request:
        if len(updates) == 1:
            return updates[0]
        return Request(
            op=OpCode.BATCH,
            request_id=outer.request_id,
            epoch=self.membership.epoch,
            payload=encode_batch_requests(updates, self.config.wire_codec),
        )

    def _check_limits(self, request: Request) -> None:
        cfg = self.config
        if cfg.max_key_bytes is not None and len(request.key) > cfg.max_key_bytes:
            raise ZHTError("key too large", status=Status.KEY_TOO_LARGE)
        if (
            cfg.max_value_bytes is not None
            and len(request.value) > cfg.max_value_bytes
        ):
            raise ZHTError("value too large", status=Status.VALUE_TOO_LARGE)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def _plan_replication(
        self, request: Request, pid: int, result: HandleResult
    ) -> None:
        """Fan the mutation out along the replica chain.

        Chain position 1 (the secondary) is synchronous in ASYNC mode —
        "The ZHT primary replica and secondary replica are strongly
        consistent, other replicas are asynchronously updated".  SYNC mode
        makes every replica synchronous (Figure 12's counterfactual);
        NONE makes every replica fire-and-forget.

        When the serving instance is *not* the chain head (a replica
        accepting a client failover write), every send — the owner's
        included — is fire-and-forget: the owner may well be dead, and a
        synchronous wait on it would stall every failover write.
        """
        for address, update, sync in self._replication_plan(request, pid):
            if sync:
                result.sync_sends.append((address, update))
            else:
                result.async_sends.append((address, update))

    def _replication_plan(
        self, request: Request, pid: int
    ) -> list[tuple[Address, Request, bool]]:
        """The ``(address, update, sync?)`` fan-out for one mutation."""
        chain = self.membership.replicas_for_partition(pid, self.config.num_replicas)
        mode = self.config.replication_mode
        is_owner = self.owns(pid)
        plan: list[tuple[Address, Request, bool]] = []
        for index, inst in enumerate(chain):
            if inst.instance_id == self.info.instance_id:
                continue
            update = Request(
                op=OpCode.REPLICA_UPDATE,
                key=request.key,
                value=request.value,
                request_id=request.request_id,
                epoch=self.membership.epoch,
                partition=pid,
                replica_index=index,
                inner_op=int(request.op),
            )
            sync = is_owner and (
                mode == ReplicationMode.SYNC
                or (mode == ReplicationMode.ASYNC and index == 1)
            )
            if sync and self.config.test_skip_secondary_sync:
                # TEST-ONLY broken mode: acknowledge without the sync
                # replica write, so the secondary silently diverges —
                # the failure class the consistency checker must flag.
                continue
            plan.append((inst.address, update, sync))
        return plan

    def _handle_replica_update(self, request: Request) -> HandleResult:
        try:
            inner = OpCode(request.inner_op)
        except ValueError:
            return HandleResult(self._respond(request, Status.BAD_REQUEST))
        if (
            self.config.test_freeze_tail_replicas
            and request.replica_index >= 2
        ):
            # TEST-ONLY broken mode: the tail replica acks but never
            # applies, so its reads go unboundedly stale — the failure
            # the bounded-staleness checker must flag.
            self.stats.inc("replica_updates")
            return HandleResult(self._respond(request, Status.OK))
        part = self.partition(request.partition)
        inner_request = Request(
            op=inner,
            key=request.key,
            value=request.value,
            request_id=request.request_id,
        )
        response = self._apply_to_store(inner_request, part.store)
        # _apply_to_store echoed the *inner* op; the peer on the wire sent
        # REPLICA_UPDATE and matches its ack against that.
        response.op = int(request.op)
        self.stats.inc("replica_updates")
        # A REMOVE racing ahead of its INSERT on an async replica is not an
        # error at the replication layer; report OK so chains don't wedge.
        if response.status == Status.KEY_NOT_FOUND:
            response.status = Status.OK
        return HandleResult(response)

    # ------------------------------------------------------------------
    # Migration (server side; orchestrated by the manager)
    # ------------------------------------------------------------------

    def _handle_migrate_begin(self, request: Request) -> HandleResult:
        part = self.partition(request.partition)
        try:
            part.begin_migration()
        except ZHTError as exc:
            return HandleResult(self._respond(request, exc.status))
        self.stats.inc("migrations_out")
        return HandleResult(
            self._respond(request, Status.OK, value=part.export_bytes())
        )

    def _handle_migrate_data(self, request: Request) -> HandleResult:
        part = self.partition(request.partition)
        try:
            part.import_bytes(request.value)
        except ZHTError as exc:
            return HandleResult(self._respond(request, exc.status))
        self.stats.inc("migrations_in")
        return HandleResult(self._respond(request, Status.OK))

    def _handle_migrate_commit(self, request: Request) -> HandleResult:
        part = self.partition(request.partition)
        commit = request.value == b"commit"
        try:
            if commit:
                queued = part.commit_migration()
            else:
                queued = part.abort_migration()
        except ZHTError as exc:
            return HandleResult(self._respond(request, exc.status))
        result = HandleResult(self._respond(request, Status.OK))
        if commit:
            # Forward the parked requests to the new owner, named in the
            # request payload as "host:port".
            host, _, port = request.payload.decode().rpartition(":")
            new_owner = Address(host, int(port))
            result.forwards = [(new_owner, item) for item in queued]
        else:
            result.failed_queued = queued
        return result

    def _handle_membership_update(self, request: Request) -> HandleResult:
        try:
            table = MembershipTable.from_bytes(request.payload)
        except ZHTError as exc:
            return HandleResult(self._respond(request, exc.status))
        if self.membership.maybe_adopt(table):
            self.stats.inc("membership_updates")
        return HandleResult(self._respond(request, Status.OK))

    # ------------------------------------------------------------------
    # Response construction
    # ------------------------------------------------------------------

    def _respond(
        self,
        request: Request,
        status: Status,
        *,
        value: bytes = b"",
        redirect: bytes = b"",
        membership: bool = False,
    ) -> Response:
        # Lazy membership propagation: any client whose epoch is behind
        # ours gets the current table piggybacked on the response.
        stale_client = request.epoch and request.epoch < self.membership.epoch
        payload = (
            self.membership.to_bytes() if (membership or stale_client) else b""
        )
        return Response(
            status=status,
            value=value,
            request_id=request.request_id,
            epoch=self.membership.epoch,
            redirect=redirect,
            membership=payload,
            op=int(request.op),
        )

    def close(self) -> None:
        for part in self.partitions.values():
            part.close()
        self.broadcast_store.close()
