"""ZHT wire protocol.

The C++ ZHT serializes requests with Google Protocol Buffers: "The
indicators for four basic operations (insert, lookup, remove, and append)
are defined in the message prototype ... They are encapsulated with the
key-value pair into a plain string and transferred through network"
(§III.G).  We reproduce that with a hand-rolled codec speaking the
protobuf *wire format* (varint and length-delimited fields with
``tag = field_number << 3 | wire_type``), so messages are compact,
forward-compatible (unknown fields are skipped), and free of third-party
dependencies.

Two message types cover all traffic:

* :class:`Request` — client→server ops (insert/lookup/remove/append) and
  server→server ops (replica updates, partition migration, membership
  broadcast, ping).
* :class:`Response` — status code, optional value, optional redirect
  address, and an optional piggybacked membership delta for the lazy
  client-side membership update.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..novoht.wal import decode_varint, encode_varint
from .errors import ProtocolError, Status

_WIRE_VARINT = 0
_WIRE_BYTES = 2

#: Supported wire codecs (``ZHTConfig.wire_codec``).  ``"fixed"`` is the
#: struct-packed zero-copy codec below; ``"varint"`` is the original
#: protobuf-wire-format codec.  Decoders auto-detect, so mixed clusters
#: interoperate during rolling upgrades.
WIRE_CODECS = ("fixed", "varint")

#: First byte of every fixed-codec message.  Its low three bits are 7 —
#: not a valid protobuf wire type — so no varint-codec message can start
#: with it and a one-byte peek distinguishes the codecs unambiguously.
FIXED_MAGIC = 0xF7

_KIND_REQUEST = 0x01
_KIND_RESPONSE = 0x02

#: Fixed request header: magic, kind, op, flags(reserved), request_id
#: u64, epoch u32, partition u32, replica_index u16, inner_op u16,
#: deadline_us u64, then key/value/payload byte lengths (u32 each).
_REQ_HEADER = struct.Struct("<BBBBQIIHHQIII")

#: Fixed response header: magic, kind, status, op, request_id u64,
#: epoch u32, then value/redirect/membership byte lengths (u32 each).
_RESP_HEADER = struct.Struct("<BBBBQIIII")


class OpCode(enum.IntEnum):
    """Operation indicators, as defined in the ZHT message prototype."""

    # Client-facing operations (§III.A).
    INSERT = 1
    LOOKUP = 2
    REMOVE = 3
    APPEND = 4
    # Server-to-server operations.
    REPLICA_UPDATE = 10
    MIGRATE_BEGIN = 11
    MIGRATE_DATA = 12
    MIGRATE_COMMIT = 13
    MEMBERSHIP_UPDATE = 14
    PING = 15
    #: Ask a server for its full membership table (bootstrap / lazy update).
    GET_MEMBERSHIP = 16
    #: Spanning-tree dissemination of a key/value pair to ALL instances
    #: (the paper's §VI future-work "broadcast primitive").
    BROADCAST = 17
    #: Read a broadcast pair from the receiving instance's local store.
    LOOKUP_LOCAL = 18
    #: Dump the serving process's metrics-registry snapshot as JSON
    #: (counters + latency percentiles; see :mod:`repro.obs`).
    STATS = 19
    #: N framed sub-requests in one message; the response carries one
    #: framed sub-response per sub-request (per-key statuses).  Batches
    #: are planned per owning instance by the client (zero-hop routing
    #: means the client already knows every key's owner), so one BATCH
    #: costs one round trip regardless of how many keys it carries.
    BATCH = 20


#: Ops that mutate state (drive WAL writes and replication).
MUTATING_OPS = frozenset(
    {OpCode.INSERT, OpCode.REMOVE, OpCode.APPEND, OpCode.REPLICA_UPDATE}
)

#: Ops that must NOT drive replication.  Every OpCode member belongs to
#: exactly one of these two sets — the protocol-exhaustiveness checker
#: (``python -m repro lint``) and tests/test_protocol_exhaustive.py both
#: enforce the partition, so a new opcode cannot ship without an
#: explicit replication decision.  Notes on the less obvious members:
#: MIGRATE_* move whole partitions (their effects replicate when the
#: new owner's chain applies them), BROADCAST writes only node-local
#: broadcast stores, and BATCH is a carrier — its mutating
#: sub-requests are re-dispatched individually and take the MUTATING
#: path there.
NON_MUTATING_OPS = frozenset(
    {
        OpCode.LOOKUP,
        OpCode.MIGRATE_BEGIN,
        OpCode.MIGRATE_DATA,
        OpCode.MIGRATE_COMMIT,
        OpCode.MEMBERSHIP_UPDATE,
        OpCode.PING,
        OpCode.GET_MEMBERSHIP,
        OpCode.BROADCAST,
        OpCode.LOOKUP_LOCAL,
        OpCode.STATS,
        OpCode.BATCH,
    }
)


def _emit_varint_field(out: bytearray, field_num: int, value: int) -> None:
    if value:
        out += encode_varint(field_num << 3 | _WIRE_VARINT)
        out += encode_varint(value)


def _emit_bytes_field(out: bytearray, field_num: int, value: bytes) -> None:
    if value:
        out += encode_varint(field_num << 3 | _WIRE_BYTES)
        out += encode_varint(len(value))
        out += value


def _parse_fields(data: bytes) -> dict[int, int | bytes]:
    """Decode a flat protobuf-style message into ``{field_num: value}``.

    Later occurrences of a field overwrite earlier ones (protobuf
    semantics for non-repeated scalar fields).
    """
    fields: dict[int, int | bytes] = {}
    pos = 0
    try:
        while pos < len(data):
            tag, pos = decode_varint(data, pos)
            field_num, wire_type = tag >> 3, tag & 0x7
            if wire_type == _WIRE_VARINT:
                value, pos = decode_varint(data, pos)
                fields[field_num] = value
            elif wire_type == _WIRE_BYTES:
                length, pos = decode_varint(data, pos)
                if pos + length > len(data):
                    raise ValueError("length-delimited field overruns buffer")
                fields[field_num] = data[pos : pos + length]
                pos += length
            else:
                raise ValueError(f"unsupported wire type {wire_type}")
    except ValueError as exc:
        raise ProtocolError(f"malformed message: {exc}") from exc
    return fields


def _get_int(fields: dict, num: int, default: int = 0) -> int:
    value = fields.get(num, default)
    if not isinstance(value, int):
        raise ProtocolError(f"field {num} has wrong wire type")
    return value


def _get_bytes(fields: dict, num: int, default: bytes = b"") -> bytes:
    value = fields.get(num, default)
    if not isinstance(value, bytes):
        raise ProtocolError(f"field {num} has wrong wire type")
    return value


@dataclass
class Request:
    """One ZHT request message."""

    op: OpCode
    key: bytes = b""
    value: bytes = b""
    #: Monotonic per-client id for matching responses and deduplicating
    #: UDP retransmits.
    request_id: int = 0
    #: Sender's membership epoch; lets servers detect stale clients (and
    #: clients detect stale servers).
    epoch: int = 0
    #: Explicit partition index for server-to-server partition ops.
    partition: int = 0
    #: Replica chain depth for REPLICA_UPDATE fan-out (primary = 0).
    replica_index: int = 0
    #: Sub-operation carried by a REPLICA_UPDATE (an OpCode value).
    inner_op: int = 0
    #: Opaque payload for membership/migration messages.
    payload: bytes = b""
    #: Absolute wall-clock deadline in microseconds since the epoch; 0
    #: means "no deadline".  Servers shed requests that arrive already
    #: expired instead of doing work the client has given up on.  Encoded
    #: as a varint field that is simply absent when zero, so old peers
    #: skip it (unknown fields are ignored) and new peers interoperate
    #: with old clients.
    deadline_us: int = 0

    _F_OP, _F_KEY, _F_VALUE, _F_REQID, _F_EPOCH = 1, 2, 3, 4, 5
    _F_PARTITION, _F_REPLICA, _F_INNER, _F_PAYLOAD = 6, 7, 8, 9
    _F_DEADLINE = 10

    def encode(self) -> bytes:
        out = bytearray()
        _emit_varint_field(out, self._F_OP, int(self.op))
        _emit_bytes_field(out, self._F_KEY, self.key)
        _emit_bytes_field(out, self._F_VALUE, self.value)
        _emit_varint_field(out, self._F_REQID, self.request_id)
        _emit_varint_field(out, self._F_EPOCH, self.epoch)
        _emit_varint_field(out, self._F_PARTITION, self.partition)
        _emit_varint_field(out, self._F_REPLICA, self.replica_index)
        _emit_varint_field(out, self._F_INNER, self.inner_op)
        _emit_bytes_field(out, self._F_PAYLOAD, self.payload)
        _emit_varint_field(out, self._F_DEADLINE, self.deadline_us)
        return bytes(out)

    def _encode_fixed_into(self, out: bytearray) -> None:
        """Append the fixed-codec encoding of this request to *out*."""
        out += _REQ_HEADER.pack(
            FIXED_MAGIC,
            _KIND_REQUEST,
            int(self.op),
            0,
            self.request_id,
            self.epoch,
            self.partition,
            self.replica_index,
            self.inner_op,
            self.deadline_us,
            len(self.key),
            len(self.value),
            len(self.payload),
        )
        out += self.key
        out += self.value
        out += self.payload

    def encode_fixed(self) -> bytes:
        out = bytearray()
        self._encode_fixed_into(out)
        return bytes(out)

    def encode_wire(self, codec: str) -> bytes:
        """Encode with the named wire codec (``"fixed"`` or ``"varint"``)."""
        if codec == "fixed":
            return self.encode_fixed()
        return self.encode()

    @classmethod
    def decode(cls, data: bytes) -> "Request":
        if data[:1] == b"\xf7":
            return decode_request_span(data, 0, len(data))
        fields = _parse_fields(data)
        op_raw = _get_int(fields, cls._F_OP)
        try:
            op = OpCode(op_raw)
        except ValueError:
            raise ProtocolError(f"unknown opcode {op_raw}") from None
        return cls(
            op=op,
            key=_get_bytes(fields, cls._F_KEY),
            value=_get_bytes(fields, cls._F_VALUE),
            request_id=_get_int(fields, cls._F_REQID),
            epoch=_get_int(fields, cls._F_EPOCH),
            partition=_get_int(fields, cls._F_PARTITION),
            replica_index=_get_int(fields, cls._F_REPLICA),
            inner_op=_get_int(fields, cls._F_INNER),
            payload=_get_bytes(fields, cls._F_PAYLOAD),
            deadline_us=_get_int(fields, cls._F_DEADLINE),
        )


@dataclass
class Response:
    """One ZHT response message."""

    status: Status = Status.OK
    value: bytes = b""
    request_id: int = 0
    #: Server's membership epoch (clients refresh when it is newer).
    epoch: int = 0
    #: For REDIRECT: serialized address of the instance now owning the key.
    redirect: bytes = b""
    #: Piggybacked serialized membership table/delta (lazy client update:
    #: "the ZHT instance will send back a copy of latest membership table").
    membership: bytes = b""
    #: Echo of the request's op code (an :class:`OpCode` value).  Lets
    #: datagram clients reject a late response to an *earlier* operation
    #: that happens to share a request id; 0 means "not echoed" (pre-echo
    #: peers), which clients treat as a wildcard for reads only.
    op: int = 0

    _F_STATUS, _F_VALUE, _F_REQID, _F_EPOCH = 1, 2, 3, 4
    _F_REDIRECT, _F_MEMBERSHIP, _F_OP = 5, 6, 7

    def encode(self) -> bytes:
        out = bytearray()
        _emit_varint_field(out, self._F_STATUS, int(self.status))
        _emit_bytes_field(out, self._F_VALUE, self.value)
        _emit_varint_field(out, self._F_REQID, self.request_id)
        _emit_varint_field(out, self._F_EPOCH, self.epoch)
        _emit_bytes_field(out, self._F_REDIRECT, self.redirect)
        _emit_bytes_field(out, self._F_MEMBERSHIP, self.membership)
        _emit_varint_field(out, self._F_OP, self.op)
        return bytes(out)

    def _encode_fixed_into(self, out: bytearray) -> None:
        """Append the fixed-codec encoding of this response to *out*."""
        out += _RESP_HEADER.pack(
            FIXED_MAGIC,
            _KIND_RESPONSE,
            int(self.status),
            self.op,
            self.request_id,
            self.epoch,
            len(self.value),
            len(self.redirect),
            len(self.membership),
        )
        out += self.value
        out += self.redirect
        out += self.membership

    def encode_fixed(self) -> bytes:
        out = bytearray()
        self._encode_fixed_into(out)
        return bytes(out)

    def encode_wire(self, codec: str) -> bytes:
        """Encode with the named wire codec (``"fixed"`` or ``"varint"``)."""
        if codec == "fixed":
            return self.encode_fixed()
        return self.encode()

    @classmethod
    def decode(cls, data: bytes) -> "Response":
        if data[:1] == b"\xf7":
            return decode_response_span(data, 0, len(data))
        fields = _parse_fields(data)
        status_raw = _get_int(fields, cls._F_STATUS)
        try:
            status = Status(status_raw)
        except ValueError:
            raise ProtocolError(f"unknown status {status_raw}") from None
        return cls(
            status=status,
            value=_get_bytes(fields, cls._F_VALUE),
            request_id=_get_int(fields, cls._F_REQID),
            epoch=_get_int(fields, cls._F_EPOCH),
            redirect=_get_bytes(fields, cls._F_REDIRECT),
            membership=_get_bytes(fields, cls._F_MEMBERSHIP),
            op=_get_int(fields, cls._F_OP),
        )


# ---------------------------------------------------------------------------
# Fixed-codec zero-copy span decode / single-allocation framed encode
# ---------------------------------------------------------------------------
#
# The hot-path complement to ``Request.encode``/``decode``: servers parse
# requests straight out of the connection's accumulating receive buffer
# (``decode_request_span(buf, start, end)`` — no intermediate per-message
# ``bytes`` copy), and encode length-prefixed replies into one buffer
# (``encode_framed_request``/``encode_framed_response``) instead of
# body-then-prefix concatenation.  Field payloads (key/value/...) are
# still materialised as ``bytes`` — the receive buffer is compacted after
# dispatch, so no view into it may outlive the call.


def decode_request_span(
    buf: bytes | bytearray | memoryview, start: int, end: int
) -> Request:
    """Decode one request from ``buf[start:end]`` without copying the span.

    Auto-detects the codec: fixed-header messages are parsed in place
    with ``struct.unpack_from``; varint-codec messages fall back to the
    classic parser (one span copy, same cost as before).
    """
    if end - start > 0 and buf[start] == FIXED_MAGIC:
        if end - start < _REQ_HEADER.size:
            raise ProtocolError("fixed request header truncated")
        (
            _magic,
            kind,
            op_raw,
            _flags,
            request_id,
            epoch,
            partition,
            replica_index,
            inner_op,
            deadline_us,
            klen,
            vlen,
            plen,
        ) = _REQ_HEADER.unpack_from(buf, start)
        if kind != _KIND_REQUEST:
            raise ProtocolError(f"fixed message kind {kind} is not a request")
        body = start + _REQ_HEADER.size
        if body + klen + vlen + plen != end:
            raise ProtocolError("fixed request field lengths overrun frame")
        try:
            op = OpCode(op_raw)
        except ValueError:
            raise ProtocolError(f"unknown opcode {op_raw}") from None
        ko, vo = body, body + klen
        po = vo + vlen
        return Request(
            op=op,
            key=bytes(buf[ko : ko + klen]),
            value=bytes(buf[vo : vo + vlen]),
            request_id=request_id,
            epoch=epoch,
            partition=partition,
            replica_index=replica_index,
            inner_op=inner_op,
            payload=bytes(buf[po : po + plen]),
            deadline_us=deadline_us,
        )
    return Request.decode(bytes(buf[start:end]))


def decode_response_span(
    buf: bytes | bytearray | memoryview, start: int, end: int
) -> Response:
    """Decode one response from ``buf[start:end]`` without copying the span."""
    if end - start > 0 and buf[start] == FIXED_MAGIC:
        if end - start < _RESP_HEADER.size:
            raise ProtocolError("fixed response header truncated")
        (
            _magic,
            kind,
            status_raw,
            op,
            request_id,
            epoch,
            vlen,
            rlen,
            mlen,
        ) = _RESP_HEADER.unpack_from(buf, start)
        if kind != _KIND_RESPONSE:
            raise ProtocolError(f"fixed message kind {kind} is not a response")
        body = start + _RESP_HEADER.size
        if body + vlen + rlen + mlen != end:
            raise ProtocolError("fixed response field lengths overrun frame")
        try:
            status = Status(status_raw)
        except ValueError:
            raise ProtocolError(f"unknown status {status_raw}") from None
        vo, ro = body, body + vlen
        mo = ro + rlen
        return Response(
            status=status,
            value=bytes(buf[vo : vo + vlen]),
            request_id=request_id,
            epoch=epoch,
            redirect=bytes(buf[ro : ro + rlen]),
            membership=bytes(buf[mo : mo + mlen]),
            op=op,
        )
    return Response.decode(bytes(buf[start:end]))


def encode_framed_request(request: Request, codec: str = "fixed") -> bytearray:
    """Length-prefix-frame *request* into a single freshly built buffer."""
    out = bytearray()
    if codec == "fixed":
        body_len = (
            _REQ_HEADER.size
            + len(request.key)
            + len(request.value)
            + len(request.payload)
        )
        out += encode_varint(body_len)
        request._encode_fixed_into(out)
    else:
        body = request.encode()
        out += encode_varint(len(body))
        out += body
    return out


def encode_framed_response(response: Response, codec: str = "fixed") -> bytearray:
    """Length-prefix-frame *response* into a single freshly built buffer."""
    out = bytearray()
    if codec == "fixed":
        body_len = (
            _RESP_HEADER.size
            + len(response.value)
            + len(response.redirect)
            + len(response.membership)
        )
        out += encode_varint(body_len)
        response._encode_fixed_into(out)
    else:
        body = response.encode()
        out += encode_varint(len(body))
        out += body
    return out


def detect_codec(message: bytes | bytearray | memoryview) -> str:
    """Name the codec a message body was encoded with (by its first byte)."""
    if len(message) > 0 and message[0] == FIXED_MAGIC:
        return "fixed"
    return "varint"


def frame(message: bytes) -> bytes:
    """Length-prefix *message* for stream transports (TCP)."""
    return encode_varint(len(message)) + message


def deframe(buffer: bytes) -> tuple[bytes | None, bytes]:
    """Extract one framed message from *buffer*.

    Returns ``(message, remainder)``; ``message`` is ``None`` when the
    buffer does not yet hold a complete frame.

    Rebuilding the remainder copies the whole buffer, which is O(n²)
    across a burst of frames — stream loops should use
    :func:`deframe_at` over an accumulating ``bytearray`` instead.
    """
    message, offset = deframe_at(buffer, 0)
    if message is None:
        return None, buffer
    return message, buffer[offset:]


def deframe_at(buffer: "bytes | bytearray | memoryview", offset: int) -> tuple[bytes | None, int]:
    """Extract one framed message from *buffer* starting at *offset*.

    Returns ``(message, next_offset)`` without copying the remainder;
    ``message`` is ``None`` (and ``next_offset == offset``) when the
    buffer does not yet hold a complete frame.  *buffer* may be ``bytes``
    or a ``bytearray`` that keeps accumulating between calls.
    """
    try:
        length, pos = decode_varint(buffer, offset)
    except ValueError:
        return None, offset
    if len(buffer) - pos < length:
        return None, offset
    return bytes(buffer[pos : pos + length]), pos + length


def deframe_span(
    buffer: "bytes | bytearray | memoryview", offset: int
) -> tuple[int, int, int]:
    """Locate one framed message in *buffer* starting at *offset*.

    Returns ``(start, end, next_offset)`` — the message occupies
    ``buffer[start:end]`` and is *not* copied, so callers can decode it
    in place (:func:`decode_request_span`) before compacting the buffer.
    When the buffer does not yet hold a complete frame, returns
    ``(-1, -1, offset)``.
    """
    try:
        length, pos = decode_varint(buffer, offset)
    except ValueError:
        return -1, -1, offset
    if len(buffer) - pos < length:
        return -1, -1, offset
    return pos, pos + length, pos + length


# ---------------------------------------------------------------------------
# Batch codec (BATCH opcode payloads)
# ---------------------------------------------------------------------------


def _encode_framed(messages: list[bytes]) -> bytes:
    out = bytearray()
    for message in messages:
        out += frame(message)
    return bytes(out)


def _decode_framed(payload: bytes) -> list[bytes]:
    messages: list[bytes] = []
    offset = 0
    while offset < len(payload):
        message, offset = deframe_at(payload, offset)
        if message is None:
            raise ProtocolError("truncated frame inside batch payload")
        messages.append(message)
    return messages


def encode_batch_requests(requests: list[Request], codec: str = "varint") -> bytes:
    """Pack sub-requests into a BATCH request payload (framed, in order)."""
    return _encode_framed([r.encode_wire(codec) for r in requests])


def decode_batch_requests(payload: bytes) -> list[Request]:
    return [Request.decode(m) for m in _decode_framed(payload)]


def encode_batch_responses(
    responses: list["Response"], codec: str = "varint"
) -> bytes:
    """Pack per-key sub-responses into a BATCH response value (framed,
    positionally matching the request's sub-requests)."""
    return _encode_framed([r.encode_wire(codec) for r in responses])


def decode_batch_responses(payload: bytes) -> list["Response"]:
    return [Response.decode(m) for m in _decode_framed(payload)]


def batch_request_overhead(request_id: int, epoch: int) -> int:
    """Encoded size of a BATCH envelope with an empty payload, plus the
    payload field's worst-case tag+length prefix — used by the client
    planner to chunk batches under a transport's datagram limit."""
    probe = Request(
        op=OpCode.BATCH, request_id=request_id, epoch=epoch
    ).encode()
    return len(probe) + 6
