"""Membership management for ZHT (§III.C).

Every ZHT participant holds a complete **membership table**: the set of
physical nodes, the ZHT instances running on them, and the assignment of
every partition to its owning instance.  Because the table is complete,
routing is zero-hop — ``hash(key) → partition → owning instance`` is a
purely local computation.

The table is versioned by an **epoch** that increases on every change
(join, departure, failure, partition reassignment).  Updates propagate
two ways, both reproduced from the paper:

* managers broadcast incremental deltas after a migration commits, and
* clients are updated **lazily**: a server that receives a request carrying
  a stale epoch piggybacks the latest table on its response ("Only when
  the requests are sent mistakenly, the ZHT instance will send back a copy
  of latest membership table to the clients").

Replica placement follows the paper's proximity rule: replicas of a
partition live on the instances that follow the owner in ring (UUID)
order, skipping instances on the owner's physical node ("replicated
asynchronously to nodes in close proximity (according to the UUID) of the
original hashed location").
"""

from __future__ import annotations

import json
import random
import uuid as _uuid
from dataclasses import dataclass, replace

from .errors import MembershipError
from .hashing import partition_of


@dataclass(frozen=True, order=True)
class Address:
    """Communication address of a ZHT instance or manager.

    ``host`` is an IP/hostname for real transports or an opaque node name
    in the simulator; ``port`` disambiguates instances sharing a host
    ("Each physical node may have several ZHT instances which are
    differentiated with IP address and port").
    """

    host: str
    port: int

    def to_obj(self) -> list:
        return [self.host, self.port]

    @classmethod
    def from_obj(cls, obj: "tuple[object, object] | list[object]") -> "Address":
        return cls(str(obj[0]), int(obj[1]))

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class InstanceInfo:
    """One ZHT instance (a server process owning some partitions)."""

    instance_id: str  # 32-hex-char UUID; its integer value is the ring position
    node_id: str
    address: Address

    @property
    def ring_position(self) -> int:
        return int(self.instance_id, 16)

    def to_obj(self) -> dict:
        return {
            "id": self.instance_id,
            "node": self.node_id,
            "addr": self.address.to_obj(),
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "InstanceInfo":
        return cls(obj["id"], obj["node"], Address.from_obj(obj["addr"]))


@dataclass(frozen=True)
class NodeInfo:
    """One physical node, hosting a manager and ≥1 instances."""

    node_id: str
    manager_address: Address
    alive: bool = True

    def to_obj(self) -> dict:
        return {
            "id": self.node_id,
            "mgr": self.manager_address.to_obj(),
            "alive": self.alive,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "NodeInfo":
        return cls(obj["id"], Address.from_obj(obj["mgr"]), bool(obj["alive"]))


def new_instance_id(rng: "random.Random | None" = None) -> str:
    """Mint a universally-unique instance id (ring position)."""
    if rng is not None:
        return f"{rng.getrandbits(128):032x}"
    return _uuid.uuid4().hex


def correlated_instance_id(
    node_index: int, instance_index: int = 0, rng: "random.Random | None" = None
) -> str:
    """Mint an instance id whose ring position tracks network position.

    "The node ids in ZHT can be randomly distributed throughout the
    network, or they can be closely correlated with the network distance
    between nodes.  The correlation can generally be computed from
    information such as MPI rank or IP address." (§III.A)  The high 32
    bits encode ``node_index`` (the MPI-rank analogue), so ring neighbors
    — and therefore replica chains, which follow ring order — are network
    neighbors.  The low bits stay random for uniqueness.
    """
    if not 0 <= node_index < 1 << 24:
        raise ValueError("node_index out of range")
    if not 0 <= instance_index < 1 << 8:
        raise ValueError("instance_index out of range")
    high = (node_index << 8) | instance_index
    low = rng.getrandbits(96) if rng is not None else _uuid.uuid4().int >> 32
    return f"{high:08x}{low:024x}"


class MembershipTable:
    """The complete, versioned view of a ZHT deployment.

    All mutating methods bump :attr:`epoch`.  The table is cheap to copy
    (:meth:`copy`), so clients and servers can hold independent snapshots
    and reconcile via epochs.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.epoch = 0
        self.nodes: dict[str, NodeInfo] = {}
        self.instances: dict[str, InstanceInfo] = {}
        #: partition index -> owning instance_id ("" = unassigned)
        self.partition_owner: list[str] = [""] * num_partitions
        self._ring_cache: list[InstanceInfo] | None = None

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    @classmethod
    def bootstrap(
        cls,
        num_partitions: int,
        nodes: list[NodeInfo],
        instances: list[InstanceInfo],
    ) -> "MembershipTable":
        """Build the initial static-membership table.

        "In static membership, every node at bootstrap time has all
        information about how to contact every other node in ZHT."
        Partitions are dealt to instances as contiguous, nearly-equal
        ranges of the ring, so each of the *i* instances holds ``n/i``
        partitions.
        """
        if not instances:
            raise MembershipError("cannot bootstrap with zero instances")
        if len(instances) > num_partitions:
            raise MembershipError(
                f"{len(instances)} instances exceed {num_partitions} partitions; "
                "num_partitions is the maximum deployment size"
            )
        node_ids = {n.node_id for n in nodes}
        for inst in instances:
            if inst.node_id not in node_ids:
                raise MembershipError(
                    f"instance {inst.instance_id} references unknown node "
                    f"{inst.node_id}"
                )
        table = cls(num_partitions)
        table.nodes = {n.node_id: n for n in nodes}
        table.instances = {i.instance_id: i for i in instances}
        ordered = sorted(instances, key=lambda i: i.ring_position)
        k = len(ordered)
        for idx, inst in enumerate(ordered):
            start = idx * num_partitions // k
            end = (idx + 1) * num_partitions // k
            for pid in range(start, end):
                table.partition_owner[pid] = inst.instance_id
        table.epoch = 1
        return table

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def partition_of_key(self, key: bytes | str, hash_name: str) -> int:
        return partition_of(key, self.num_partitions, hash_name)

    def owner_of_partition(self, pid: int) -> InstanceInfo:
        iid = self.partition_owner[pid]
        if not iid:
            raise MembershipError(f"partition {pid} is unassigned")
        return self.instances[iid]

    def lookup_instance(self, key: bytes | str, hash_name: str) -> InstanceInfo:
        """Zero-hop route: the instance owning *key*'s partition."""
        return self.owner_of_partition(self.partition_of_key(key, hash_name))

    def ring_order(self) -> list[InstanceInfo]:
        """Instances sorted by ring position (UUID value)."""
        if self._ring_cache is None:
            self._ring_cache = sorted(
                self.instances.values(), key=lambda i: i.ring_position
            )
        return self._ring_cache

    def replicas_for_partition(
        self,
        pid: int,
        num_replicas: int,
        *,
        assume_alive: str | None = None,
    ) -> list[InstanceInfo]:
        """Replica chain for *pid*: owner first, then ``num_replicas``
        successors on the ring located on *distinct, alive* physical nodes.

        ``assume_alive`` treats that one node as alive regardless of its
        flag — repair uses it to reconstruct the chain as it stood before
        a node died, so it can find every partition that lost a copy.
        """
        owner = self.owner_of_partition(pid)
        chain = [owner]
        if num_replicas <= 0:
            return chain
        ring = self.ring_order()
        start = next(
            i for i, inst in enumerate(ring) if inst.instance_id == owner.instance_id
        )
        used_nodes = {owner.node_id}
        for offset in range(1, len(ring)):
            inst = ring[(start + offset) % len(ring)]
            node = self.nodes.get(inst.node_id)
            if node is None or inst.node_id in used_nodes:
                continue
            if not node.alive and inst.node_id != assume_alive:
                continue
            chain.append(inst)
            used_nodes.add(inst.node_id)
            if len(chain) == num_replicas + 1:
                break
        return chain

    def instances_on_node(self, node_id: str) -> list[InstanceInfo]:
        return [i for i in self.instances.values() if i.node_id == node_id]

    def partitions_of_instance(self, instance_id: str) -> list[int]:
        return [
            pid
            for pid, owner in enumerate(self.partition_owner)
            if owner == instance_id
        ]

    def partitions_of_node(self, node_id: str) -> list[int]:
        owned = {i.instance_id for i in self.instances_on_node(node_id)}
        return [
            pid for pid, owner in enumerate(self.partition_owner) if owner in owned
        ]

    def most_loaded_node(self) -> str:
        """Node holding the most partitions (a joiner's migration source:
        "the new node can find the physical nodes with the most partitions,
        then join the ring as this heavily loaded node's neighbor").
        """
        alive = [n for n in self.nodes.values() if n.alive]
        if not alive:
            raise MembershipError("no alive nodes")
        return max(alive, key=lambda n: len(self.partitions_of_node(n.node_id))).node_id

    # ------------------------------------------------------------------
    # Mutation (each bumps the epoch)
    # ------------------------------------------------------------------

    def _bump(self) -> None:
        self.epoch += 1
        self._ring_cache = None

    def add_node(self, node: NodeInfo) -> None:
        if node.node_id in self.nodes:
            raise MembershipError(f"node {node.node_id} already present")
        self.nodes[node.node_id] = node
        self._bump()

    def add_instance(self, inst: InstanceInfo) -> None:
        if inst.instance_id in self.instances:
            raise MembershipError(f"instance {inst.instance_id} already present")
        if inst.node_id not in self.nodes:
            raise MembershipError(f"instance references unknown node {inst.node_id}")
        if len(self.instances) >= self.num_partitions:
            raise MembershipError("instance count would exceed partition count")
        self.instances[inst.instance_id] = inst
        self._bump()

    def remove_instance(self, instance_id: str) -> None:
        if instance_id not in self.instances:
            raise MembershipError(f"unknown instance {instance_id}")
        if self.partitions_of_instance(instance_id):
            raise MembershipError(
                f"instance {instance_id} still owns partitions; migrate first"
            )
        del self.instances[instance_id]
        self._bump()

    def remove_node(self, node_id: str) -> None:
        if node_id not in self.nodes:
            raise MembershipError(f"unknown node {node_id}")
        remaining = self.instances_on_node(node_id)
        if remaining:
            raise MembershipError(
                f"node {node_id} still hosts instances; remove them first"
            )
        del self.nodes[node_id]
        self._bump()

    def mark_node_dead(self, node_id: str) -> None:
        """Failure detector verdict: "mark the entire physical node
        unavailable on its local membership table"."""
        node = self.nodes.get(node_id)
        if node is None:
            raise MembershipError(f"unknown node {node_id}")
        if node.alive:
            self.nodes[node_id] = replace(node, alive=False)
            self._bump()

    def mark_node_alive(self, node_id: str) -> None:
        """Revive a node in this local view (circuit-breaker half-open
        re-probe, or a manager-confirmed recovery)."""
        node = self.nodes.get(node_id)
        if node is None:
            raise MembershipError(f"unknown node {node_id}")
        if not node.alive:
            self.nodes[node_id] = replace(node, alive=True)
            self._bump()

    def reassign_partition(self, pid: int, new_instance_id: str) -> None:
        if not 0 <= pid < self.num_partitions:
            raise MembershipError(f"partition {pid} out of range")
        if new_instance_id not in self.instances:
            raise MembershipError(f"unknown instance {new_instance_id}")
        self.partition_owner[pid] = new_instance_id
        self._bump()

    # ------------------------------------------------------------------
    # Serialization & reconciliation
    # ------------------------------------------------------------------

    def to_obj(self) -> dict:
        return {
            "num_partitions": self.num_partitions,
            "epoch": self.epoch,
            "nodes": [n.to_obj() for n in self.nodes.values()],
            "instances": [i.to_obj() for i in self.instances.values()],
            "owners": self._owners_rle(),
        }

    def _owners_rle(self) -> list:
        """Run-length-encode the owner list (contiguous ranges compress
        to almost nothing, keeping the <1%-of-memory footprint goal)."""
        runs: list[list] = []
        for owner in self.partition_owner:
            if runs and runs[-1][0] == owner:
                runs[-1][1] += 1
            else:
                runs.append([owner, 1])
        return runs

    @classmethod
    def from_obj(cls, obj: dict) -> "MembershipTable":
        table = cls(int(obj["num_partitions"]))
        table.epoch = int(obj["epoch"])
        table.nodes = {
            n["id"]: NodeInfo.from_obj(n) for n in obj["nodes"]
        }
        table.instances = {
            i["id"]: InstanceInfo.from_obj(i) for i in obj["instances"]
        }
        owners: list[str] = []
        for owner, count in obj["owners"]:
            owners.extend([owner] * count)
        if len(owners) != table.num_partitions:
            raise MembershipError("owner RLE does not cover the partition space")
        table.partition_owner = owners
        return table

    def to_bytes(self) -> bytes:
        return json.dumps(self.to_obj(), separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MembershipTable":
        try:
            return cls.from_obj(json.loads(data.decode("utf-8")))
        except (ValueError, KeyError, TypeError) as exc:
            raise MembershipError(f"bad membership payload: {exc}") from exc

    def copy(self) -> "MembershipTable":
        return MembershipTable.from_bytes(self.to_bytes())

    def maybe_adopt(self, other: "MembershipTable") -> bool:
        """Adopt *other*'s state if it is strictly newer; return True if so.

        This is the lazy-update receive path on clients and the broadcast
        receive path on managers.
        """
        if other.epoch <= self.epoch:
            return False
        if other.num_partitions != self.num_partitions:
            raise MembershipError(
                "cannot adopt table with a different partition count"
            )
        self.nodes = dict(other.nodes)
        self.instances = dict(other.instances)
        self.partition_owner = list(other.partition_owner)
        self.epoch = other.epoch
        self._ring_cache = None
        return True

    def memory_footprint_bytes(self) -> int:
        """Estimated serialized footprint — the paper budgets ~32 B/node,
        "1 million nodes only need 32MB memory"."""
        return len(self.to_bytes())
