"""Partitions: the unit of data placement and migration (§III.B-C).

A partition is "a contiguous range of the key address space".  The total
partition count ``n`` is fixed at deployment time (it bounds the maximum
number of nodes), while instances and nodes come and go — so membership
changes *move whole partitions* instead of rehashing keys: "Migrating a
partition is as easy as moving a file, all without having to rehash the
key/value pairs stored in the partition."

Each partition wraps its own :class:`~repro.novoht.NoVoHT` store and a
small state machine:

* ``ACTIVE`` — serving requests normally.
* ``MIGRATING_OUT`` — a migration of this partition to another instance is
  in flight.  "When migration is in progress, ZHT state cannot be modified
  for the migrated partitions.  All requests are queued, until the
  migration is completed."  Mutations are queued; a failed migration
  discards the queue and reports errors, rolling back to a consistent
  state.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass

from ..novoht import NoVoHT
from .errors import MigrationError
from .protocol import Request


class PartitionState(enum.Enum):
    ACTIVE = "active"
    MIGRATING_OUT = "migrating_out"


@dataclass
class QueuedRequest:
    """A mutation parked while its partition migrates."""

    request: Request
    #: Opaque context the transport layer uses to answer the requester
    #: once the queue drains (socket/connection for real nets, an event
    #: for the simulator).
    reply_context: object = None


class Partition:
    """One contiguous slice of the ring, with its store and migration state."""

    def __init__(
        self,
        pid: int,
        *,
        persistence_dir: str | None = None,
        checkpoint_interval_ops: int = 10_000,
        gc_dead_ratio: float = 0.5,
        max_memory_pairs: int | None = None,
        fsync: bool = False,
    ) -> None:
        self.pid = pid
        store_dir = (
            os.path.join(persistence_dir, f"partition-{pid:06d}")
            if persistence_dir
            else None
        )
        self.store = NoVoHT(
            store_dir,
            checkpoint_interval_ops=checkpoint_interval_ops,
            gc_dead_ratio=gc_dead_ratio,
            max_memory_pairs=max_memory_pairs,
            fsync=fsync,
        )
        self.state = PartitionState.ACTIVE
        self.queued: list[QueuedRequest] = []

    # ------------------------------------------------------------------
    # Migration protocol
    # ------------------------------------------------------------------

    @property
    def is_migrating(self) -> bool:
        return self.state is PartitionState.MIGRATING_OUT

    def begin_migration(self) -> None:
        if self.state is not PartitionState.ACTIVE:
            raise MigrationError(f"partition {self.pid} already migrating")
        self.state = PartitionState.MIGRATING_OUT

    def queue_request(self, item: QueuedRequest) -> None:
        if not self.is_migrating:
            raise MigrationError(f"partition {self.pid} is not migrating")
        self.queued.append(item)

    def commit_migration(self) -> list[QueuedRequest]:
        """Finish a successful migration.

        Returns the queued requests; the caller forwards them to the new
        owner (their data is no longer here).  The local store is cleared —
        the partition content now lives on the receiving instance.
        """
        if not self.is_migrating:
            raise MigrationError(f"partition {self.pid} is not migrating")
        queued, self.queued = self.queued, []
        self.state = PartitionState.ACTIVE
        for key in self.store.keys():
            self.store.remove(key)
        return queued

    def abort_migration(self) -> list[QueuedRequest]:
        """Roll back a failed migration.

        "If failure occurs during migration, simply don't apply the changes
        (in terms of discarding the queued requests and reporting error to
        clients)."  Returns the discarded queue so the transport can send
        each requester an error.
        """
        if not self.is_migrating:
            raise MigrationError(f"partition {self.pid} is not migrating")
        queued, self.queued = self.queued, []
        self.state = PartitionState.ACTIVE
        return queued

    # ------------------------------------------------------------------
    # Bulk transfer ("moving a file")
    # ------------------------------------------------------------------

    def export_bytes(self) -> bytes:
        """Serialize the full partition content for transfer."""
        pairs = [
            [key.hex(), value.hex()] for key, value in self.store.items()
        ]
        return json.dumps(pairs, separators=(",", ":")).encode("ascii")

    def import_bytes(self, data: bytes) -> int:
        """Load transferred content into this (receiving) partition."""
        try:
            pairs = json.loads(data.decode("ascii"))
        except ValueError as exc:
            raise MigrationError(f"bad partition payload: {exc}") from exc
        count = 0
        for khex, vhex in pairs:
            self.store.put(bytes.fromhex(khex), bytes.fromhex(vhex))
            count += 1
        return count

    def close(self) -> None:
        self.store.close()
