"""Broadcast primitive — the paper's first future-work item (§VI).

"We believe that a broadcast primitive (in addition to
insert/lookup/remove/append) would be beneficial to transmit the
key/value pairs efficiently to all nodes (potentially via a spanning
tree)."

Implementation: a binary spanning tree over the instance list in ring
order.  The client sends one ``BROADCAST`` request to the tree root
whose payload names the instances in the root's subtree; every receiver
stores the pair in its node-local broadcast store and forwards to the
roots of its two child subtrees.  Delivery to all *N* instances thus
costs each participant at most 2 sends and completes in ``ceil(log2 N)``
forwarding levels, versus *N* sequential sends from one client.

Broadcast data is node-local configuration-style state (every instance
holds a full copy), so it lives outside the partitioned key space in a
dedicated per-instance store, read back with ``lookup_broadcast``.
"""

from __future__ import annotations

import json

from .membership import Address, MembershipTable
from .protocol import Request, OpCode


def encode_subtree(addresses: list[Address]) -> bytes:
    """Serialize the subtree address list carried in a BROADCAST payload."""
    return json.dumps([a.to_obj() for a in addresses], separators=(",", ":")).encode()


def decode_subtree(payload: bytes) -> list[Address]:
    try:
        return [Address.from_obj(o) for o in json.loads(payload.decode())]
    except (ValueError, KeyError, TypeError, IndexError):
        return []


def split_subtree(
    addresses: list[Address],
) -> list[list[Address]]:
    """Child subtrees for the receiver at ``addresses[0]``.

    The receiver is the head; the remainder splits into two halves whose
    heads become the receiver's children in the spanning tree.
    """
    rest = addresses[1:]
    if not rest:
        return []
    mid = (len(rest) + 1) // 2
    return [half for half in (rest[:mid], rest[mid:]) if half]


def broadcast_order(membership: MembershipTable) -> list[Address]:
    """Root-first delivery order: alive instances in ring order."""
    return [
        inst.address
        for inst in membership.ring_order()
        if membership.nodes[inst.node_id].alive
    ]


def make_broadcast_request(
    key: bytes,
    value: bytes,
    subtree: list[Address],
    *,
    request_id: int = 0,
    epoch: int = 0,
) -> Request:
    return Request(
        op=OpCode.BROADCAST,
        key=key,
        value=value,
        request_id=request_id,
        epoch=epoch,
        payload=encode_subtree(subtree),
    )
