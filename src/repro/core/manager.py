"""ZHT Manager — membership orchestration (§III.B-C).

"A Manager is a service running on each physical node and takes charge of
starting and shutting down ZHT instances ... managing membership table,
starting/stopping instances, and partition migration."

The manager's multi-message procedures (migrate a partition, admit a
joining node, retire a node, repair after a failure) are written as
**generator scripts**: they ``yield`` :class:`PeerCall` objects and are
resumed with the peer's :class:`~repro.core.protocol.Response` (or
``None`` on timeout).  The same scripts therefore run unchanged over real
sockets and inside the discrete-event simulator::

    gen = manager.join_node(node, instances)
    reply = None
    try:
        while True:
            call = gen.send(reply)
            reply = transport.roundtrip(call.address, call.request)
    except StopIteration as stop:
        result = stop.value

Migration follows the paper's protocol: the source locks and exports the
partition (queueing incoming requests), the destination imports it, the
membership delta is broadcast "in an atomic manner", and finally the
source commits — forwarding queued requests to the new owner.  On any
failure the source aborts and the queued requests are failed, rolling the
system back to a consistent state.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Generator

from .config import ZHTConfig
from .errors import MembershipError, Status
from .membership import (
    Address,
    InstanceInfo,
    MembershipTable,
    NodeInfo,
)
from .protocol import OpCode, Request, Response


@dataclass
class PeerCall:
    """One server-to-server round trip requested by a manager script."""

    address: Address
    request: Request
    #: Scripts set this False for best-effort messages (broadcasts) where
    #: a timeout should not abort the procedure.
    required: bool = True


Script = Generator[PeerCall, "Response | None", object]


@dataclass
class MigrationReport:
    """Outcome of one partition migration."""

    pid: int
    src_instance: str
    dst_instance: str
    committed: bool
    pairs_moved: int = 0


class ManagerCore:
    """Membership/migration orchestration logic for one physical node."""

    def __init__(
        self,
        node_id: str,
        membership: MembershipTable,
        config: ZHTConfig | None = None,
        *,
        rng: random.Random | None = None,
    ) -> None:
        self.node_id = node_id
        self.membership = membership
        self.config = config or ZHTConfig()
        self.rng = rng or random.Random()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _request_id(self) -> int:
        return self.rng.getrandbits(31) or 1

    def _alive_instances(self) -> list[InstanceInfo]:
        return [
            inst
            for inst in self.membership.instances.values()
            if self.membership.nodes[inst.node_id].alive
        ]

    def broadcast_membership(self) -> Script:
        """Push the current table to every alive instance (best effort).

        "the manager broadcasts out the incremental information of
        membership in an atomic manner" — the table is serialized once, so
        every receiver adopts the identical epoch or nothing.
        """
        payload = self.membership.to_bytes()
        epoch = self.membership.epoch
        delivered = 0
        for inst in self._alive_instances():
            response = yield PeerCall(
                inst.address,
                Request(
                    op=OpCode.MEMBERSHIP_UPDATE,
                    request_id=self._request_id(),
                    epoch=epoch,
                    payload=payload,
                ),
                required=False,
            )
            if response is not None and response.status == Status.OK:
                delivered += 1
        return delivered

    # ------------------------------------------------------------------
    # Partition migration
    # ------------------------------------------------------------------

    def migrate_partition(self, pid: int, dst_instance_id: str) -> Script:
        """Move partition *pid* to *dst_instance_id*; returns a report."""
        src = self.membership.owner_of_partition(pid)
        dst = self.membership.instances.get(dst_instance_id)
        if dst is None:
            raise MembershipError(f"unknown destination {dst_instance_id}")
        if src.instance_id == dst_instance_id:
            return MigrationReport(pid, src.instance_id, dst_instance_id, True)
        report = MigrationReport(pid, src.instance_id, dst_instance_id, False)

        # 1. Lock + export at the source. Incoming requests start queueing.
        begin = yield PeerCall(
            src.address,
            Request(
                op=OpCode.MIGRATE_BEGIN,
                request_id=self._request_id(),
                partition=pid,
            ),
        )
        if begin is None or begin.status != Status.OK:
            return report

        abort_payload = Request(
            op=OpCode.MIGRATE_COMMIT,
            request_id=self._request_id(),
            partition=pid,
            value=b"abort",
        )

        # 2. Install the data at the destination.
        data = yield PeerCall(
            dst.address,
            Request(
                op=OpCode.MIGRATE_DATA,
                request_id=self._request_id(),
                partition=pid,
                value=begin.value,
            ),
        )
        if data is None or data.status != Status.OK:
            yield PeerCall(src.address, abort_payload, required=False)
            return report

        # 3. Flip ownership and broadcast the new table.
        self.membership.reassign_partition(pid, dst_instance_id)
        yield from self.broadcast_membership()

        # 4. Commit at the source; it forwards queued requests to dst.
        commit = yield PeerCall(
            src.address,
            Request(
                op=OpCode.MIGRATE_COMMIT,
                request_id=self._request_id(),
                partition=pid,
                value=b"commit",
                payload=str(dst.address).encode(),
            ),
        )
        if commit is None or commit.status != Status.OK:
            # Ownership already flipped and broadcast; the source's commit
            # ack was lost but the system is consistent. Report success.
            pass
        report.committed = True
        try:
            report.pairs_moved = len(json.loads(begin.value.decode("ascii")))
        except ValueError:
            report.pairs_moved = 0
        return report

    # ------------------------------------------------------------------
    # Node join
    # ------------------------------------------------------------------

    def plan_join_donations(
        self, joining_instances: list[InstanceInfo]
    ) -> list[tuple[int, str]]:
        """Choose which partitions the joiner takes: ``(pid, dst_iid)``.

        "the new node can find the physical nodes with the most
        partitions, then join the ring as this heavily loaded node's
        neighbor and move some of the partitions from the 'busy' node to
        itself."  We take enough partitions from the most-loaded node to
        equalize, dealing them round-robin to the joiner's instances.
        """
        donor = self.membership.most_loaded_node()
        donor_pids = self.membership.partitions_of_node(donor)
        # Take the tail half (leaves both sides balanced).
        take = len(donor_pids) // 2
        if take == 0:
            return []
        chosen = donor_pids[-take:]
        return [
            (pid, joining_instances[i % len(joining_instances)].instance_id)
            for i, pid in enumerate(chosen)
        ]

    def join_node(
        self, node: NodeInfo, instances: list[InstanceInfo]
    ) -> Script:
        """Admit *node* (with its *instances*) and rebalance; returns the
        list of migration reports."""
        if not instances:
            raise MembershipError("a joining node must bring >= 1 instance")
        self.membership.add_node(node)
        for inst in instances:
            self.membership.add_instance(inst)
        donations = self.plan_join_donations(instances)
        reports: list[MigrationReport] = []
        for pid, dst in donations:
            report = yield from self.migrate_partition(pid, dst)
            reports.append(report)
        # Final broadcast so everyone sees the settled table.
        yield from self.broadcast_membership()
        return reports

    # ------------------------------------------------------------------
    # Planned departure
    # ------------------------------------------------------------------

    def retire_node(self, node_id: str) -> Script:
        """Gracefully drain *node_id* ("The managers, which will be
        departing, first migrate their partitions to neighboring nodes,
        and then continue to depart")."""
        if node_id not in self.membership.nodes:
            raise MembershipError(f"unknown node {node_id}")
        reports: list[MigrationReport] = []
        targets = [
            inst for inst in self._alive_instances() if inst.node_id != node_id
        ]
        if not targets:
            raise MembershipError("cannot retire the last alive node")
        ring = sorted(targets, key=lambda i: i.ring_position)
        i = 0
        for inst in self.membership.instances_on_node(node_id):
            for pid in self.membership.partitions_of_instance(inst.instance_id):
                dst = ring[i % len(ring)]
                i += 1
                report = yield from self.migrate_partition(pid, dst.instance_id)
                reports.append(report)
        for inst in self.membership.instances_on_node(node_id):
            self.membership.remove_instance(inst.instance_id)
        self.membership.remove_node(node_id)
        yield from self.broadcast_membership()
        return reports

    # ------------------------------------------------------------------
    # Failure repair
    # ------------------------------------------------------------------

    def repair_after_failure(self, dead_node_id: str) -> Script:
        """Reassign a dead node's partitions to their replicas and restore
        the replication level (§III.C "Node departures", §III.H).

        For each partition owned by the dead node, ownership moves to its
        first alive replica (which already holds the data).  The new owner
        then re-replicates the partition content to the next nodes on the
        ring so the configured replication level is maintained.
        """
        node = self.membership.nodes.get(dead_node_id)
        if node is None:
            raise MembershipError(f"unknown node {dead_node_id}")

        # Every partition whose pre-death replica chain included the dead
        # node (as owner *or* successor) lost one copy and needs
        # re-replication — reconstruct those chains as they stood while
        # the node was alive.
        depth = max(self.config.num_replicas, 1)
        affected: list[int] = []
        if self.config.num_replicas > 0:
            for pid in range(self.membership.num_partitions):
                chain = self.membership.replicas_for_partition(
                    pid, depth, assume_alive=dead_node_id
                )
                if any(c.node_id == dead_node_id for c in chain):
                    affected.append(pid)

        if node.alive:
            self.membership.mark_node_dead(dead_node_id)

        reassigned: list[int] = []
        for inst in self.membership.instances_on_node(dead_node_id):
            for pid in self.membership.partitions_of_instance(inst.instance_id):
                chain = self.membership.replicas_for_partition(
                    pid, max(self.config.num_replicas, 1)
                )
                survivor = next(
                    (
                        c
                        for c in chain[1:]
                        if self.membership.nodes[c.node_id].alive
                    ),
                    None,
                )
                if survivor is None:
                    # Data loss: no replica survives. Reassign to any alive
                    # instance so the key range stays routable (lookups
                    # will report KEY_NOT_FOUND).
                    alive = self._alive_instances()
                    if not alive:
                        continue
                    survivor = self.rng.choice(alive)
                self.membership.reassign_partition(pid, survivor.instance_id)
                reassigned.append(pid)

        yield from self.broadcast_membership()

        # Restore replication level: ask each affected partition's
        # (possibly new) owner for its content and push it to the new
        # replica chain.  Partitions where the dead node was only a
        # successor keep their owner but still need a fresh copy pushed
        # to whichever node replaced it in the chain.
        if self.config.num_replicas > 0:
            for pid in affected:
                owner = self.membership.owner_of_partition(pid)
                begin = yield PeerCall(
                    owner.address,
                    Request(
                        op=OpCode.MIGRATE_BEGIN,
                        request_id=self._request_id(),
                        partition=pid,
                    ),
                )
                if begin is None or begin.status != Status.OK:
                    continue
                # Immediately release the lock; we only needed the export.
                yield PeerCall(
                    owner.address,
                    Request(
                        op=OpCode.MIGRATE_COMMIT,
                        request_id=self._request_id(),
                        partition=pid,
                        value=b"abort",
                    ),
                    required=False,
                )
                chain = self.membership.replicas_for_partition(
                    pid, self.config.num_replicas
                )
                for replica in chain[1:]:
                    yield PeerCall(
                        replica.address,
                        Request(
                            op=OpCode.MIGRATE_DATA,
                            request_id=self._request_id(),
                            partition=pid,
                            value=begin.value,
                        ),
                        required=False,
                    )
        return reassigned
