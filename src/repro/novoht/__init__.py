"""NoVoHT: the Non-Volatile Hash Table persisting every ZHT instance.

Public surface:

* :class:`NoVoHT` — the store (put/get/remove/append, WAL + checkpoint
  persistence, bounded memory with spill-to-disk, log GC).
* :class:`NoVoHTStats` — per-store operation counters.
* :class:`WriteAheadLog` — the append-only mutation log (exposed for
  tests and tooling).
"""

from .novoht import NoVoHT, NoVoHTStats
from .wal import WriteAheadLog, encode_varint, decode_varint
from .checkpoint import read_checkpoint, write_checkpoint

__all__ = [
    "NoVoHT",
    "NoVoHTStats",
    "WriteAheadLog",
    "encode_varint",
    "decode_varint",
    "read_checkpoint",
    "write_checkpoint",
]
