"""Write-ahead log for NoVoHT.

NoVoHT "uses a log-based persistence mechanism with periodic
checkpointing" (§III.I).  Every mutation (put/remove/append) is appended
to this log before being applied in memory; recovery replays the log on
top of the most recent checkpoint.

Record wire format (little-endian):

    magic   u8   = 0xA7
    op      u8   (PUT=1, REMOVE=2, APPEND=3)
    klen    varint
    vlen    varint (0 for REMOVE)
    key     klen bytes
    value   vlen bytes
    crc32   u32  over everything above

A torn final record (power loss mid-append) fails either the magic, the
length decode, or the CRC, and replay stops cleanly at the last complete
record — this is exercised by the failure-injection tests.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import BinaryIO, Callable, Iterator

from ..core.errors import StoreError
from ..obs import REGISTRY

RECORD_MAGIC = 0xA7

OP_PUT = 1
OP_REMOVE = 2
OP_APPEND = 3

_OPS = (OP_PUT, OP_REMOVE, OP_APPEND)


def encode_varint(n: int) -> bytes:
    """LEB128 unsigned varint, as used by protocol buffers."""
    if n < 0:
        raise ValueError("varint must be non-negative")
    out = bytearray()
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at *offset*; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_record(op: int, key: bytes, value: bytes = b"") -> bytes:
    """Serialize one WAL record, including its trailing CRC."""
    if op not in _OPS:
        raise ValueError(f"unknown WAL op {op}")
    klen, vlen = len(key), len(value)
    if klen < 0x80 and vlen < 0x80:
        # Fast path: single-byte varints (identical wire format).
        body = bytes((RECORD_MAGIC, op, klen, vlen)) + key + value
    else:
        body = (
            bytes((RECORD_MAGIC, op))
            + encode_varint(klen)
            + encode_varint(vlen)
            + key
            + value
        )
    return body + struct.pack("<I", zlib.crc32(body))


def _read_exact(f: BinaryIO, n: int) -> bytes | None:
    data = f.read(n)
    if len(data) < n:
        return None
    return data


def iter_records(f: BinaryIO) -> Iterator[tuple[int, bytes, bytes]]:
    """Yield ``(op, key, value)`` for every complete record in *f*.

    Stops silently at the first torn or corrupt record — everything before
    it is valid, matching log-recovery semantics.
    """
    while True:
        header = _read_exact(f, 2)
        if header is None or header[0] != RECORD_MAGIC or header[1] not in _OPS:
            return
        op = header[1]
        # Varints are at most 10 bytes each for 64-bit lengths.
        lenbuf = f.read(20)
        try:
            klen, pos = decode_varint(lenbuf, 0)
            vlen, pos = decode_varint(lenbuf, pos)
        except ValueError:
            return
        payload_prefix = lenbuf[pos:]
        need = klen + vlen + 4 - len(payload_prefix)
        if need > 0:
            rest = _read_exact(f, need)
            if rest is None:
                return
            payload = payload_prefix + rest
        else:
            payload = payload_prefix[: klen + vlen + 4]
            extra = len(payload_prefix) - (klen + vlen + 4)
            if extra > 0:
                # Rewind over-read bytes belonging to the next record.
                f.seek(-extra, os.SEEK_CUR)
        key = payload[:klen]
        value = payload[klen : klen + vlen]
        (crc,) = struct.unpack_from("<I", payload, klen + vlen)
        body = header + lenbuf[:pos] + key + value
        if zlib.crc32(body) != crc:
            return
        yield op, key, value


class WriteAheadLog:
    """Append-only mutation log with replay and compaction support.

    ``opener`` customises how the append handle is opened — the fault
    injection shim (:mod:`repro.faults.files`) uses it to wrap the file
    and simulate fsync loss and torn tails; ``None`` is plain ``open``.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = False,
        opener: "Callable[[str, str], BinaryIO] | None" = None,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self._opener = opener
        self._file: BinaryIO | None = None
        #: Number of records appended since open/compaction (live + dead).
        self.record_count = 0

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> None:
        """Open (creating if needed) the log for appending."""
        if self._file is not None:
            return
        try:
            if self._opener is not None:
                self._file = self._opener(self.path, "ab")
            else:
                self._file = open(self.path, "ab")
        except OSError as exc:
            raise StoreError(f"cannot open WAL {self.path}: {exc}") from exc

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @property
    def is_open(self) -> bool:
        return self._file is not None

    # -- writing -------------------------------------------------------------

    def append(self, op: int, key: bytes, value: bytes = b"") -> None:
        """Durably append one mutation record."""
        if self._file is None:
            raise StoreError("WAL is not open")
        with REGISTRY.span("wal.append"):
            try:
                self._file.write(encode_record(op, key, value))
                self._file.flush()
                if self.fsync:
                    self._fsync()
                    REGISTRY.counter("wal.fsyncs").inc()
            except OSError as exc:
                raise StoreError(f"WAL append failed: {exc}") from exc
        self.record_count += 1
        REGISTRY.counter("wal.appends").inc()

    def append_many(self, records: list[tuple[int, bytes, bytes]]) -> None:
        """Durably append *records* with ONE write/flush/fsync (group
        commit).

        Each record is individually CRC-framed, so a torn tail inside the
        group drops only the incomplete suffix on replay — durability
        semantics are identical to per-record appends, but a batch of N
        mutations pays one fsync instead of N.
        """
        if not records:
            return
        if self._file is None:
            raise StoreError("WAL is not open")
        buf = bytearray()
        for op, key, value in records:
            buf += encode_record(op, key, value)
        with REGISTRY.span("wal.append"):
            try:
                self._file.write(bytes(buf))
                self._file.flush()
                if self.fsync:
                    self._fsync()
                    REGISTRY.counter("wal.fsyncs").inc()
            except OSError as exc:
                raise StoreError(f"WAL group append failed: {exc}") from exc
        self.record_count += len(records)
        REGISTRY.counter("wal.appends").inc(len(records))
        REGISTRY.counter("wal.group_commits").inc()
        REGISTRY.counter("wal.group_commit_records").inc(len(records))

    def _fsync(self) -> None:
        # Files providing their own fsync (the fault-injection shim, which
        # may deliberately lose the sync) override the os-level call.
        fsync = getattr(self._file, "fsync", None)
        if fsync is not None:
            fsync()
        else:
            os.fsync(self._file.fileno())

    # -- recovery / compaction ------------------------------------------------

    def replay(self) -> Iterator[tuple[int, bytes, bytes]]:
        """Yield all complete records currently in the log file.

        Streams straight off the file — records are never materialized as
        a list, so replaying a large un-checkpointed log costs O(1) extra
        memory instead of doubling the peak during recovery.
        ``record_count`` is updated as records are consumed.
        """
        self.record_count = 0
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as f:
            for record in iter_records(f):
                self.record_count += 1
                yield record

    def truncate(self) -> None:
        """Discard all records (called right after a checkpoint commits)."""
        self.close()
        with open(self.path, "wb"):
            pass
        self.record_count = 0
        self.open()

    def rewrite(self, live: Iterator[tuple[bytes, bytes]]) -> None:
        """Compact the log to exactly the *live* ``(key, value)`` pairs.

        Garbage collection per the paper: "garbage collection (how often to
        reclaim unused space on persistent storage)".  Written to a side
        file and atomically renamed so a crash mid-GC keeps the old log.
        """
        tmp = self.path + ".gc"
        try:
            with open(tmp, "wb") as f:
                count = 0
                for key, value in live:
                    f.write(encode_record(OP_PUT, key, value))
                    count += 1
                f.flush()
                os.fsync(f.fileno())
        except OSError as exc:
            raise StoreError(f"WAL GC failed: {exc}") from exc
        self.close()
        os.replace(tmp, self.path)
        self.record_count = count
        self.open()

    def size_bytes(self) -> int:
        if self._file is not None:
            self._file.flush()
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
