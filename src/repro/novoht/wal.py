"""Write-ahead log for NoVoHT.

NoVoHT "uses a log-based persistence mechanism with periodic
checkpointing" (§III.I).  Every mutation (put/remove/append) is appended
to this log before being applied in memory; recovery replays the log on
top of the most recent checkpoint.

Record wire format (little-endian):

    magic   u8   = 0xA7
    op      u8   (PUT=1, REMOVE=2, APPEND=3)
    klen    varint
    vlen    varint (0 for REMOVE)
    key     klen bytes
    value   vlen bytes
    crc32   u32  over everything above

A torn final record (power loss mid-append) fails either the magic, the
length decode, or the CRC, and replay stops cleanly at the last complete
record — this is exercised by the failure-injection tests.

The log file opens with a small **epoch header**::

    magic   5 bytes  b"ZWAL\\x01"
    epoch   u64le    bumped by every truncate/compaction
    crc32   u32      over magic + epoch

The epoch lets a checkpoint name the exact log prefix it covers
(``wal_epoch`` + byte offset): recovery replays only the uncovered
suffix when the epochs match, and falls back to a full replay when the
log was compacted after the checkpoint committed (the compacted log *is*
the uncovered suffix).  Headerless files (epoch 0) from earlier versions
replay unchanged.
"""

from __future__ import annotations

import os
import shutil
import struct
import zlib
from typing import BinaryIO, Callable, Iterator

from ..core.errors import StoreError
from ..obs import REGISTRY

RECORD_MAGIC = 0xA7

#: First byte 0x5A ≠ RECORD_MAGIC, so a headerless parser never mistakes
#: the header for a record (and vice versa).
WAL_HEADER_MAGIC = b"ZWAL\x01"
WAL_HEADER_LEN = len(WAL_HEADER_MAGIC) + 8 + 4


def encode_wal_header(epoch: int) -> bytes:
    body = WAL_HEADER_MAGIC + struct.pack("<Q", epoch)
    return body + struct.pack("<I", zlib.crc32(body))


def decode_wal_header(buf: bytes) -> int | None:
    """Return the epoch encoded in *buf*'s first bytes, or ``None`` if
    *buf* does not start with a valid header (legacy or torn file)."""
    if len(buf) < WAL_HEADER_LEN or not buf.startswith(WAL_HEADER_MAGIC):
        return None
    body = buf[: WAL_HEADER_LEN - 4]
    (crc,) = struct.unpack_from("<I", buf, WAL_HEADER_LEN - 4)
    if zlib.crc32(body) != crc:
        return None
    (epoch,) = struct.unpack_from("<Q", buf, len(WAL_HEADER_MAGIC))
    return epoch

OP_PUT = 1
OP_REMOVE = 2
OP_APPEND = 3

_OPS = (OP_PUT, OP_REMOVE, OP_APPEND)


def encode_varint(n: int) -> bytes:
    """LEB128 unsigned varint, as used by protocol buffers."""
    if n < 0:
        raise ValueError("varint must be non-negative")
    out = bytearray()
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at *offset*; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_record_into(
    buf: bytearray, op: int, key: bytes, value: bytes = b""
) -> None:
    """Append one WAL record (with trailing CRC) to *buf* in place.

    The zero-copy sibling of :func:`encode_record`: no intermediate
    ``bytes`` objects are built per record — the CRC is computed over a
    ``memoryview`` of the appended region.  Wire format is identical.
    """
    if op not in _OPS:
        raise ValueError(f"unknown WAL op {op}")
    start = len(buf)
    klen, vlen = len(key), len(value)
    if klen < 0x80 and vlen < 0x80:
        # Fast path: single-byte varints (identical wire format).
        buf += bytes((RECORD_MAGIC, op, klen, vlen))
    else:
        buf += bytes((RECORD_MAGIC, op))
        buf += encode_varint(klen)
        buf += encode_varint(vlen)
    buf += key
    buf += value
    crc = zlib.crc32(memoryview(buf)[start:])
    buf += struct.pack("<I", crc)


def encode_record(op: int, key: bytes, value: bytes = b"") -> bytes:
    """Serialize one WAL record, including its trailing CRC."""
    buf = bytearray()
    encode_record_into(buf, op, key, value)
    return bytes(buf)


def _read_exact(f: BinaryIO, n: int) -> bytes | None:
    data = f.read(n)
    if len(data) < n:
        return None
    return data


def iter_records(f: BinaryIO) -> Iterator[tuple[int, bytes, bytes]]:
    """Yield ``(op, key, value)`` for every complete record in *f*.

    Stops silently at the first torn or corrupt record — everything before
    it is valid, matching log-recovery semantics.
    """
    while True:
        header = _read_exact(f, 2)
        if header is None or header[0] != RECORD_MAGIC or header[1] not in _OPS:
            return
        op = header[1]
        # Varints are at most 10 bytes each for 64-bit lengths.
        lenbuf = f.read(20)
        try:
            klen, pos = decode_varint(lenbuf, 0)
            vlen, pos = decode_varint(lenbuf, pos)
        except ValueError:
            return
        payload_prefix = lenbuf[pos:]
        need = klen + vlen + 4 - len(payload_prefix)
        if need > 0:
            rest = _read_exact(f, need)
            if rest is None:
                return
            payload = payload_prefix + rest
        else:
            payload = payload_prefix[: klen + vlen + 4]
            extra = len(payload_prefix) - (klen + vlen + 4)
            if extra > 0:
                # Rewind over-read bytes belonging to the next record.
                f.seek(-extra, os.SEEK_CUR)
        key = payload[:klen]
        value = payload[klen : klen + vlen]
        (crc,) = struct.unpack_from("<I", payload, klen + vlen)
        body = header + lenbuf[:pos] + key + value
        if zlib.crc32(body) != crc:
            return
        yield op, key, value


class WriteAheadLog:
    """Append-only mutation log with replay and compaction support.

    ``opener`` customises how the append handle is opened — the fault
    injection shim (:mod:`repro.faults.files`) uses it to wrap the file
    and simulate fsync loss and torn tails; ``None`` is plain ``open``.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = False,
        opener: "Callable[[str, str], BinaryIO] | None" = None,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self._opener = opener
        self._file: BinaryIO | None = None
        #: Number of records appended since open/compaction (live + dead).
        self.record_count = 0
        #: Epoch of the current log file (0 = legacy headerless file).
        self.epoch = 0

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> None:
        """Open (creating if needed) the log for appending.

        A brand-new (empty) log gets an epoch header; an existing file
        keeps whatever epoch it carries (0 for legacy headerless logs).
        """
        if self._file is not None:
            return
        try:
            if self._opener is not None:
                self._file = self._opener(self.path, "ab")
            else:
                self._file = open(self.path, "ab")
            if os.path.getsize(self.path) == 0:
                self.epoch = self.epoch + 1 if self.epoch else 1
                self._file.write(encode_wal_header(self.epoch))
                self._file.flush()
            else:
                self.epoch = self.read_epoch()
        except OSError as exc:
            raise StoreError(f"cannot open WAL {self.path}: {exc}") from exc

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @property
    def is_open(self) -> bool:
        return self._file is not None

    # -- writing -------------------------------------------------------------

    def append(self, op: int, key: bytes, value: bytes = b"") -> None:
        """Durably append one mutation record."""
        if self._file is None:
            raise StoreError("WAL is not open")
        with REGISTRY.span("wal.append"):
            try:
                self._file.write(encode_record(op, key, value))
                self._file.flush()
                if self.fsync:
                    self._fsync()
                    REGISTRY.counter("wal.fsyncs").inc()
            except OSError as exc:
                raise StoreError(f"WAL append failed: {exc}") from exc
        self.record_count += 1
        REGISTRY.counter("wal.appends").inc()

    def append_many(self, records: list[tuple[int, bytes, bytes]]) -> None:
        """Durably append *records* with ONE write/flush/fsync (group
        commit).

        Each record is individually CRC-framed, so a torn tail inside the
        group drops only the incomplete suffix on replay — durability
        semantics are identical to per-record appends, but a batch of N
        mutations pays one fsync instead of N.
        """
        if not records:
            return
        if self._file is None:
            raise StoreError("WAL is not open")
        buf = bytearray()
        for op, key, value in records:
            encode_record_into(buf, op, key, value)
        with REGISTRY.span("wal.append"):
            try:
                self._file.write(buf)
                self._file.flush()
                if self.fsync:
                    self._fsync()
                    REGISTRY.counter("wal.fsyncs").inc()
            except OSError as exc:
                raise StoreError(f"WAL group append failed: {exc}") from exc
        self.record_count += len(records)
        REGISTRY.counter("wal.appends").inc(len(records))
        REGISTRY.counter("wal.group_commits").inc()
        REGISTRY.counter("wal.group_commit_records").inc(len(records))

    def _fsync(self) -> None:
        # Files providing their own fsync (the fault-injection shim, which
        # may deliberately lose the sync) override the os-level call.
        fsync = getattr(self._file, "fsync", None)
        if fsync is not None:
            fsync()
        else:
            os.fsync(self._file.fileno())

    # -- recovery / compaction ------------------------------------------------

    def read_epoch(self) -> int:
        """Read the epoch header off the on-disk file (0 if headerless or
        missing); updates :attr:`epoch`."""
        try:
            with open(self.path, "rb") as f:
                head = f.read(WAL_HEADER_LEN)
        except OSError:
            return self.epoch
        self.epoch = decode_wal_header(head) or 0
        return self.epoch

    def replay(
        self, start_offset: int | None = None
    ) -> Iterator[tuple[int, bytes, bytes]]:
        """Yield all complete records currently in the log file.

        Streams straight off the file — records are never materialized as
        a list, so replaying a large un-checkpointed log costs O(1) extra
        memory instead of doubling the peak during recovery.
        ``record_count`` is updated as records are consumed.

        ``start_offset`` (a byte position previously returned by
        :meth:`tail_position`) skips the prefix a checkpoint already
        covers; callers must first confirm the checkpoint's ``wal_epoch``
        matches :meth:`read_epoch`.  A start past EOF yields nothing
        (the un-covered suffix was lost to a crash before it was synced).
        """
        self.record_count = 0
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as f:
            head = f.read(WAL_HEADER_LEN)
            epoch = decode_wal_header(head)
            self.epoch = epoch or 0
            if epoch is None:
                f.seek(0)
            if start_offset is not None and start_offset > f.tell():
                f.seek(start_offset)
            for record in iter_records(f):
                self.record_count += 1
                yield record

    def tail_position(self) -> tuple[int, int, int]:
        """``(epoch, byte_offset, record_count)`` of the current log tail.

        The caller must hold whatever lock serializes appends; the
        returned offset is then a stable record boundary naming the
        prefix that a snapshot taken at the same moment covers.
        """
        if self._file is not None:
            self._file.flush()
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return self.epoch, size, self.record_count

    def truncate(self) -> None:
        """Discard all records (bumps the epoch so any checkpoint offset
        naming the old file can no longer match)."""
        self.close()
        new_epoch = self.epoch + 1
        try:
            with open(self.path, "wb") as f:
                f.write(encode_wal_header(new_epoch))
                f.flush()
                os.fsync(f.fileno())
        except OSError as exc:
            raise StoreError(f"WAL truncate failed: {exc}") from exc
        self.epoch = new_epoch
        self.record_count = 0
        self.open()

    def drop_covered(self, upto_offset: int, covered_records: int) -> None:
        """Drop the log prefix up to *upto_offset*, keeping the suffix.

        This is the commit step of a non-blocking checkpoint: the prefix
        is covered by the snapshot that just landed, while the suffix
        holds mutations that raced with the (unlocked) snapshot write and
        must survive.  The suffix is spliced after a fresh header (epoch
        + 1) in a side file and atomically renamed, so a crash at any
        point keeps either the old full log (epoch still matching the
        new checkpoint's covered prefix) or the new suffix-only log.

        The caller must hold the lock that serializes appends — the
        splice is bounded by the handful of records that landed during
        the snapshot write, not the table size.
        """
        if self._file is not None:
            self._file.flush()
        tmp = self.path + ".gc"
        new_epoch = self.epoch + 1
        try:
            with open(tmp, "wb") as out:
                out.write(encode_wal_header(new_epoch))
                with open(self.path, "rb") as src:
                    src.seek(upto_offset)
                    shutil.copyfileobj(src, out)
                out.flush()
                os.fsync(out.fileno())
        except OSError as exc:
            try:
                os.unlink(tmp)  # failed splice must not leave a .gc corpse
            except OSError:
                pass
            raise StoreError(f"WAL compaction failed: {exc}") from exc
        self.close()
        os.replace(tmp, self.path)
        self.epoch = new_epoch
        self.record_count = max(0, self.record_count - covered_records)
        self.open()

    def rewrite(self, live: Iterator[tuple[bytes, bytes]]) -> None:
        """Compact the log to exactly the *live* ``(key, value)`` pairs.

        Garbage collection per the paper: "garbage collection (how often to
        reclaim unused space on persistent storage)".  Written to a side
        file and atomically renamed so a crash mid-GC keeps the old log.
        """
        tmp = self.path + ".gc"
        new_epoch = self.epoch + 1
        try:
            with open(tmp, "wb") as f:
                f.write(encode_wal_header(new_epoch))
                count = 0
                for key, value in live:
                    f.write(encode_record(OP_PUT, key, value))
                    count += 1
                f.flush()
                os.fsync(f.fileno())
        except OSError as exc:
            try:
                os.unlink(tmp)  # failed GC must not leave a .gc corpse
            except OSError:
                pass
            raise StoreError(f"WAL GC failed: {exc}") from exc
        self.close()
        os.replace(tmp, self.path)
        self.epoch = new_epoch
        self.record_count = count
        self.open()

    def size_bytes(self) -> int:
        if self._file is not None:
            self._file.flush()
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
