"""Checkpoint (snapshot) files for NoVoHT.

A checkpoint is a point-in-time serialization of the whole table.  After
a checkpoint commits, the WAL prefix it covers can be dropped; recovery
is "load latest checkpoint, then replay the uncovered WAL suffix".

File format (v2):

    header     8 bytes  b"NOVOHT\\x02\\x00"
    wal_epoch  varint   epoch of the WAL file the snapshot was cut against
    wal_offset varint   byte offset of the WAL tail at snapshot time
    count      varint   number of pairs
    pairs      count ×  (klen varint, vlen varint, key, value)
    crc32      u32      over everything above

``(wal_epoch, wal_offset)`` name the exact log prefix the snapshot
covers: recovery skips it when the on-disk WAL still carries that epoch
(crash between checkpoint commit and WAL compaction) and replays the
whole log otherwise (the compacted log *is* the uncovered suffix).  This
is what makes it safe to write the snapshot outside the store lock while
mutations keep appending: nothing is ever truncated that the snapshot
did not capture, and nothing captured is ever replayed twice (replaying
covered ``append`` records would duplicate fragments).

v1 files (``NOVOHT\\x01\\x00``, no wal metadata) are still readable.

Checkpoints are written to a temp file and atomically renamed, so a crash
mid-checkpoint leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterable, Iterator

from ..core.errors import StoreError
from .wal import decode_varint, encode_varint

CHECKPOINT_MAGIC_V1 = b"NOVOHT\x01\x00"
CHECKPOINT_MAGIC = b"NOVOHT\x02\x00"


def write_checkpoint(
    path: str,
    pairs: Iterable[tuple[bytes, bytes]],
    *,
    wal_epoch: int = 0,
    wal_offset: int = 0,
) -> int:
    """Atomically write *pairs* to *path*; return the number written."""
    tmp = path + ".tmp"
    crc = zlib.crc32(CHECKPOINT_MAGIC)
    count = 0
    body_chunks: list[bytes] = []
    for key, value in pairs:
        chunk = encode_varint(len(key)) + encode_varint(len(value)) + key + value
        body_chunks.append(chunk)
        count += 1
    meta_bytes = (
        encode_varint(wal_epoch) + encode_varint(wal_offset) + encode_varint(count)
    )
    try:
        with open(tmp, "wb") as f:
            f.write(CHECKPOINT_MAGIC)
            f.write(meta_bytes)
            crc = zlib.crc32(meta_bytes, crc)
            for chunk in body_chunks:
                f.write(chunk)
                crc = zlib.crc32(chunk, crc)
            f.write(struct.pack("<I", crc))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)  # don't leave a half-written .tmp behind
        except OSError:
            pass
        raise StoreError(f"checkpoint write failed: {exc}") from exc
    return count


def checkpoint_meta(path: str) -> tuple[int, int] | None:
    """``(wal_epoch, wal_offset)`` recorded in the checkpoint at *path*.

    ``None`` for a missing, v1, or unparseable file — the caller then
    falls back to a full WAL replay, which is always safe for v1 files
    (they were written with the WAL truncated under the same lock).
    """
    try:
        with open(path, "rb") as f:
            head = f.read(len(CHECKPOINT_MAGIC) + 30)
    except OSError:
        return None
    if not head.startswith(CHECKPOINT_MAGIC):
        return None
    try:
        wal_epoch, pos = decode_varint(head, len(CHECKPOINT_MAGIC))
        wal_offset, _pos = decode_varint(head, pos)
    except ValueError:
        return None
    return wal_epoch, wal_offset


def read_checkpoint(path: str) -> Iterator[tuple[bytes, bytes]]:
    """Yield all pairs from the checkpoint at *path*.

    Raises :class:`StoreError` on a corrupt or truncated checkpoint (a
    checkpoint is written atomically, so unlike the WAL, partial content
    is a real error, not an expected crash artifact).
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return
    except OSError as exc:
        raise StoreError(f"checkpoint read failed: {exc}") from exc

    v2 = data.startswith(CHECKPOINT_MAGIC)
    if len(data) < len(CHECKPOINT_MAGIC) + 4 or not (
        v2 or data.startswith(CHECKPOINT_MAGIC_V1)
    ):
        raise StoreError(f"corrupt checkpoint {path}: bad header")
    body, crc_bytes = data[:-4], data[-4:]
    if zlib.crc32(body) != struct.unpack("<I", crc_bytes)[0]:
        raise StoreError(f"corrupt checkpoint {path}: CRC mismatch")

    pos = len(CHECKPOINT_MAGIC)
    try:
        if v2:
            _wal_epoch, pos = decode_varint(body, pos)
            _wal_offset, pos = decode_varint(body, pos)
        count, pos = decode_varint(body, pos)
        for _ in range(count):
            klen, pos = decode_varint(body, pos)
            vlen, pos = decode_varint(body, pos)
            key = body[pos : pos + klen]
            pos += klen
            value = body[pos : pos + vlen]
            pos += vlen
            if len(key) != klen or len(value) != vlen:
                raise ValueError("truncated pair")
            yield key, value
    except ValueError as exc:
        raise StoreError(f"corrupt checkpoint {path}: {exc}") from exc
