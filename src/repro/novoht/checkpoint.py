"""Checkpoint (snapshot) files for NoVoHT.

A checkpoint is a point-in-time serialization of the whole table.  After
a checkpoint commits, the write-ahead log can be truncated; recovery is
"load latest checkpoint, then replay WAL".

File format:

    header   8 bytes  b"NOVOHT\\x01\\x00"
    count    varint   number of pairs
    pairs    count ×  (klen varint, vlen varint, key, value)
    crc32    u32      over everything above

Checkpoints are written to a temp file and atomically renamed, so a crash
mid-checkpoint leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterable, Iterator

from ..core.errors import StoreError
from .wal import decode_varint, encode_varint

CHECKPOINT_MAGIC = b"NOVOHT\x01\x00"


def write_checkpoint(path: str, pairs: Iterable[tuple[bytes, bytes]]) -> int:
    """Atomically write *pairs* to *path*; return the number written."""
    tmp = path + ".tmp"
    crc = zlib.crc32(CHECKPOINT_MAGIC)
    count = 0
    body_chunks: list[bytes] = []
    for key, value in pairs:
        chunk = encode_varint(len(key)) + encode_varint(len(value)) + key + value
        body_chunks.append(chunk)
        count += 1
    count_bytes = encode_varint(count)
    try:
        with open(tmp, "wb") as f:
            f.write(CHECKPOINT_MAGIC)
            f.write(count_bytes)
            crc = zlib.crc32(count_bytes, crc)
            for chunk in body_chunks:
                f.write(chunk)
                crc = zlib.crc32(chunk, crc)
            f.write(struct.pack("<I", crc))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise StoreError(f"checkpoint write failed: {exc}") from exc
    return count


def read_checkpoint(path: str) -> Iterator[tuple[bytes, bytes]]:
    """Yield all pairs from the checkpoint at *path*.

    Raises :class:`StoreError` on a corrupt or truncated checkpoint (a
    checkpoint is written atomically, so unlike the WAL, partial content
    is a real error, not an expected crash artifact).
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return
    except OSError as exc:
        raise StoreError(f"checkpoint read failed: {exc}") from exc

    if len(data) < len(CHECKPOINT_MAGIC) + 4 or not data.startswith(CHECKPOINT_MAGIC):
        raise StoreError(f"corrupt checkpoint {path}: bad header")
    body, crc_bytes = data[:-4], data[-4:]
    if zlib.crc32(body) != struct.unpack("<I", crc_bytes)[0]:
        raise StoreError(f"corrupt checkpoint {path}: CRC mismatch")

    pos = len(CHECKPOINT_MAGIC)
    try:
        count, pos = decode_varint(body, pos)
        for _ in range(count):
            klen, pos = decode_varint(body, pos)
            vlen, pos = decode_varint(body, pos)
            key = body[pos : pos + klen]
            pos += klen
            value = body[pos : pos + vlen]
            pos += vlen
            if len(key) != klen or len(value) != vlen:
                raise ValueError("truncated pair")
            yield key, value
    except ValueError as exc:
        raise StoreError(f"corrupt checkpoint {path}: {exc}") from exc
