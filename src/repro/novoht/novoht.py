"""NoVoHT — Non-Volatile Hash Table.

The persistent key/value store underneath every ZHT instance (§III.I).
Design points reproduced from the paper:

* **In-memory map, log-based persistence.** All pairs live in memory for
  constant-time lookups ("Since all key-value pairs are kept in memory, it
  lends itself to low latency in lookups when compared to other persistent
  hash maps ... which are disk-based"); every mutation is appended to a
  write-ahead log before being applied.
* **Periodic checkpointing.** Every ``checkpoint_interval_ops`` logged
  mutations, the table is snapshotted and the WAL truncated.
* **Garbage collection.** When the fraction of dead (overwritten/removed)
  WAL records exceeds ``gc_dead_ratio``, the log is compacted to the live
  set.
* **Bounded memory.** ``max_memory_pairs`` caps how many values stay in
  RAM ("By tuning the number of Key-Value pairs that are allowed stay in
  memory, users can achieve the balance between performance and memory
  consumption"); excess values spill to an overflow file and are read
  back on demand.
* **``append``.** Appends a byte string to an existing value under a
  local lock — the primitive that gives ZHT lock-free *distributed*
  concurrent modification.

Keys and values are ``bytes``.  The store is safe for concurrent use from
multiple threads (one coarse lock; ZHT servers are single-threaded event
loops, so this lock is uncontended in normal operation).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import BinaryIO, Callable, Iterator

from ..core.errors import KeyNotFound, StoreError
from ..obs import REGISTRY
from .checkpoint import checkpoint_meta, read_checkpoint, write_checkpoint
from .wal import OP_APPEND, OP_PUT, OP_REMOVE, WriteAheadLog


@dataclass
class NoVoHTStats:
    """Operation and persistence counters for one store."""

    puts: int = 0
    gets: int = 0
    removes: int = 0
    appends: int = 0
    checkpoints: int = 0
    gc_runs: int = 0
    spilled_reads: int = 0
    #: WAL records that are known-dead (overwritten or removed keys).
    dead_records: int = 0


class _Spilled:
    """Marker for a value that lives in the overflow file, not RAM."""

    __slots__ = ("offset", "length")

    def __init__(self, offset: int, length: int) -> None:
        self.offset = offset
        self.length = length


class NoVoHT:
    """A persistent hash map with put/get/remove/append.

    Class attribute ``_GC_MIN_RECORDS`` bounds how small a WAL is worth
    compacting — below it, GC overhead exceeds the space it reclaims
    (tests that exercise GC lower it).

    Parameters
    ----------
    path:
        Directory for persistence files (``novoht.wal``, ``novoht.ckpt``,
        ``novoht.ovf``).  ``None`` gives a volatile, memory-only table
        (the paper's "NoVoHT no persistence" configuration in Figure 6).
    checkpoint_interval_ops:
        Snapshot + truncate the WAL after this many mutations (0 = never).
    gc_dead_ratio:
        Compact the WAL when dead records exceed this fraction (checked at
        mutation time; only meaningful between checkpoints).
    max_memory_pairs:
        Maximum number of values kept in RAM; 0 or ``None`` = unlimited.
    initial_capacity / resize_factor:
        NoVoHT's "size" and "re-size rate" knobs.  CPython's dict manages
        its own buckets, so these are advisory here: they pre-size the
        spill threshold bookkeeping and are reported in :meth:`info`.
    fsync:
        fsync the WAL on every mutation (durability vs throughput).
    wal_opener:
        Optional ``(path, mode) -> file`` factory for the WAL's append
        handle; the fault-injection shim uses it to simulate crashes
        with lost fsyncs and torn tails.
    """

    #: Minimum WAL records before automatic GC is considered.
    _GC_MIN_RECORDS = 4096

    def __init__(
        self,
        path: str | None = None,
        *,
        checkpoint_interval_ops: int = 10_000,
        gc_dead_ratio: float = 0.5,
        max_memory_pairs: int | None = None,
        initial_capacity: int = 1024,
        resize_factor: float = 2.0,
        fsync: bool = False,
        wal_opener: "Callable[[str, str], BinaryIO] | None" = None,
    ) -> None:
        if checkpoint_interval_ops < 0:
            raise ValueError("checkpoint_interval_ops must be >= 0")
        if not 0.0 <= gc_dead_ratio <= 1.0:
            raise ValueError("gc_dead_ratio must be in [0, 1]")
        if max_memory_pairs is not None and max_memory_pairs < 0:
            raise ValueError("max_memory_pairs must be >= 0")
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        if resize_factor <= 1.0:
            raise ValueError("resize_factor must be > 1.0")

        self._map: dict[bytes, bytes | _Spilled] = {}  # guarded-by: _lock
        self._lock = threading.RLock()
        #: Serializes checkpoint/GC passes; waiters release _lock while
        #: a pass's unlocked snapshot write is in flight.
        self._maint_cond = threading.Condition(self._lock)
        self._maint_busy = False  # guarded-by: _lock
        self._maint_pending: str | None = None  # guarded-by: _lock
        #: When set (``set_maintenance_executor``), due maintenance hops
        #: to this submit callable instead of running on the mutating
        #: thread — an event-loop server must not serialize the whole
        #: table on its selector thread.
        self._maint_submit: Callable[[Callable[[], None]], object] | None = None
        self.stats = NoVoHTStats()
        self.checkpoint_interval_ops = checkpoint_interval_ops
        self.gc_dead_ratio = gc_dead_ratio
        self.max_memory_pairs = max_memory_pairs or 0
        self.initial_capacity = initial_capacity
        self.resize_factor = resize_factor
        self._ops_since_checkpoint = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

        self.path = path
        self._wal: WriteAheadLog | None = None
        self._ckpt_path: str | None = None
        self._ovf_path: str | None = None
        self._ovf_file = None  # guarded-by: _lock
        self._ovf_garbage = 0  # guarded-by: _lock

        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._ckpt_path = os.path.join(path, "novoht.ckpt")
            self._ovf_path = os.path.join(path, "novoht.ovf")
            self._wal = WriteAheadLog(
                os.path.join(path, "novoht.wal"), fsync=fsync, opener=wal_opener
            )
            self._recover()
            self._wal.open()

    @property
    def lock(self) -> threading.RLock:
        """The store's mutation lock (reentrant).

        Callers that must make a store mutation atomic with bookkeeping
        of their own — e.g. the server core pairing an apply with a
        replication-order ticket — hold this around both; the store's
        methods re-acquire it safely.
        """
        return self._lock

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:  # lint: single-threaded (construction only)
        """Rebuild the in-memory map from checkpoint + WAL replay.

        The checkpoint names the WAL prefix it covers (epoch + offset);
        when the on-disk log still carries that epoch — a crash landed
        between the checkpoint commit and the WAL compaction — replay
        starts past the covered prefix instead of re-applying it (covered
        ``append`` records would otherwise duplicate their fragments).
        An epoch mismatch means the log was compacted after the
        checkpoint committed, so the whole log is the uncovered suffix.
        """
        assert self._wal is not None and self._ckpt_path is not None
        for key, value in read_checkpoint(self._ckpt_path):
            self._map[key] = value
        meta = checkpoint_meta(self._ckpt_path)
        wal_epoch = self._wal.read_epoch()
        start_offset = None
        if meta is not None and wal_epoch and meta[0] == wal_epoch:
            start_offset = meta[1]
        for op, key, value in self._wal.replay(start_offset=start_offset):
            if op == OP_PUT:
                self._map[key] = value
            elif op == OP_REMOVE:
                self._map.pop(key, None)
            elif op == OP_APPEND:
                old = self._map.get(key)
                if isinstance(old, bytes):
                    self._map[key] = old + value
                else:
                    self._map[key] = value
        # The overflow file from a previous run is invalidated by recovery
        # (everything replays into RAM); start it fresh.
        if self._ovf_path and os.path.exists(self._ovf_path):
            os.remove(self._ovf_path)
        self._enforce_memory_bound()

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite *key* with *value*."""
        self._check_kv(key, value)
        with REGISTRY.span("novoht.put"), self._lock:
            self._ensure_open()
            if key in self._map:
                self.stats.dead_records += 1
            if self._wal is not None:
                self._wal.append(OP_PUT, key, value)
            self._map[key] = value
            self.stats.puts += 1
            REGISTRY.counter("novoht.puts").inc()
            maint = self._after_mutation()
        self._run_maintenance(maint)

    def get(self, key: bytes) -> bytes:
        """Return the value for *key*; raise :class:`KeyNotFound` if absent."""
        self._check_key(key)
        with REGISTRY.span("novoht.get"), self._lock:
            self._ensure_open()
            self.stats.gets += 1
            REGISTRY.counter("novoht.gets").inc()
            try:
                value = self._map[key]
            except KeyError:
                raise KeyNotFound(repr(key)) from None
            if isinstance(value, _Spilled):
                value = self._load_spilled(key, value)
            return value

    def remove(self, key: bytes) -> None:
        """Delete *key*; raise :class:`KeyNotFound` if absent."""
        self._check_key(key)
        with REGISTRY.span("novoht.remove"), self._lock:
            self._ensure_open()
            if key not in self._map:
                raise KeyNotFound(repr(key))
            if self._wal is not None:
                self._wal.append(OP_REMOVE, key)
            old = self._map.pop(key)
            if isinstance(old, _Spilled):
                self._ovf_garbage += old.length
            self.stats.removes += 1
            self.stats.dead_records += 2  # the put and the remove record
            REGISTRY.counter("novoht.removes").inc()
            maint = self._after_mutation()
        self._run_maintenance(maint)

    def append(self, key: bytes, value: bytes) -> None:
        """Append *value* to the value stored at *key*.

        If *key* is absent, behaves like :meth:`put` (matching ZHT, where
        the first append creates the entry — FusionFS relies on this when
        the first file is created in a directory).  Runs under the store's
        local lock: "simple local locks are still needed to prevent
        multiple threads from concurrently modifying the same memory
        location".
        """
        self._check_kv(key, value)
        with REGISTRY.span("novoht.append"), self._lock:
            self._ensure_open()
            if self._wal is not None:
                self._wal.append(OP_APPEND, key, value)
            old = self._map.get(key)
            if old is None:
                self._map[key] = value
            else:
                if isinstance(old, _Spilled):
                    old = self._load_spilled(key, old)
                self._map[key] = old + value
                self.stats.dead_records += 1
            self.stats.appends += 1
            REGISTRY.counter("novoht.appends").inc()
            maint = self._after_mutation()
        self._run_maintenance(maint)

    def apply_batch(
        self, ops: list[tuple[str, bytes, bytes]]
    ) -> list[tuple[bool, bytes | None]]:
        """Apply a batch of operations with ONE WAL group commit.

        *ops* is a list of ``(kind, key, value)`` where ``kind`` is one of
        ``"put"``, ``"get"``, ``"remove"``, ``"append"`` (``value`` is
        ignored for get/remove).  Returns one ``(ok, value)`` per op, in
        order: ``ok`` is ``False`` only for a get/remove of a missing key;
        ``value`` is the looked-up bytes for a successful get, else
        ``None``.

        Semantics are identical to applying the ops sequentially — same
        results, same final map — but all WAL records land in a single
        write/flush/fsync (:meth:`WriteAheadLog.append_many`), so a batch
        of N mutations costs one fsync.  On crash, a torn tail drops only
        the incomplete suffix of the group; since the batch is only
        acknowledged after the group commit returns, acked batches are as
        durable as acked single ops.
        """
        results: list[tuple[bool, bytes | None]] = []
        wal_records: list[tuple[int, bytes, bytes]] = []
        maint: str | None = None
        with REGISTRY.span("novoht.apply_batch"), self._lock:
            self._ensure_open()
            for kind, key, value in ops:
                if kind == "get":
                    self._check_key(key)
                else:
                    self._check_kv(key, value)
                if kind == "put":
                    if key in self._map:
                        self.stats.dead_records += 1
                    wal_records.append((OP_PUT, key, value))
                    self._map[key] = value
                    self.stats.puts += 1
                    results.append((True, None))
                elif kind == "get":
                    self.stats.gets += 1
                    found = self._map.get(key)
                    if found is None:
                        results.append((False, None))
                    else:
                        if isinstance(found, _Spilled):
                            found = self._load_spilled(key, found)
                        results.append((True, found))
                elif kind == "remove":
                    if key not in self._map:
                        results.append((False, None))
                        continue
                    wal_records.append((OP_REMOVE, key, b""))
                    old = self._map.pop(key)
                    if isinstance(old, _Spilled):
                        self._ovf_garbage += old.length
                    self.stats.removes += 1
                    self.stats.dead_records += 2
                    results.append((True, None))
                elif kind == "append":
                    wal_records.append((OP_APPEND, key, value))
                    old = self._map.get(key)
                    if old is None:
                        self._map[key] = value
                    else:
                        if isinstance(old, _Spilled):
                            old = self._load_spilled(key, old)
                        self._map[key] = old + value
                        self.stats.dead_records += 1
                    self.stats.appends += 1
                    results.append((True, None))
                else:
                    raise ValueError(f"unknown batch op kind {kind!r}")
            if self._wal is not None and wal_records:
                self._wal.append_many(wal_records)
            counts: dict[str, int] = {}
            for kind, _key, _value in ops:
                counts[kind] = counts.get(kind, 0) + 1
            for kind, n in counts.items():
                REGISTRY.counter(f"novoht.{kind}s").inc(n)
            if wal_records:
                maint = self._after_mutations(len(wal_records))
            else:
                self._enforce_memory_bound()
        self._run_maintenance(maint)
        return results

    def contains(self, key: bytes) -> bool:
        with self._lock:
            return key in self._map

    def __contains__(self, key: bytes) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)

    def keys(self) -> list[bytes]:
        """Snapshot of all keys (used by partition migration)."""
        with self._lock:
            return list(self._map.keys())

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Snapshot iterator over ``(key, value)`` pairs.

        Spilled values are faulted in, so the iterator yields real bytes.
        """
        with self._lock:
            keys = list(self._map.keys())
        for key in keys:
            with self._lock:
                value = self._map.get(key)
                if value is None:
                    continue
                if isinstance(value, _Spilled):
                    value = self._load_spilled(key, value)
            yield key, value

    # ------------------------------------------------------------------
    # Persistence management
    # ------------------------------------------------------------------

    def checkpoint(self, *, wait: bool = True) -> None:
        """Snapshot the table and drop the covered WAL prefix.

        The expensive full-table serialization + fsync runs **outside**
        the store lock: the table is snapshotted under the lock, written
        while concurrent put/get/remove proceed, then the WAL prefix the
        snapshot covers is dropped under a brief re-acquire.  Mutations
        that land mid-write stay in the WAL suffix and survive.

        ``wait=False`` returns immediately if another checkpoint/GC pass
        is already in flight (the automatic maintenance path);
        ``wait=True`` queues behind it and then runs its own pass, so an
        explicit ``checkpoint()``/``flush()`` always covers every
        mutation that preceded the call.
        """
        self._checkpoint_impl("checkpoint", wait=wait)

    def gc(self, *, wait: bool = True) -> None:
        """Reclaim dead WAL records.

        Delegates to the checkpoint pass: compacting the log *to the live
        puts alone* (the old implementation) silently dropped ``remove``
        records that a key present in an older checkpoint still needed —
        crash recovery would resurrect the key.  A checkpoint supersedes
        the whole log, so the compacted result is a fresh snapshot plus
        an (empty) suffix, and removals stay removed.
        """
        if self._wal is None:
            return
        self._checkpoint_impl("gc", wait=wait)

    def _checkpoint_impl(self, kind: str, *, wait: bool) -> None:
        if self._wal is None or self._ckpt_path is None:
            return
        with REGISTRY.span(f"novoht.{kind}"):
            with self._lock:
                while self._maint_busy:
                    if not wait:
                        return
                    # Condition.wait releases _lock in full (even when
                    # held reentrantly it re-balances), so the in-flight
                    # pass can take the lock to commit.
                    self._maint_cond.wait()
                if not self._wal.is_open:
                    return
                self._maint_busy = True
                pairs = self._snapshot_pairs()
                _epoch, covered_offset, covered_records = self._wal.tail_position()
                covered_dead = self.stats.dead_records
                self._ops_since_checkpoint = 0
            committed = False
            try:
                # No lock held: concurrent mutations append to the WAL
                # suffix past covered_offset and edit the live map; both
                # are outside what this snapshot claims to cover.
                write_checkpoint(
                    self._ckpt_path,
                    pairs,
                    wal_epoch=_epoch,
                    wal_offset=covered_offset,
                )
                committed = True
            finally:
                with self._lock:
                    if committed:
                        self._wal.drop_covered(covered_offset, covered_records)
                        self.stats.dead_records = max(
                            0, self.stats.dead_records - covered_dead
                        )
                        if kind == "gc":
                            self.stats.gc_runs += 1
                            REGISTRY.counter("novoht.gc_runs").inc()
                        else:
                            self.stats.checkpoints += 1
                            REGISTRY.counter("novoht.checkpoints").inc()
                    self._maint_busy = False
                    self._maint_cond.notify_all()

    def _snapshot_pairs(self) -> list[tuple[bytes, bytes]]:  # holds-lock: _lock
        """Materialize the live ``(key, value)`` pairs for a snapshot.

        Spilled values are read without promoting them back to RAM — a
        snapshot is a read-only observer and must not churn the memory
        bound while it holds the lock.
        """
        pairs: list[tuple[bytes, bytes]] = []
        for key, value in self._map.items():
            if isinstance(value, _Spilled):
                value = self._read_spilled(key, value)
            pairs.append((key, value))
        return pairs

    def flush(self) -> None:
        """Force a checkpoint if persistence is enabled."""
        self.checkpoint()

    def close(self) -> None:
        """Checkpoint (if persistent) and release file handles."""
        with self._lock:
            # Checked under the lock: two racing closers would otherwise
            # both pass an unlocked fast-path test and double-close the
            # WAL and overflow handles.
            if self._closed:
                return
            self._closed = True
        # The final checkpoint runs outside the lock like any other; new
        # mutations are already rejected by _ensure_open, and wait=True
        # queues behind (then supersedes) any in-flight pass.
        if self._wal is not None:
            self.checkpoint()
        with self._lock:
            if self._wal is not None:
                self._wal.close()
            if self._ovf_file is not None:
                self._ovf_file.close()
                self._ovf_file = None

    def __enter__(self) -> "NoVoHT":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def info(self) -> dict:
        """Structural information (sizes, knobs, file sizes)."""
        with self._lock:
            in_ram = sum(
                1 for v in self._map.values() if not isinstance(v, _Spilled)
            )
            return {
                "pairs": len(self._map),
                "pairs_in_memory": in_ram,
                "pairs_spilled": len(self._map) - in_ram,
                "persistent": self._wal is not None,
                "wal_bytes": self._wal.size_bytes() if self._wal else 0,
                "wal_records": self._wal.record_count if self._wal else 0,
                "initial_capacity": self.initial_capacity,
                "resize_factor": self.resize_factor,
                "max_memory_pairs": self.max_memory_pairs,
            }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:  # holds-lock: _lock
        if self._closed:
            raise StoreError("NoVoHT is closed")

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError(f"key must be bytes, got {type(key).__name__}")

    @classmethod
    def _check_kv(cls, key: bytes, value: bytes) -> None:
        cls._check_key(key)
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"value must be bytes, got {type(value).__name__}")

    def _after_mutation(self) -> str | None:  # holds-lock: _lock
        return self._after_mutations(1)

    def _after_mutations(self, n: int) -> str | None:  # holds-lock: _lock
        """Post-mutation bookkeeping; returns the maintenance pass that is
        now due (``"checkpoint"`` / ``"gc"`` / ``None``).

        The pass itself must run *after* the caller releases ``_lock``
        (:meth:`_run_maintenance`) — running it here would hold the lock
        across the full-table disk write, stalling every concurrent op on
        the store for the duration.
        """
        self._ops_since_checkpoint += n
        self._enforce_memory_bound()
        if self._wal is None:
            return None
        if (
            self.checkpoint_interval_ops
            and self._ops_since_checkpoint >= self.checkpoint_interval_ops
        ):
            return "checkpoint"
        if (
            self._wal.record_count >= self._GC_MIN_RECORDS
            and self.stats.dead_records
            >= self.gc_dead_ratio * self._wal.record_count
        ):
            return "gc"
        return None

    def _run_maintenance(self, kind: str | None) -> None:
        """Run (or defer) a due maintenance pass, lock not held by us.

        Callers that wrap store mutations in ``store.lock`` themselves
        (the server core pairs an apply with a replication ticket) still
        hold the reentrant lock here; starting the pass now would drag
        the lock across the snapshot write.  For them the pass is parked
        and picked up by :meth:`run_pending_maintenance` once they
        release the lock.
        """
        if kind is not None:
            with self._lock:
                if self._maint_pending is None:
                    self._maint_pending = kind
        if self._lock_held_by_caller():
            return
        self.run_pending_maintenance()

    def set_maintenance_executor(
        self, submit: Callable[[Callable[[], None]], object] | None
    ) -> None:
        """Route due maintenance passes through *submit* (e.g. a thread
        pool's ``submit``) instead of the mutating thread.

        An event-loop server applies store mutations inline on its
        selector thread; without this hook a put that trips the
        checkpoint threshold would serialize and fsync the whole table
        on the loop, stalling every connection behind it.
        """
        self._maint_submit = submit

    # holds-executor: when serving behind an event loop the attached pool
    # runs the pass (set_maintenance_executor); the inline fallback only
    # runs on embedder/worker threads that may block.
    def run_pending_maintenance(self) -> None:
        """Run any maintenance pass parked by a lock-holding mutator.

        External callers that mutate under :attr:`lock` should call this
        after releasing it; a no-op when nothing is pending.
        """
        submit = self._maint_submit
        if submit is None:
            self._drain_maintenance()
            return
        with self._lock:
            pending = self._maint_pending is not None
        if pending:
            try:
                submit(self._drain_maintenance)
            except RuntimeError:
                # Pool already shut down mid-stop; the pass stays parked
                # and close()'s explicit checkpoint still covers it.
                pass

    def _drain_maintenance(self) -> None:
        with self._lock:
            kind, self._maint_pending = self._maint_pending, None
        if kind == "checkpoint":
            self.checkpoint(wait=False)
        elif kind == "gc":
            self.gc(wait=False)

    def _lock_held_by_caller(self) -> bool:
        # RLock._is_owned: true iff the *current thread* owns the lock.
        # Called only after our own with-blocks have exited, so ownership
        # means an outer frame of this thread still holds it.
        is_owned = getattr(self._lock, "_is_owned", None)
        return bool(is_owned()) if is_owned is not None else False

    # -- spill-to-disk ----------------------------------------------------

    def _open_overflow(self) -> None:  # holds-lock: _lock
        if self._ovf_file is None:
            if self._ovf_path is None:
                raise StoreError("memory bound requires a persistence path")
            self._ovf_file = open(self._ovf_path, "a+b")
        return self._ovf_file

    def _enforce_memory_bound(self) -> None:  # holds-lock: _lock
        if not self.max_memory_pairs:
            return
        in_ram = [
            k for k, v in self._map.items() if not isinstance(v, _Spilled)
        ]
        excess = len(in_ram) - self.max_memory_pairs
        if excess <= 0:
            return
        f = self._open_overflow()
        f.seek(0, os.SEEK_END)
        # Spill the oldest-inserted pairs first (dict preserves insertion
        # order, so the front of the list is the coldest data).
        for key in in_ram[:excess]:
            value = self._map[key]
            assert isinstance(value, bytes)
            offset = f.tell()
            f.write(value)
            self._map[key] = _Spilled(offset, len(value))
        f.flush()

    def _read_spilled(self, key: bytes, marker: _Spilled) -> bytes:  # holds-lock: _lock
        """Read a spilled value without promoting it back to RAM."""
        f = self._open_overflow()
        f.seek(marker.offset)
        value = f.read(marker.length)
        if len(value) != marker.length:
            raise StoreError(f"overflow file truncated reading {key!r}")
        return value

    def _load_spilled(self, key: bytes, marker: _Spilled) -> bytes:  # holds-lock: _lock
        f = self._open_overflow()
        f.seek(marker.offset)
        value = f.read(marker.length)
        if len(value) != marker.length:
            raise StoreError(f"overflow file truncated reading {key!r}")
        self.stats.spilled_reads += 1
        # Promote back to RAM as the *newest* entry (delete + reinsert moves
        # it to the back of the dict's insertion order) so the bound check
        # re-spills colder keys instead of this one.
        del self._map[key]
        self._map[key] = value
        self._ovf_garbage += marker.length
        self._enforce_memory_bound()
        return value
